"""Experiment (extension): parameterized coherence vs exploration.

Writes the repo-level ``BENCH_param.json`` artifact — the committed,
CI-diffed record of the environment-abstraction coherence analysis
(``P46xx``) cross-checked against bounded exploration.  For every
library protocol:

* the **static verdict** of :func:`repro.analysis.coherencecheck
  .check_coherence` — discharge status, candidate/validated/promoted
  lemma counts, CEGAR iterations and abstract state count;
* the **exploration verdicts** for single-writer/SWMR on the derived
  asynchronous protocol at n = 2..4 under symmetry + partial-order
  reduction, at a pinned state budget (``REPRO_BENCH_PARAM_BUDGET``,
  default 120000 — higher than the cutoff bench because preserving the
  coherence invariants weakens the ample-set reduction; enough to
  complete every n = 3 instance, while n = 4 completes only for
  migratory and is recorded ``unknown`` elsewhere) so every count is
  bit-reproducible and CI can diff it (``compare_bench.py``, schema
  ``repro.bench_param/1``).

The acceptance claims asserted here:

* all four library protocols discharge single-writer and SWMR for
  arbitrary N;
* zero unsound cells: a discharged protocol never shows a bounded
  coherence violation at n <= 4;
* n = 2 and n = 3 complete within budget with a definite verdict.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import write_report

from repro import AsyncSystem, refine
from repro.analysis.coherencecheck import check_coherence
from repro.check.explorer import explore
from repro.check.por import PRESERVE_INVARIANTS, PORSystem
from repro.check.symmetry import SymmetricSystem
from repro.protocols import (
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
)
from repro.protocols.invariants import COHERENCE_SPECS, coherence_invariants
from repro.protocols.symmetry import symmetry_spec_for

BENCH_PATH = Path(__file__).parent.parent / "BENCH_param.json"
BENCH_SCHEMA = "repro.bench_param/1"

FACTORIES = {
    "invalidate": invalidate_protocol,
    "mesi": mesi_protocol,
    "migratory": migratory_protocol,
    "msi": msi_protocol,
}
SIZES = (2, 3, 4)


@pytest.fixture(scope="module")
def param_budget() -> int:
    # pinned independently of REPRO_BENCH_BUDGET: the committed
    # BENCH_param.json must be reproducible on any machine
    return int(os.environ.get("REPRO_BENCH_PARAM_BUDGET", "120000"))


def explore_cell(name: str, n: int, budget: int) -> dict:
    # composed like `repro verify --level async --por --symmetry`: the
    # invariants ride through POR via the preserve hook
    invariants = list(coherence_invariants(COHERENCE_SPECS[name]))
    system = SymmetricSystem(
        PORSystem(AsyncSystem(refine(FACTORIES[name]()), n),
                  preserve=PRESERVE_INVARIANTS),
        symmetry_spec_for(name))
    t0 = time.perf_counter()
    result = explore(system, name=f"{name}-param-{n}",
                     invariants=invariants, max_states=budget,
                     stop_on_violation=False, allow_deadlock=True,
                     reductions=("por", "symmetry"))
    seconds = time.perf_counter() - t0
    if result.violations:
        verdict = "violated"  # definite even on a truncated run
    elif result.completed:
        verdict = "coherent"
    else:
        verdict = "unknown"
    return {
        "n": n,
        "n_states": result.n_states,
        "n_transitions": result.n_transitions,
        "violations": len(result.violations),
        "completed": result.completed,
        "verdict": verdict,
        "seconds": round(seconds, 2),
    }


def test_bench_param(benchmark, results_dir, param_budget):
    rows = []
    for name, factory in sorted(FACTORIES.items()):
        protocol = factory()
        verdict = check_coherence(protocol, COHERENCE_SPECS[name])
        cells = [explore_cell(name, n, param_budget) for n in SIZES]
        bounded_violation = any(c["verdict"] == "violated" for c in cells)
        rows.append({
            "protocol": name,
            "static_verdict": verdict.status,
            "discharged": verdict.discharged,
            "candidates": verdict.candidates,
            "validated": verdict.validated,
            "n_lemmas": len(verdict.lemmas),
            "iterations": verdict.iterations,
            "abstract_states": verdict.abstract_states,
            "exploration": cells,
            "agreement": not (verdict.discharged and bounded_violation),
        })

    doc = {"schema": BENCH_SCHEMA, "budget": param_budget,
           "protocols": rows}
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    # -- human-readable summary ----------------------------------------------
    lines = ["Parameterized coherence (P46xx) verdict vs bounded "
             "exploration (async, symmetry+por):", "",
             f"{'protocol':<12} {'static verdict':<14} {'lemmas':>6} "
             f"{'iters':>5} {'abs.states':>10}  exploration n=2..4"]
    for r in rows:
        explored = ", ".join(
            f"n={c['n']}:{c['verdict']}({c['n_states']})"
            for c in r["exploration"])
        lines.append(f"{r['protocol']:<12} {r['static_verdict']:<14} "
                     f"{r['n_lemmas']:>6} {r['iterations']:>5} "
                     f"{r['abstract_states']:>10}  {explored}")
    lines.append("")
    lines.append("a 'discharged' static verdict is an any-N theorem via the "
                 "two-concrete-remotes + Other abstraction; 'unknown' cells "
                 "hit the pinned budget without finding a violation.")
    write_report(results_dir, "param.txt", "\n".join(lines))

    # -- acceptance assertions -----------------------------------------------
    for r in rows:
        assert r["discharged"], r["protocol"]
        assert r["validated"] == r["candidates"], r["protocol"]
        assert r["agreement"], f"unsound verdict on {r['protocol']}"
        # n=2 and n=3 must land in budget with a definite verdict
        assert all(c["verdict"] == "coherent"
                   for c in r["exploration"][:2]), r["protocol"]

    benchmark(lambda: check_coherence(FACTORIES["migratory"](),
                                      COHERENCE_SPECS["migratory"]))
