"""Experiment: regenerate the paper's protocol figures (1-5).

Figures 2/3 are the migratory rendezvous machines; Figures 4/5 their
refined forms.  This benchmark writes DOT and plain-text renderings under
``benchmarks/results/figures/`` and asserts the structural facts the
figures depict: state sets, the fused req/gr and inv/ID short-cuts, the
acked LR, the implicit-nack return edge, and the transient-state ignore
loops.  Figure 1 (example communication-state shapes) is regenerated from
three micro-processes built with the public API.
"""

from __future__ import annotations

from conftest import write_report

from repro.csp.ast import AnySender, VarSender, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, tau
from repro.protocols.handwritten import handwritten_migratory
from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.viz.ascii import process_ascii, refined_ascii
from repro.viz.dot import process_dot, refined_dot


def test_figures_2_through_5(benchmark, results_dir):
    figdir = results_dir / "figures"
    figdir.mkdir(exist_ok=True)
    protocol = migratory_protocol()
    refined = benchmark(lambda: refine(protocol))

    artifacts = {
        "figure2_home.dot": process_dot(protocol.home, title="Figure 2"),
        "figure3_remote.dot": process_dot(protocol.remote, title="Figure 3"),
        "figure4_refined_home.dot": refined_dot(refined, "home",
                                                title="Figure 4"),
        "figure5_refined_remote.dot": refined_dot(refined, "remote",
                                                  title="Figure 5"),
        "figure2_home.txt": process_ascii(protocol.home),
        "figure3_remote.txt": process_ascii(protocol.remote),
        "figure4_refined_home.txt": refined_ascii(refined, "home"),
        "figure5_refined_remote.txt": refined_ascii(refined, "remote"),
    }
    for name, text in artifacts.items():
        (figdir / name).write_text(text + "\n")

    # Figure 2: home states and key edges
    fig2 = artifacts["figure2_home.dot"]
    for state in ("F", "F1", "E", "I1", "I2", "I3"):
        assert f'"{state}"' in fig2
    assert 'label="r(i)?req"' in fig2 and 'label="r(o)!inv"' in fig2

    # Figure 3: remote states, evict tau, inv input
    fig3 = artifacts["figure3_remote.dot"]
    for state in ("I", "I.gr", "V", "V.lr", "V.id"):
        assert f'"{state}"' in fig3
    assert "τ:evict" in fig3

    # Figure 4: refined home — fused inv transient with the LR race and
    # implicit nack; gr sent as an un-acked reply
    fig4 = artifacts["figure4_refined_home.dot"]
    assert "I1·inv" in fig4
    assert "[nack]" in fig4
    assert "r(x)??msg/nack" in fig4
    assert "!!gr (reply)" in fig4
    assert '"I1·inv" -> "I3"' in fig4  # ??ID lands past I2

    # Figure 5: refined remote — req/gr fused wait, LR acked, transient
    # self-loop ignoring home requests
    fig5 = artifacts["figure5_refined_remote.dot"]
    assert "I·req" in fig5
    assert "h??*" in fig5
    assert "??gr" in fig5
    assert "??ack" in fig5  # the LR transient still awaits a real ack

    write_report(results_dir, "figures_index.txt",
                 "Regenerated figures:\n  " + "\n  ".join(sorted(artifacts)))


def test_figure_4_5_dotted_difference(benchmark, results_dir):
    """The paper: the hand design makes the dotted LR-ack edges vanish."""
    refined = refine(migratory_protocol())
    hand = handwritten_migratory()
    refined_txt = refined_ascii(refined, "remote")
    hand_txt = refined_ascii(hand, "remote")
    (results_dir / "figures").mkdir(exist_ok=True)
    (results_dir / "figures" / "figure5_hand_remote.txt").write_text(
        hand_txt + "\n")

    assert "V.lr·LR" in refined_txt      # refined: LR waits for its ack
    assert "!!LR (no ack)" in hand_txt   # hand: fire-and-forget
    assert "V.lr·LR" not in hand_txt
    benchmark(lambda: refined_ascii(hand, "remote"))


def test_figure_1_guard_shapes(benchmark, results_dir):
    """Figure 1: (a) home with generalized guards, (b) remote active,
    (c) remote passive with an autonomous decision."""
    home = ProcessBuilder.home("fig1a", i=0, j=0)
    home.state("s",
               inp("m1", sender=AnySender(), bind_sender="i", to="s"),
               out("m2", target=VarTarget("i"), to="s"),
               inp("m3", sender=VarSender("j"), to="s"))
    fig_a = process_ascii(home.build())

    active = ProcessBuilder.remote("fig1b")
    active.state("s", out("m", to="s"))
    fig_b = process_ascii(active.build())

    passive = ProcessBuilder.remote("fig1c")
    passive.state("s", inp("m1", to="s"), inp("m2", to="s"),
                  tau("τ", to="s2"))
    passive.state("s2", out("m3", to="s"))
    fig_c = benchmark(lambda: process_ascii(passive.build()))

    text = "\n\n".join(["(a) home node:", fig_a, "(b) remote node (active):",
                        fig_b, "(c) remote node (passive):", fig_c])
    (results_dir / "figures").mkdir(exist_ok=True)
    (results_dir / "figures" / "figure1_shapes.txt").write_text(text + "\n")

    assert "r(i)?m1" in fig_a and "r(i)!m2" in fig_a and "r(j)?m3" in fig_a
    assert "h!m" in fig_b
    assert "h?m1" in fig_c and "τ" in fig_c
