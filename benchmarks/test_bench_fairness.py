"""Experiment: fairness and starvation (paper section 6).

"The refinement process preserves forward progress for at least one remote
node, but doesn't guarantee forward progress for any given remote node.
This means that, it is possible that one of the nodes may starve. ...
This problem can be solved if the size of the buffer in the home node is
n ... If the messages in the home node's buffer are processed in a fair
manner, one can show that no remote node is starved."

Measured here:

* under adversarial contention with the minimal k=2 buffer, the *system*
  always progresses (weak fairness) but individual nodes see long waits —
  we record per-node completions, Jain's index and the longest wait;
* growing the buffer to n (and dropping the now-unneeded reservations)
  eliminates nacks entirely and tightens the longest wait;
* the paper's capacity arithmetic (64 nodes x 8 outstanding transactions
  + 1 = 513-message pool per node for per-line strong fairness) is
  reproduced as a cost model table.
"""

from __future__ import annotations

from conftest import write_report

from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.refine.plan import RefinementConfig
from repro.sim.engine import Simulator
from repro.sim.workload import HotLineWorkload

NODES = 8
HORIZON = 60_000.0


def run_with_capacity(k: int, reserve: bool):
    refined = refine(migratory_protocol(), RefinementConfig(
        home_buffer_capacity=k,
        reserve_progress_buffer=reserve,
        reserve_ack_buffer=reserve))
    return Simulator(refined, NODES, HotLineWorkload(seed=99),
                     seed=99).run(until=HORIZON)


def test_fairness_vs_buffer_capacity(benchmark, results_dir):
    lines = [f"Fairness under contention ({NODES} nodes, hot line, "
             f"horizon {HORIZON:.0f}):", "",
             f"{'k':>3} {'reserve':>8} {'completions/node':<34} "
             f"{'Jain':>6} {'max wait':>9} {'nacks':>7}"]
    runs = {}
    for k, reserve in [(2, True), (4, True), (NODES, False)]:
        metrics = run_with_capacity(k, reserve)
        runs[(k, reserve)] = metrics
        per_node = [metrics.completions_by_remote.get(i, 0)
                    for i in range(NODES)]
        worst_wait = max(metrics.longest_wait.values(), default=0.0)
        lines.append(f"{k:>3} {('on' if reserve else 'off'):>8} "
                     f"{str(per_node):<34} {metrics.fairness:>6.3f} "
                     f"{worst_wait:>9.0f} "
                     f"{metrics.messages_by_kind.get('NACK', 0):>7}")
    write_report(results_dir, "fairness_capacity.txt", "\n".join(lines))

    small = runs[(2, True)]
    big = runs[(NODES, False)]
    # weak fairness holds even at k=2: the system as a whole progresses
    assert small.total_completions > 100
    # with k = n the home never nacks and nobody starves (section 6)
    assert big.messages_by_kind.get("NACK", 0) == 0
    assert not big.starved_remotes
    assert big.fairness > 0.9

    benchmark.pedantic(lambda: run_with_capacity(2, True),
                       iterations=1, rounds=1)


def test_paper_capacity_arithmetic(results_dir, benchmark):
    """Section 6's sizing example, as a reusable cost model."""

    def strong_fairness_pool(nodes: int, outstanding: int) -> int:
        # "a buffer that can handle 513 messages (512 = 64 * 8 for requests
        # for rendezvous, 1 for ack/nack)"
        return nodes * outstanding + 1

    def naive_per_line_total(nodes: int, lines_per_node: int) -> int:
        # "the node needs to reserve a total of 64K messages"
        return nodes * lines_per_node

    lines = ["Buffer sizing cost model (paper section 6):", ""]
    pool = strong_fairness_pool(64, 8)
    naive = naive_per_line_total(64, 1024)
    lines.append(f"  naive per-line buffers, 64 nodes x 1024 lines: "
                 f"{naive} message slots per node")
    lines.append(f"  shared pool, 64 nodes x 8 outstanding (+1 ack): "
                 f"{pool} message slots per node")
    lines.append(f"  reduction: {naive / pool:.0f}x")
    write_report(results_dir, "fairness_capacity_model.txt",
                 "\n".join(lines))

    assert naive == 65_536      # the paper's "64K messages"
    assert pool == 513          # the paper's "513 messages"
    benchmark(lambda: strong_fairness_pool(64, 8))
