"""Experiment (extension): symmetry reduction completes Table 3's hard row.

The paper's remote nodes are identical by assumption (section 2.4), which
makes every global state invariant under remote-index permutations.
Exploring one representative per orbit (Ip/Dill scalarset reduction — a
technique contemporary with the paper that SPIN did not provide) collapses
the state counts dramatically and *completes the invalidate N = 6 row*
that both the paper (64 MB) and our unreduced engine leave Unfinished:

* rendezvous migratory becomes **constant-size** in the node count — every
  idle remote is interchangeable, so the orbit count saturates at 8;
* rendezvous invalidate at N = 6 finishes in ~16 k states;
* the asynchronous spaces shrink ~20x, pushing the verification cliff out
  by several nodes.

This is an ablation-style argument *for* the paper's thesis: even with a
reduction SPIN lacked, the asynchronous protocol remains orders of
magnitude costlier than the rendezvous one.
"""

from __future__ import annotations

from conftest import write_report

from repro.check.explorer import explore
from repro.check.symmetry import SymmetricSystem
from repro.protocols.invalidate import invalidate_protocol
from repro.protocols.migratory import migratory_protocol
from repro.protocols.symmetry import (
    INVALIDATE_SYMMETRY,
    MIGRATORY_SYMMETRY,
)
from repro.refine.engine import refine
from repro.semantics.asynchronous import AsyncSystem
from repro.semantics.rendezvous import RendezvousSystem


def test_rendezvous_reduction(benchmark, results_dir, state_budget,
                              time_budget):
    lines = ["Symmetry reduction, rendezvous level:", "",
             f"{'protocol':<12} {'N':>3} {'full':>10} {'reduced':>10}"]
    mig = migratory_protocol()
    saturation = []
    for n in (4, 8, 16):
        full = explore(RendezvousSystem(mig, n))
        reduced = explore(SymmetricSystem(RendezvousSystem(mig, n),
                                          MIGRATORY_SYMMETRY))
        saturation.append(reduced.n_states)
        lines.append(f"{'migratory':<12} {n:>3} {full.n_states:>10} "
                     f"{reduced.n_states:>10}")
    inv = invalidate_protocol()
    for n in (3, 4):
        full = explore(RendezvousSystem(inv, n))
        reduced = explore(SymmetricSystem(RendezvousSystem(inv, n),
                                          INVALIDATE_SYMMETRY))
        lines.append(f"{'invalidate':<12} {n:>3} {full.n_states:>10} "
                     f"{reduced.n_states:>10}")

    # the headline: the row Table 3's async column could never touch
    n6 = explore(SymmetricSystem(RendezvousSystem(inv, 6),
                                 INVALIDATE_SYMMETRY),
                 max_states=state_budget * 4, max_seconds=time_budget * 3)
    lines.append(f"{'invalidate':<12} {6:>3} {'Unfinished':>10} "
                 f"{n6.cell():>10}   <- completes the paper's N=6 row")
    write_report(results_dir, "symmetry_rendezvous.txt", "\n".join(lines))

    assert len(set(saturation)) == 1  # constant in n for migratory
    assert n6.completed

    benchmark(lambda: explore(SymmetricSystem(RendezvousSystem(mig, 16),
                                              MIGRATORY_SYMMETRY)))


def test_async_reduction(benchmark, results_dir, state_budget, time_budget):
    refined = refine(migratory_protocol())
    lines = ["Symmetry reduction, asynchronous level (migratory):", "",
             f"{'N':>3} {'full':>12} {'reduced':>12}"]
    for n in (3, 4):
        full = explore(AsyncSystem(refined, n))
        reduced = explore(SymmetricSystem(AsyncSystem(refined, n),
                                          MIGRATORY_SYMMETRY))
        lines.append(f"{n:>3} {full.n_states:>12} {reduced.n_states:>12}")
        assert reduced.n_states * 5 < full.n_states
    # the cliff moves out but does not vanish: the asynchronous protocol
    # is still exponentially costlier than the rendezvous one
    n6 = explore(SymmetricSystem(AsyncSystem(refined, 6),
                                 MIGRATORY_SYMMETRY),
                 max_states=state_budget, max_seconds=time_budget)
    lines.append(f"{6:>3} {'Unfinished':>12} {n6.cell():>12}")
    rv6 = explore(SymmetricSystem(RendezvousSystem(migratory_protocol(), 6),
                                  MIGRATORY_SYMMETRY))
    lines.append("")
    lines.append(f"rendezvous at N=6 under the same reduction: "
                 f"{rv6.n_states} states — the paper's gap survives "
                 "symmetry reduction")
    write_report(results_dir, "symmetry_async.txt", "\n".join(lines))

    if n6.completed:
        assert n6.n_states > 100 * rv6.n_states

    benchmark.pedantic(
        lambda: explore(SymmetricSystem(AsyncSystem(refined, 4),
                                        MIGRATORY_SYMMETRY)),
        iterations=1, rounds=1)
