"""Experiment: message efficiency — refined vs hand-designed protocol.

The paper (sections 1 and 5) claims the refinement procedure "can
automatically produce protocol implementations that are comparable in
quality to hand-designed asynchronous protocols", quality measured first by
message counts, and leaves the quantification of the hand design's saved
LR-ack as future work ("We believe that the loss of efficiency due to the
extra ack is small.  We are currently in the process of quantifying...").

This benchmark finishes that quantification, in two parts.

**Per-transaction cost (deterministic traces).**  An acquire costs 2
messages in both variants (fused req/gr); a voluntary eviction costs 2 in
the refined protocol (LR + ack) and 1 in the hand design (unacked LR).  So
the hand design saves exactly one message per eviction — "small", as the
paper believed: 25 % of the eviction transaction, 0 % of everything else.

**Under load (matched seeds), a reproduction finding.**  The saved ack is
not a pure win: in the refined protocol an evicting node is pinned in its
transient state for one round-trip (awaiting the LR ack) before it can
re-request the line; the hand design releases it immediately.  Under
contention with the minimal k = 2 buffer that earlier re-arrival raises
the offered load at the home and *increases* total traffic through extra
nack/retransmit cycles — the ack the refinement keeps acts as a natural
pacing mechanism.  On eviction-free workloads the two protocols are
message-for-message identical (asserted).
"""

from __future__ import annotations

from conftest import write_report

from repro.protocols.handwritten import handwritten_migratory
from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.sim.engine import Simulator
from repro.sim.workload import HotLineWorkload, SyntheticWorkload

HORIZON = 40_000.0
NODES = 8

WORKLOADS = {
    # classic migratory sharing: long holds, voluntary evictions
    "migratory-pattern": lambda: SyntheticWorkload(
        seed=101, think_time=80.0, hold_time=40.0, write_fraction=1.0),
    # eviction-heavy: short holds — the LR ack matters most here
    "evict-heavy": lambda: SyntheticWorkload(
        seed=202, think_time=30.0, hold_time=5.0, write_fraction=1.0),
    # contention: revocation-driven, almost no voluntary evictions
    "hot-line": lambda: HotLineWorkload(seed=303, reissue_delay=2.0),
}


def run_pair(name, factory):
    refined = refine(migratory_protocol())
    hand = handwritten_migratory()
    metrics_refined = Simulator(refined, NODES, factory(),
                                seed=7).run(until=HORIZON)
    metrics_hand = Simulator(hand, NODES, factory(), seed=7).run(
        until=HORIZON)
    return metrics_refined, metrics_hand


def test_per_transaction_saving_is_exactly_the_lr_ack(benchmark,
                                                      results_dir):
    """Deterministic trace: acquire + evict, both variants."""
    from repro.sim.policy import AccessClass
    from repro.sim.workload import TraceWorkload

    def cycle(refined):
        trace = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE),
                               (300.0, 0, AccessClass.EVICT)])
        return Simulator(refined, 1, trace, seed=0).run(until=2000)

    refined_m = cycle(refine(migratory_protocol()))
    hand_m = cycle(handwritten_migratory())
    report = (
        "One acquire + one voluntary eviction:\n\n"
        f"  refined: {refined_m.total_messages} messages "
        f"{dict(refined_m.messages_by_kind)}\n"
        f"  hand:    {hand_m.total_messages} messages "
        f"{dict(hand_m.messages_by_kind)}\n\n"
        "The hand design saves exactly the LR ack: 1 message per eviction.")
    write_report(results_dir, "messages_per_transaction.txt", report)

    assert refined_m.total_messages == 4   # req, gr, LR, ack
    assert hand_m.total_messages == 3      # req, gr, LR (unacked)
    assert hand_m.messages_by_kind.get("ACK", 0) == 0
    benchmark(lambda: cycle(handwritten_migratory()))


def test_hand_vs_refined_under_load(benchmark, results_dir):
    lines = [
        "Refined vs hand-designed migratory protocol "
        f"({NODES} nodes, horizon {HORIZON:.0f})",
        "",
        f"{'workload':<20} {'variant':<8} {'msgs':>8} {'msg/rdv':>8} "
        f"{'nack%':>7} {'LR acks':>8} {'fairness':>9}",
    ]
    runs = {}
    for name, factory in WORKLOADS.items():
        refined_m, hand_m = run_pair(name, factory)
        for label, m in (("refined", refined_m), ("hand", hand_m)):
            lines.append(
                f"{name:<20} {label:<8} {m.total_messages:>8} "
                f"{m.messages_per_rendezvous:>8.2f} "
                f"{m.nack_rate:>7.1%} "
                f"{m.messages_by_kind.get('ACK', 0):>8} "
                f"{m.fairness:>9.3f}")
        delta = hand_m.total_messages / refined_m.total_messages - 1
        runs[name] = (delta, refined_m, hand_m)
        lines.append(f"{'':<20} hand traffic vs refined: {delta:+.2%}")
    lines += [
        "",
        "Finding: dropping the LR ack removes the one-round-trip pacing of",
        "evicting nodes; under contention with k=2 the earlier re-requests",
        "cost more in nack/retransmit traffic than the ack saved.",
    ]
    write_report(results_dir, "messages_hand_vs_refined.txt",
                 "\n".join(lines))

    for name, (delta, refined_m, hand_m) in runs.items():
        # the hand variant never acks an LR
        assert hand_m.messages_by_kind.get("ACK", 0) == 0
        # quality stays comparable either way (the paper's overall claim)
        assert abs(delta) < 0.25
        assert abs(refined_m.fairness - hand_m.fairness) < 0.05

    # with no voluntary evictions the two protocols coincide exactly
    hot_delta, hot_refined, hot_hand = runs["hot-line"]
    assert hot_refined.messages_by_kind == hot_hand.messages_by_kind

    benchmark.pedantic(lambda: run_pair("migratory-pattern",
                                        WORKLOADS["migratory-pattern"]),
                       iterations=1, rounds=1)


def test_quality_metrics_comparable(benchmark, results_dir):
    """Beyond raw counts: latency and fairness match between the two."""
    refined_m, hand_m = run_pair("migratory-pattern",
                                 WORKLOADS["migratory-pattern"])
    lines = ["Quality comparison (migratory pattern):", ""]
    for label, m in (("refined", refined_m), ("hand", hand_m)):
        lines.append(f"{label}:")
        lines.append("  " + m.describe().replace("\n", "\n  "))
    write_report(results_dir, "messages_quality.txt", "\n".join(lines))

    assert abs(refined_m.fairness - hand_m.fairness) < 0.05
    p_refined = refined_m.latency_percentiles((50,))[50]
    p_hand = hand_m.latency_percentiles((50,))[50]
    assert abs(p_refined - p_hand) / p_refined < 0.5

    benchmark.pedantic(
        lambda: Simulator(refine(migratory_protocol()), NODES,
                          WORKLOADS["hot-line"](), seed=9).run(until=5000),
        iterations=1, rounds=1)
