"""Experiment (extension): what each state-space reduction buys.

Writes the repo-level ``BENCH_explore.json`` artifact — the committed,
CI-diffed record of explorer throughput and reduction effectiveness on
the paper's two protocols — plus the human-readable
``benchmarks/results/por_reduction.txt`` summary.

Two sections with two regeneration policies:

* ``runs`` — every (protocol, n, config, engine) cell explored at a
  *pinned* state budget (``REPRO_BENCH_EXPLORE_BUDGET``, default 4000,
  exact store).  BFS order is deterministic and engine-independent, so
  every count in this section is bit-reproducible across machines and
  Python versions; CI regenerates it and diffs against the committed
  file (``compare_bench.py``, ±25% on deterministic fields, timing and
  byte sizes exempt, counts *exactly* equal across engines).
* ``headline`` — the *complete* explorations behind the prose claims
  (invalidate n=4 takes ~10 minutes under symmetry alone with the
  interpreter).  Regenerated only under ``REPRO_BENCH_FULL=1``;
  otherwise carried over verbatim from the committed artifact so a
  default benchmark run never silently replaces a 10-minute measurement
  with a truncated one.  Both engines' headline rows include the
  unreduced invalidate n=4 cell (~10^7 states): the compiled engine
  walks it with the plain fingerprint store, while the interpreted row
  — Unfinished at any practical budget before the partitioned stores
  existed — runs over a 4-partition spill-backed fingerprint store
  (``make_partitioned_store``) so the visited set stays inside a
  bounded resident budget for the ~25-minute walk.

The acceptance claims asserted here, against whichever headline data is
active:

* ``--por`` alone removes >= 30% of the expanded states on every
  completed library row at n >= 3 (invalidate n=3: ~44%, migratory
  n=4: ~67%);
* on invalidate n=4 — where the unreduced space (~10^7 states) is out
  of reach and symmetry is the only usable baseline — adding ``--por``
  to ``--symmetry`` removes >= 30% of the expanded states again
  (measured: ~59%), which is what turns the cell from Unfinished into
  a ~2-minute run.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest
from conftest import write_report

from repro.check.explorer import explore
from repro.check.parallel import SystemSpec, build_system
from repro.check.store import make_partitioned_store

BENCH_PATH = Path(__file__).parent.parent / "BENCH_explore.json"
BENCH_SCHEMA = "repro.bench_explore/2"

PROTOCOLS = ("migratory", "invalidate")
SIZES = (3, 4)
ENGINES = ("interpreted", "compiled")
CONFIGS = {
    "full": dict(),
    "por": dict(por=True),
    "symmetry": dict(symmetry=True),
    "symmetry+por": dict(symmetry=True, por=True),
}
#: (protocol, n, config, engine) — every interpreted row has a compiled
#: twin.  Unreduced invalidate n=4 (~10^7 states) was compiled-only
#: until the partitioned spill-backed fingerprint store bounded the
#: interpreted walk's resident memory; both engines complete it now.
HEADLINE_ROWS = [
    (p, n, c, engine)
    for engine in ENGINES
    for p, n, c in [
        ("migratory", 3, "full"), ("migratory", 3, "por"),
        ("migratory", 4, "full"), ("migratory", 4, "por"),
        ("invalidate", 3, "full"), ("invalidate", 3, "por"),
        ("invalidate", 4, "symmetry"), ("invalidate", 4, "symmetry+por"),
    ]
] + [("invalidate", 4, "full", "compiled"),
     ("invalidate", 4, "full", "interpreted")]


class _Levels:
    """Minimal observer: count BFS levels for the depth field."""

    def __init__(self) -> None:
        self.depth = 0

    def on_start(self, run) -> None:
        pass

    def on_level(self, event) -> None:
        self.depth = event.level

    def on_finish(self, result) -> None:
        pass


def measure(protocol, n, config, engine="interpreted", *,
            max_states=None, store="exact"):
    spec = SystemSpec(protocol, "async", n, engine=engine,
                      **CONFIGS[config])
    levels = _Levels()
    t0 = time.perf_counter()
    result = explore(build_system(spec),
                     name=f"{protocol}-{n}-{config}-{engine}",
                     max_states=max_states, store=store, observer=levels,
                     reductions=spec.reductions())
    seconds = time.perf_counter() - t0
    pruning = 0.0
    if result.n_enabled > result.n_transitions:
        pruning = 1.0 - result.n_transitions / result.n_enabled
    return {
        "protocol": protocol, "n": n, "config": config, "engine": engine,
        "n_states": result.n_states,
        "n_transitions": result.n_transitions,
        "n_enabled": result.n_enabled,
        "depth": levels.depth,
        "completed": result.completed,
        "transition_pruning": round(pruning, 4),
        # environment-dependent; compare_bench.py treats as informational
        "states_per_sec": round(result.n_states / seconds) if seconds else 0,
        "approx_bytes": result.approx_bytes,
        "seconds": round(seconds, 2),
    }


def headline_store(protocol, n, config):
    """Store for a full headline regeneration of one cell.

    The unreduced invalidate n=4 walk visits ~8.3M states; a plain
    fingerprint dict for it costs ~900 MB of CPython boxing.  The
    4-partition spill-backed store keeps the resident tier bounded
    (identical counts — the reduction-matrix suite pins that).
    """
    if (protocol, n, config) == ("invalidate", 4, "full"):
        spill = tempfile.mkdtemp(prefix="repro-bench-spill-")
        return make_partitioned_store("fingerprint", 4, spill_dir=spill,
                                      spill_threshold=1_000_000)
    return "fingerprint"


def state_reduction(runs, baseline, reduced):
    """1 - reduced/baseline expanded states; None unless both completed."""
    by_key = {(r["protocol"], r["n"], r["config"]): r for r in runs}
    base, red = by_key.get(baseline), by_key.get(reduced)
    if not base or not red or not (base["completed"] and red["completed"]):
        return None
    return round(1.0 - red["n_states"] / base["n_states"], 4)


@pytest.fixture(scope="module")
def explore_budget() -> int:
    # pinned independently of REPRO_BENCH_BUDGET: the committed
    # BENCH_explore.json must be reproducible on any machine
    return int(os.environ.get("REPRO_BENCH_EXPLORE_BUDGET", "4000"))


def test_bench_explore(benchmark, results_dir, explore_budget):
    runs = [measure(protocol, n, config, engine, max_states=explore_budget)
            for protocol in PROTOCOLS for n in SIZES for config in CONFIGS
            for engine in ENGINES]

    # -- headline: complete runs, regenerated only on request ----------------
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        headline = [measure(p, n, c, e, store=headline_store(p, n, c))
                    for p, n, c, e in HEADLINE_ROWS]
    else:
        committed = json.loads(BENCH_PATH.read_text())
        assert committed["schema"] == BENCH_SCHEMA
        headline = committed["headline"]["runs"]

    reductions = {
        "migratory_n3_por_vs_full":
            state_reduction(headline, ("migratory", 3, "full"),
                            ("migratory", 3, "por")),
        "migratory_n4_por_vs_full":
            state_reduction(headline, ("migratory", 4, "full"),
                            ("migratory", 4, "por")),
        "invalidate_n3_por_vs_full":
            state_reduction(headline, ("invalidate", 3, "full"),
                            ("invalidate", 3, "por")),
        "invalidate_n4_por_vs_symmetry_baseline":
            state_reduction(headline, ("invalidate", 4, "symmetry"),
                            ("invalidate", 4, "symmetry+por")),
    }

    doc = {
        "schema": BENCH_SCHEMA,
        "budget": explore_budget,
        "runs": runs,
        "headline": {"runs": headline, "reductions": reductions},
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    # -- human-readable summary ----------------------------------------------
    lines = ["Ample-set POR: expanded states, complete explorations:", "",
             f"{'protocol':<12} {'N':>3} {'config':<14} {'engine':<12} "
             f"{'states':>10} {'transitions':>12} {'st/s':>8} {'pruned':>8}"]
    for r in headline:
        pruned = (f"{r['transition_pruning']:.1%}"
                  if r["transition_pruning"] else "-")
        lines.append(f"{r['protocol']:<12} {r['n']:>3} {r['config']:<14} "
                     f"{r.get('engine', 'interpreted'):<12} "
                     f"{r['n_states']:>10} {r['n_transitions']:>12} "
                     f"{r['states_per_sec']:>8} {pruned:>8}")
    lines.append("")
    lines.append("state reduction from --por (1 - reduced/baseline):")
    for name, value in reductions.items():
        rendered = f"{value:.1%}" if value is not None else "n/a"
        lines.append(f"  {name:<44} {rendered}")
    lines.append("")
    lines.append("unreduced invalidate n=4 (~8.3M states) needs the "
                 "compiled engine or the partitioned spill-backed "
                 "fingerprint store (both rows above complete; the "
                 "interpreted row was Unfinished before the spill tier "
                 "bounded its resident memory); the n=4 POR comparison "
                 "keeps the symmetry-reduced space as baseline.")
    write_report(results_dir, "por_reduction.txt", "\n".join(lines))

    # -- acceptance assertions -----------------------------------------------
    assert reductions["invalidate_n3_por_vs_full"] >= 0.30
    assert reductions["migratory_n4_por_vs_full"] >= 0.30
    assert reductions["invalidate_n4_por_vs_symmetry_baseline"] >= 0.30
    # por prunes transitions in every async cell it is active in
    for r in runs:
        if "por" in r["config"]:
            assert r["transition_pruning"] > 0
    # the compiled engine must reproduce the interpreter's counts
    # byte-for-byte in every budgeted cell (the /2 cross-engine contract)
    cells: dict[tuple, set] = {}
    for r in runs:
        cells.setdefault((r["protocol"], r["n"], r["config"]), set()).add(
            (r["n_states"], r["n_transitions"], r["n_enabled"],
             r["depth"], r["completed"]))
    for cell, observed in cells.items():
        assert len(observed) == 1, f"engines disagree on {cell}: {observed}"
    # reduction never grows the state count at equal budget+depth: compare
    # cumulative states only when the reduced run is complete (otherwise
    # depths differ and raw counts are not comparable)
    by_key = {(r["protocol"], r["n"], r["config"], r["engine"]): r
              for r in runs}
    for (protocol, n, config, engine), r in by_key.items():
        if config == "por" and r["completed"]:
            full = by_key[(protocol, n, "full", engine)]
            if full["completed"]:
                assert r["n_states"] <= full["n_states"]

    benchmark(lambda: explore(
        build_system(SystemSpec("migratory", "async", 3, por=True))))
