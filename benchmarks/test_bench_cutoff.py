"""Experiment (extension): static parameterized verdicts vs exploration.

Writes the repo-level ``BENCH_cutoff.json`` artifact — the committed,
CI-diffed record of the flow-derived parameterized (P45xx) analysis
cross-checked against bounded exploration.  For every library protocol:

* the **static verdict** of :func:`repro.analysis.paramcheck
  .check_parameterized` — flow count, cover completeness, invariant
  count, and whether deadlock freedom was discharged for arbitrary N;
* the **exploration verdicts** of the derived asynchronous protocol at
  n = 2..4 under symmetry + partial-order reduction, at a pinned state
  budget (``REPRO_BENCH_CUTOFF_BUDGET``, default 60000 — enough to
  complete every n = 3 instance; n = 4 completes only for migratory and
  is recorded ``unknown`` elsewhere) so every count is bit-reproducible
  and CI can diff it (``compare_bench.py``, schema
  ``repro.bench_cutoff/1``);
* the **stabilization cutoff** — the smallest n from which every larger
  explored instance with a known verdict agrees.  The flow argument
  predicts a cutoff of 2 (every invariant mentions the home plus at
  most one remote); the exploration column is the empirical check.

The acceptance claims asserted here:

* all four library protocols discharge deadlock freedom for arbitrary N;
* no disagreement: a discharged protocol never shows a bounded deadlock
  (zero unsound verdicts at n <= 4);
* the observed stabilization cutoff is 2, matching the theory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import write_report

from repro.analysis.paramcheck import check_parameterized
from repro.check.explorer import explore
from repro.check.parallel import SystemSpec, build_system
from repro.protocols import (
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
)

BENCH_PATH = Path(__file__).parent.parent / "BENCH_cutoff.json"
BENCH_SCHEMA = "repro.bench_cutoff/1"

FACTORIES = {
    "invalidate": invalidate_protocol,
    "mesi": mesi_protocol,
    "migratory": migratory_protocol,
    "msi": msi_protocol,
}
SIZES = (2, 3, 4)


@pytest.fixture(scope="module")
def cutoff_budget() -> int:
    # pinned independently of REPRO_BENCH_BUDGET: the committed
    # BENCH_cutoff.json must be reproducible on any machine
    return int(os.environ.get("REPRO_BENCH_CUTOFF_BUDGET", "60000"))


def explore_cell(name: str, n: int, budget: int) -> dict:
    spec = SystemSpec(name, "async", n, symmetry=True, por=True)
    t0 = time.perf_counter()
    result = explore(build_system(spec), name=f"{name}-cutoff-{n}",
                     max_states=budget, reductions=spec.reductions())
    seconds = time.perf_counter() - t0
    if result.deadlocks:
        verdict = "deadlock"  # definite even on a truncated run
    elif result.completed:
        verdict = "no-deadlock"
    else:
        verdict = "unknown"
    return {
        "n": n,
        "n_states": result.n_states,
        "n_transitions": result.n_transitions,
        "deadlocks": len(result.deadlocks),
        "completed": result.completed,
        "verdict": verdict,
        "seconds": round(seconds, 2),
    }


def stabilizes_at(cells: list[dict]) -> int | None:
    """Smallest n whose verdict every later *known* verdict repeats."""
    known = [(c["n"], c["verdict"]) for c in cells
             if c["verdict"] != "unknown"]
    if not known:
        return None
    final = known[-1][1]
    cutoff = None
    for n, verdict in reversed(known):
        if verdict != final:
            break
        cutoff = n
    return cutoff


def test_bench_cutoff(benchmark, results_dir, cutoff_budget):
    rows = []
    for name, factory in sorted(FACTORIES.items()):
        protocol = factory()
        verdict = check_parameterized(protocol)
        cells = [explore_cell(name, n, cutoff_budget) for n in SIZES]
        cutoff = stabilizes_at(cells)
        bounded_deadlock = any(c["verdict"] == "deadlock" for c in cells)
        rows.append({
            "protocol": name,
            "static_verdict": verdict.verdict,
            "discharged": verdict.discharged,
            "complete_cover": verdict.graph.complete,
            "n_flows": len(verdict.graph.flows),
            "n_invariants": len(verdict.invariants),
            "witness_states": verdict.witness_states,
            "exploration": cells,
            "stabilizes_at": cutoff,
            "agreement": not (verdict.discharged and bounded_deadlock),
        })

    doc = {"schema": BENCH_SCHEMA, "budget": cutoff_budget,
           "protocols": rows}
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    # -- human-readable summary ----------------------------------------------
    lines = ["Parameterized (P45xx) verdict vs bounded exploration "
             "(async, symmetry+por):", "",
             f"{'protocol':<12} {'static verdict':<22} {'flows':>6} "
             f"{'invs':>5} {'cutoff':>7}  exploration n=2..4"]
    for r in rows:
        explored = ", ".join(
            f"n={c['n']}:{c['verdict']}({c['n_states']})"
            for c in r["exploration"])
        lines.append(f"{r['protocol']:<12} {r['static_verdict']:<22} "
                     f"{r['n_flows']:>6} {r['n_invariants']:>5} "
                     f"{str(r['stabilizes_at']):>7}  {explored}")
    lines.append("")
    lines.append("the flow argument predicts a cutoff of 2 (each invariant "
                 "mentions the home plus at most one remote); 'unknown' "
                 "cells hit the pinned budget without finding a deadlock.")
    write_report(results_dir, "cutoff.txt", "\n".join(lines))

    # -- acceptance assertions -----------------------------------------------
    for r in rows:
        assert r["discharged"], r["protocol"]
        assert r["complete_cover"], r["protocol"]
        assert r["agreement"], f"unsound verdict on {r['protocol']}"
        assert r["stabilizes_at"] == 2, r["protocol"]
        # n=2 and n=3 must land in budget with a definite verdict
        assert all(c["verdict"] == "no-deadlock"
                   for c in r["exploration"][:2]), r["protocol"]

    benchmark(lambda: check_parameterized(FACTORIES["migratory"]()))
