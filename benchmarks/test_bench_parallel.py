"""Experiment (infrastructure): parallel frontier expansion, measured honestly.

Level-synchronous BFS parallelizes per frontier chunk — the classic
distributed-model-checking split.  In CPython the per-state successor
computation is microseconds while inter-process pickling is not, so the
technique only pays on hosts with real cores and on spaces with large
frontiers.  Following the optimisation-guide adage ("no optimisation
without measuring"), this benchmark records the actual speedup on the
current host rather than asserting one: on a single-core container the
parallel run is pure overhead, and the report says so.

What *is* asserted: bit-identical state/transition counts between the
sequential and parallel engines — including budget-truncated runs — and
between the exact and fingerprint stores; those are the correctness
contracts that make the engines usable at all.  Each engine's run is
also profiled through :class:`repro.check.observe.JsonProfileWriter`,
so ``benchmarks/results/`` carries machine-readable per-level traces
(frontier sizes, states/sec, dedup ratio, memory) alongside the prose
report.
"""

from __future__ import annotations

import json
import os
import time

from conftest import write_report

from repro.check.explorer import explore
from repro.check.observe import JsonProfileWriter
from repro.check.parallel import SystemSpec, build_system, explore_parallel


def test_parallel_matches_and_measures(benchmark, results_dir, state_budget,
                                       time_budget):
    spec = SystemSpec(protocol="migratory", level="async", n_remotes=4)
    budgets = dict(max_states=state_budget, max_seconds=time_budget)

    seq_profile = results_dir / "parallel_explorer_seq_profile.json"
    t0 = time.perf_counter()
    sequential = explore(build_system(spec), name="bench-sequential",
                         observer=JsonProfileWriter(seq_profile), **budgets)
    t_seq = time.perf_counter() - t0

    workers = max(2, (os.cpu_count() or 1))
    par_profile = results_dir / "parallel_explorer_par_profile.json"
    t0 = time.perf_counter()
    parallel = explore_parallel(spec, workers=workers, chunk_size=256,
                                observer=JsonProfileWriter(par_profile),
                                **budgets)
    t_par = time.perf_counter() - t0

    assert parallel.n_states == sequential.n_states
    assert parallel.n_transitions == sequential.n_transitions
    assert parallel.deadlock_count == sequential.deadlock_count
    assert parallel.stop_reason == sequential.stop_reason
    assert parallel.approx_bytes > 0

    levels = json.loads(par_profile.read_text())["levels"]
    peak_frontier = max((lvl["frontier"] for lvl in levels), default=0)

    speedup = t_seq / t_par if t_par else float("inf")
    verdict = ("parallel wins" if speedup > 1.1 else
               "parallel loses (expected on few/1 cores: pickling "
               "dominates microsecond state expansions)")
    report = "\n".join([
        "Parallel frontier expansion (async migratory, n=4):",
        "",
        f"  host cpus: {os.cpu_count()}",
        f"  budget: {state_budget} states / {time_budget}s",
        f"  sequential: {sequential.n_states} states in {t_seq:.2f}s",
        f"  parallel ({workers} workers): {parallel.n_states} states "
        f"in {t_par:.2f}s",
        f"  peak frontier: {peak_frontier} states across "
        f"{len(levels)} levels",
        f"  speedup: {speedup:.2f}x -> {verdict}",
        "  per-level profiles: parallel_explorer_seq_profile.json, "
        "parallel_explorer_par_profile.json",
    ])
    write_report(results_dir, "parallel_explorer.txt", report)

    benchmark.pedantic(lambda: explore(build_system(spec), **budgets),
                       iterations=1, rounds=1)


def test_fingerprint_store_memory(results_dir, state_budget, time_budget):
    """Hash compaction: same counts as the exact store, a fraction of the
    memory — the Table 3 'Unfinished' rows are a memory cliff, and this
    is the standard SPIN-style remedy."""
    spec = SystemSpec(protocol="migratory", level="async", n_remotes=3)
    system = build_system(spec)
    budgets = dict(max_states=state_budget, max_seconds=time_budget)

    exact = explore(system, name="bench-exact", **budgets)
    fp_profile = results_dir / "fingerprint_store_profile.json"
    compact = explore(build_system(spec), name="bench-fingerprint",
                      store="fingerprint",
                      observer=JsonProfileWriter(fp_profile), **budgets)

    assert compact.n_states == exact.n_states
    assert compact.n_transitions == exact.n_transitions
    assert compact.deadlock_count == exact.deadlock_count
    assert compact.stop_reason == exact.stop_reason
    assert compact.fingerprint_collisions == 0
    assert 0 < compact.approx_bytes < exact.approx_bytes

    ratio = exact.approx_bytes / compact.approx_bytes
    report = "\n".join([
        "Fingerprint (hash-compaction) store vs exact store "
        "(async migratory, n=3):",
        "",
        f"  states: {exact.n_states} (identical counts, "
        f"{compact.fingerprint_collisions} detected collisions)",
        f"  exact store:       ~{exact.approx_bytes:,} bytes",
        f"  fingerprint store: ~{compact.approx_bytes:,} bytes",
        f"  compaction: {ratio:.1f}x smaller",
        "  per-level profile: fingerprint_store_profile.json",
    ])
    write_report(results_dir, "fingerprint_store.txt", report)
