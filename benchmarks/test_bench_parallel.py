"""Experiment (infrastructure): parallel frontier expansion, measured honestly.

Level-synchronous BFS parallelizes per frontier chunk — the classic
distributed-model-checking split.  In CPython the per-state successor
computation is microseconds while inter-process pickling is not, so the
technique only pays on hosts with real cores and on spaces with large
frontiers.  Following the optimisation-guide adage ("no optimisation
without measuring"), this benchmark records the actual speedup on the
current host rather than asserting one: on a single-core container the
parallel run is pure overhead, and the report says so.

What *is* asserted: bit-identical state/transition counts between the
sequential and parallel engines, at several sizes — the correctness
contract that makes the engine usable at all.
"""

from __future__ import annotations

import os
import time

from conftest import write_report

from repro.check.explorer import explore
from repro.check.parallel import SystemSpec, build_system, explore_parallel


def test_parallel_matches_and_measures(benchmark, results_dir):
    spec = SystemSpec(protocol="migratory", level="async", n_remotes=4)
    t0 = time.perf_counter()
    sequential = explore(build_system(spec))
    t_seq = time.perf_counter() - t0

    workers = max(2, (os.cpu_count() or 1))
    t0 = time.perf_counter()
    parallel = explore_parallel(spec, workers=workers, chunk_size=256)
    t_par = time.perf_counter() - t0

    assert parallel.n_states == sequential.n_states
    assert parallel.n_transitions == sequential.n_transitions

    speedup = t_seq / t_par if t_par else float("inf")
    verdict = ("parallel wins" if speedup > 1.1 else
               "parallel loses (expected on few/1 cores: pickling "
               "dominates microsecond state expansions)")
    report = "\n".join([
        "Parallel frontier expansion (async migratory, n=4):",
        "",
        f"  host cpus: {os.cpu_count()}",
        f"  sequential: {sequential.n_states} states in {t_seq:.2f}s",
        f"  parallel ({workers} workers): {parallel.n_states} states "
        f"in {t_par:.2f}s",
        f"  speedup: {speedup:.2f}x -> {verdict}",
    ])
    write_report(results_dir, "parallel_explorer.txt", report)

    benchmark.pedantic(lambda: explore(build_system(spec)),
                       iterations=1, rounds=1)
