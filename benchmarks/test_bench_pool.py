"""Experiment: shared-buffer-pool sizing across many lines (paper section 6).

"in a multiprocessor with 64 nodes, if each node of the multiprocessor
acts as home for 1024 lines (a modest number of lines), the node needs to
reserve a total of 64K messages to be used as buffer space.  Clearly, it
is impractical to reserve such a large amount of space for buffer. ...
If the home node were to reserve a buffer that can handle 513 messages ...
and the buffer pool is managed as a resource shared by all the 1024 shared
lines, forward progress can be assured per each shared line per each
remote node."

We measure the statistical-multiplexing fact the shared pool banks on: the
*instantaneous aggregate* buffer demand across many concurrently-simulated
lines is far below per-line worst-case provisioning, and the gap widens
with the number of lines.
"""

from __future__ import annotations

from conftest import write_report

from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.sim.pool import simulate_pool
from repro.sim.workload import SyntheticWorkload

N_REMOTES = 8
HORIZON = 6_000.0


def make_workload(line: int):
    return SyntheticWorkload(seed=900 + line, think_time=150.0,
                             hold_time=40.0, write_fraction=1.0)


def test_pool_multiplexing(benchmark, results_dir):
    refined = refine(migratory_protocol())
    lines_counts = (8, 24, 72)
    rows = []
    text = [f"Shared buffer pool demand ({N_REMOTES} remotes per line, "
            f"horizon {HORIZON:.0f}):", "",
            f"{'lines':>6} {'naive (n*k)':>12} {'peak':>6} {'mean':>7} "
            f"{'pool saving':>12}"]
    for n_lines in lines_counts:
        report = simulate_pool(refined, N_REMOTES, n_lines, make_workload,
                               until=HORIZON, seed=1)
        rows.append(report)
        text.append(f"{n_lines:>6} {report.naive_capacity:>12} "
                    f"{report.peak_demand:>6} {report.mean_demand:>7.2f} "
                    f"{report.multiplexing_ratio:>11.1f}x")
    text += [
        "",
        "Paper's sizing example: 64 nodes x 8 outstanding + 1 = 513 slots",
        "shared by 1024 lines, vs 65536 slots provisioned per-line (128x).",
    ]
    write_report(results_dir, "pool_multiplexing.txt", "\n".join(text))

    # multiplexing must be substantial and must widen with the line count
    assert rows[-1].multiplexing_ratio > 2.0
    assert rows[-1].multiplexing_ratio > rows[0].multiplexing_ratio
    # aggregate peak grows sublinearly: 16x more lines, far less than 16x
    # more demand
    assert rows[-1].peak_demand < 6 * max(1, rows[0].peak_demand)

    benchmark.pedantic(
        lambda: simulate_pool(refined, N_REMOTES, 8, make_workload,
                              until=2_000.0, seed=2),
        iterations=1, rounds=1)
