"""Experiment: buffering requirements (paper sections 2.5, 3.2).

Claims reproduced:

* "If we were to guarantee progress only for some remote node, a buffer
  that can hold 2 messages suffices" — k = 2 passes the weak-fairness
  progress check at every node count we can verify exhaustively;
* "If no such reservation is made, a livelock can result" — switching the
  progress-buffer reservation off produces a model-checkable livelock
  (a terminal SCC with no completed rendezvous), demonstrated on the
  unfused refinement where the critical completion goes through the
  buffer;
* larger k buys fewer nacks but is never needed for progress.
"""

from __future__ import annotations

from conftest import write_report

from repro.check.properties import check_progress
from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.refine.plan import RefinementConfig
from repro.semantics.asynchronous import AsyncSystem
from repro.sim.engine import Simulator
from repro.sim.workload import HotLineWorkload


def test_k2_suffices_for_progress(benchmark, results_dir):
    protocol = migratory_protocol()
    lines = ["Progress with the minimal k=2 buffer "
             "(weak fairness, paper section 2.5):", ""]
    for n in (2, 3, 4):
        refined = refine(protocol, RefinementConfig(home_buffer_capacity=2))
        report = check_progress(AsyncSystem(refined, n))
        lines.append(f"  n={n}: {report.describe()}")
        assert report.ok
    write_report(results_dir, "buffers_k2_progress.txt", "\n".join(lines))
    refined = refine(protocol)
    benchmark.pedantic(lambda: check_progress(AsyncSystem(refined, 3)),
                       iterations=1, rounds=2)


def test_progress_buffer_ablation_produces_livelock(benchmark, results_dir):
    """The paper's section 3.2 livelock, machine-found."""
    protocol = migratory_protocol()
    with_reservation = refine(protocol, RefinementConfig(use_reqreply=False))
    without = refine(protocol, RefinementConfig(
        use_reqreply=False, reserve_progress_buffer=False))

    ok_report = check_progress(AsyncSystem(with_reservation, 4))
    bad_report = check_progress(AsyncSystem(without, 4))

    lines = [
        "Progress-buffer reservation ablation (unfused migratory, n=4):",
        "",
        f"  reservation ON : {ok_report.describe()}",
        f"  reservation OFF: {bad_report.describe()}",
    ]
    if bad_report.livelocks:
        size, state = bad_report.livelocks[0]
        lines.append("")
        lines.append(f"  sample livelocked state (SCC of {size}): "
                     f"{state.describe()}")
    write_report(results_dir, "buffers_progress_ablation.txt",
                 "\n".join(lines))

    assert ok_report.ok
    assert not bad_report.ok and bad_report.livelocks

    benchmark.pedantic(lambda: check_progress(AsyncSystem(without, 3)),
                       iterations=1, rounds=2)


def test_larger_buffers_cut_nacks(benchmark, results_dir):
    """k sweep under contention: nacks fall as the buffer grows, and with
    reservations off and k = n the home never nacks (paper section 6)."""
    protocol = migratory_protocol()
    n = 6
    lines = [f"Nack rate vs home buffer capacity ({n} nodes, hot line):",
             "", f"{'k':>3} {'reservations':>13} {'messages':>9} "
             f"{'nacks':>7} {'nack%':>7}"]
    rates = {}
    for k, reserve in [(2, True), (3, True), (4, True), (6, True),
                       (6, False), (8, False)]:
        config = RefinementConfig(
            home_buffer_capacity=k,
            reserve_progress_buffer=reserve,
            reserve_ack_buffer=reserve)
        refined = refine(protocol, config)
        metrics = Simulator(refined, n, HotLineWorkload(seed=77),
                            seed=77).run(until=30_000)
        nacks = metrics.messages_by_kind.get("NACK", 0)
        rates[(k, reserve)] = (nacks, metrics)
        lines.append(f"{k:>3} {('on' if reserve else 'off'):>13} "
                     f"{metrics.total_messages:>9} {nacks:>7} "
                     f"{metrics.nack_rate:>7.1%}")
    write_report(results_dir, "buffers_nack_sweep.txt", "\n".join(lines))

    # more buffer, (weakly) fewer nacks — with reservations on
    assert rates[(6, True)][0] <= rates[(2, True)][0]
    # section 6: with k = n (every remote has at most one outstanding
    # request) and no reservations, the home never generates a nack
    assert rates[(6, False)][0] == 0
    assert rates[(8, False)][0] == 0

    refined = refine(protocol)
    benchmark.pedantic(
        lambda: Simulator(refined, n, HotLineWorkload(seed=1),
                          seed=1).run(until=5000),
        iterations=1, rounds=1)
