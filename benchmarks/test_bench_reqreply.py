"""Experiment: the section 3.3 request/reply optimization.

"By following the request/reply strategy, a pair of consecutive rendezvous
such as ri?req; ri!gr or ri!inv; ri?ID(data) takes only 2 messages" —
instead of 4 under the generic refinement (request + ack per rendezvous).

Measured here:

* exact 2-vs-4 message cost on an uncontended acquire (deterministic);
* end-to-end message reduction on loaded workloads, for both migratory
  and invalidate;
* the bonus the paper does not mention: fusion also *shrinks the
  asynchronous state space* (fewer in-flight message configurations), so
  even direct asynchronous verification gets cheaper.
"""

from __future__ import annotations

from conftest import write_report

from repro.check.explorer import explore
from repro.protocols.invalidate import invalidate_protocol
from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.refine.plan import RefinementConfig
from repro.semantics.asynchronous import AsyncSystem
from repro.sim.engine import Simulator
from repro.sim.policy import AccessClass
from repro.sim.workload import SyntheticWorkload, TraceWorkload


def test_uncontended_pair_cost(benchmark, results_dir):
    fused = refine(migratory_protocol())
    plain = refine(migratory_protocol(),
                   RefinementConfig(use_reqreply=False))

    def one_acquire(refined):
        trace = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)])
        return Simulator(refined, 1, trace, seed=0).run(until=1000)

    m_fused, m_plain = one_acquire(fused), one_acquire(plain)
    report = (
        "Single uncontended acquire (req/gr pair):\n\n"
        f"  fused (sec. 3.3): {m_fused.total_messages} messages "
        f"{dict(m_fused.messages_by_kind)}\n"
        f"  plain refinement: {m_plain.total_messages} messages "
        f"{dict(m_plain.messages_by_kind)}")
    write_report(results_dir, "reqreply_pair_cost.txt", report)

    assert m_fused.total_messages == 2   # the paper's exact figure
    assert m_plain.total_messages == 4
    benchmark(lambda: one_acquire(fused))


def test_workload_level_reduction(benchmark, results_dir):
    lines = ["Request/reply optimization under load (8 nodes):", "",
             f"{'protocol':<12} {'variant':<8} {'messages':>9} "
             f"{'msg/rdv':>8}"]
    reductions = {}
    for name, build in (("migratory", migratory_protocol),
                        ("invalidate", invalidate_protocol)):
        rows = {}
        for label, config in (("fused", RefinementConfig()),
                              ("plain",
                               RefinementConfig(use_reqreply=False))):
            refined = refine(build(), config)
            workload = SyntheticWorkload(seed=55, write_fraction=0.6)
            metrics = Simulator(refined, 8, workload,
                                seed=55).run(until=20_000)
            rows[label] = metrics
            lines.append(f"{name:<12} {label:<8} "
                         f"{metrics.total_messages:>9} "
                         f"{metrics.messages_per_rendezvous:>8.2f}")
        reduction = 1 - (rows["fused"].messages_per_rendezvous
                         / rows["plain"].messages_per_rendezvous)
        reductions[name] = reduction
        lines.append(f"{'':<12} messages/rendezvous reduced by "
                     f"{reduction:.1%}")
    write_report(results_dir, "reqreply_workloads.txt", "\n".join(lines))

    # both protocols fuse their dominant transactions: expect a large cut
    assert reductions["migratory"] > 0.25
    assert reductions["invalidate"] > 0.15

    benchmark.pedantic(
        lambda: Simulator(refine(migratory_protocol()), 8,
                          SyntheticWorkload(seed=5), seed=5).run(until=5000),
        iterations=1, rounds=1)


def test_fusion_also_shrinks_verification(benchmark, results_dir):
    fused = refine(migratory_protocol())
    plain = refine(migratory_protocol(),
                   RefinementConfig(use_reqreply=False))
    lines = ["Fusion shrinks the asynchronous state space:", "",
             f"{'N':>3} {'fused':>9} {'plain':>9}"]
    for n in (2, 3):
        a = explore(AsyncSystem(fused, n))
        b = explore(AsyncSystem(plain, n))
        lines.append(f"{n:>3} {a.n_states:>9} {b.n_states:>9}")
        assert a.n_states < b.n_states
    write_report(results_dir, "reqreply_statespace.txt", "\n".join(lines))
    benchmark(lambda: explore(AsyncSystem(fused, 3)))
