"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(tables, figures, or quantified prose claims), writes the rendered output
under ``benchmarks/results/`` and asserts the *shape* of the paper's
result (who wins, by what order of magnitude, where the cliff is).  The
measured numbers are recorded in EXPERIMENTS.md.

Budgets: set ``REPRO_BENCH_BUDGET`` (states) and ``REPRO_BENCH_SECONDS``
to trade fidelity against runtime; the defaults keep the whole suite at a
few minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def state_budget() -> int:
    return int(os.environ.get("REPRO_BENCH_BUDGET", "60000"))


@pytest.fixture(scope="session")
def time_budget() -> float:
    return float(os.environ.get("REPRO_BENCH_SECONDS", "60"))


def write_report(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
