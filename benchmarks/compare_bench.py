"""Diff a regenerated benchmark artifact against the committed baseline.

CI regenerates the artifact at the same pinned budget and calls::

    python benchmarks/compare_bench.py baseline.json candidate.json

The comparison dispatches on the document's ``schema`` field:

* ``repro.bench_explore/2`` (``BENCH_explore.json``) — exploration
  throughput and reduction effectiveness, one row per (protocol, n,
  config, engine); ``/1`` (no ``engine`` field, interpreted-only
  baselines) is still accepted;
* ``repro.bench_cutoff/1`` (``BENCH_cutoff.json``) — the parameterized
  (P45xx) static verdict per protocol plus the bounded-exploration
  cross-check at n = 2..4 and the stabilization cutoff;
* ``repro.bench_param/1`` (``BENCH_param.json``) — the parameterized
  coherence (P46xx) verdict per protocol plus the single-writer/SWMR
  exploration cross-check at n = 2..4;
* ``repro.profile/*`` (``--profile`` output of ``repro check``) — two
  profiles of the *same model*, typically produced by different drivers
  (sequential vs owner-computes partitioned).  Every deterministic
  count — final result fields and every per-level count — must agree
  **exactly** (no tolerance): the partitioned driver's whole contract
  is byte-identical counts.  Timing, byte sizes, worker/partition
  layout and the per-partition statistics rows are informational.

Exit status 1 when any *deterministic* field drifts more than the
tolerance (default 25%): state/transition/enabled counts, BFS depth,
deadlock counts, completion flags, verdicts, stabilization cutoffs and
the headline reduction ratios.  BFS order is deterministic at a fixed
budget, so on an unchanged exploration engine these fields match
exactly; the tolerance is headroom for legitimate engine changes, which
must ship with a regenerated baseline once they exceed it.  Timing
fields (``seconds``, ``states_per_sec``) and store byte sizes
(``approx_bytes`` — Python-version dependent) are reported but never
fail the diff.

For ``/2`` explore documents an additional *cross-engine* invariant is
enforced within each document: rows that differ only in ``engine`` must
have **exactly** equal deterministic fields — the compiled engine is
required to reproduce the interpreter's counts byte-for-byte, with no
tolerance.  Only the timing fields may differ between engines.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

STRICT_FIELDS = ("n_states", "n_transitions", "n_enabled", "depth")
INFO_FIELDS = ("states_per_sec", "approx_bytes", "seconds")


def _key(run: dict[str, Any]) -> tuple:
    # /1 rows predate the step engines; they were all interpreted
    return (run["protocol"], run["n"], run["config"],
            run.get("engine", "interpreted"))


def _rel_drift(old: float, new: float) -> float:
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new), 1e-9)
    return abs(new - old) / denom


def _compare_runs(section: str, old_runs: list, new_runs: list,
                  tolerance: float, errors: list, notes: list) -> None:
    old_by, new_by = ({_key(r): r for r in runs}
                      for runs in (old_runs, new_runs))
    if set(old_by) != set(new_by):
        errors.append(f"{section}: row sets differ: "
                      f"missing={sorted(set(old_by) - set(new_by))} "
                      f"extra={sorted(set(new_by) - set(old_by))}")
        return
    for key in sorted(old_by):
        old, new = old_by[key], new_by[key]
        label = f"{section} {key[0]}-n{key[1]}-{key[2]}-{key[3]}"
        if old["completed"] != new["completed"]:
            errors.append(f"{label}: completed "
                          f"{old['completed']} -> {new['completed']}")
        for field in STRICT_FIELDS:
            drift = _rel_drift(old[field], new[field])
            if drift > tolerance:
                errors.append(f"{label}: {field} {old[field]} -> "
                              f"{new[field]} ({drift:.1%} > "
                              f"{tolerance:.0%})")
        if abs(old["transition_pruning"]
               - new["transition_pruning"]) > tolerance:
            errors.append(f"{label}: transition_pruning "
                          f"{old['transition_pruning']} -> "
                          f"{new['transition_pruning']}")
        for field in INFO_FIELDS:
            drift = _rel_drift(old.get(field, 0), new.get(field, 0))
            if drift > tolerance:
                notes.append(f"{label}: {field} {old.get(field)} -> "
                             f"{new.get(field)} (informational)")


#: deterministic per-row fields that must agree *exactly* across engines
#: (the compiled engine's whole contract is byte-identical counts)
CROSS_ENGINE_EXACT = STRICT_FIELDS + ("completed", "transition_pruning")


def _check_cross_engine(section: str, runs: list, errors: list) -> None:
    """Within one document, rows differing only in engine must have
    exactly equal deterministic fields (no tolerance)."""
    by_cell: dict[tuple, list[dict]] = {}
    for run in runs:
        by_cell.setdefault(_key(run)[:3], []).append(run)
    for cell, rows in sorted(by_cell.items()):
        if len(rows) < 2:
            continue
        reference = rows[0]
        for row in rows[1:]:
            for field in CROSS_ENGINE_EXACT:
                if row.get(field) != reference.get(field):
                    errors.append(
                        f"{section} {cell[0]}-n{cell[1]}-{cell[2]}: "
                        f"{field} differs across engines: "
                        f"{reference.get('engine')}={reference.get(field)} "
                        f"vs {row.get('engine')}={row.get(field)}")


#: per-protocol fields of the cutoff artifact that must match exactly
CUTOFF_EXACT = ("static_verdict", "discharged", "complete_cover",
                "n_flows", "n_invariants", "stabilizes_at", "agreement")
#: per-(protocol, n) exploration fields held to the drift tolerance
CUTOFF_STRICT = ("n_states", "n_transitions", "deadlocks")


def _compare_cutoff(baseline: dict, candidate: dict, tolerance: float,
                    errors: list, notes: list) -> None:
    old_by, new_by = ({p["protocol"]: p for p in doc["protocols"]}
                      for doc in (baseline, candidate))
    if set(old_by) != set(new_by):
        errors.append(f"protocols: row sets differ: "
                      f"missing={sorted(set(old_by) - set(new_by))} "
                      f"extra={sorted(set(new_by) - set(old_by))}")
        return
    for name in sorted(old_by):
        old, new = old_by[name], new_by[name]
        for field in CUTOFF_EXACT:
            if old.get(field) != new.get(field):
                errors.append(f"{name}: {field} {old.get(field)} -> "
                              f"{new.get(field)}")
        old_runs = {r["n"]: r for r in old["exploration"]}
        new_runs = {r["n"]: r for r in new["exploration"]}
        if set(old_runs) != set(new_runs):
            errors.append(f"{name}: exploration sizes differ: "
                          f"{sorted(old_runs)} -> {sorted(new_runs)}")
            continue
        for n in sorted(old_runs):
            o, c = old_runs[n], new_runs[n]
            label = f"{name}-n{n}"
            if o["completed"] != c["completed"]:
                errors.append(f"{label}: completed "
                              f"{o['completed']} -> {c['completed']}")
            if o.get("verdict") != c.get("verdict"):
                errors.append(f"{label}: verdict {o.get('verdict')} -> "
                              f"{c.get('verdict')}")
            for field in CUTOFF_STRICT:
                drift = _rel_drift(o[field], c[field])
                if drift > tolerance:
                    errors.append(f"{label}: {field} {o[field]} -> "
                                  f"{c[field]} ({drift:.1%} > "
                                  f"{tolerance:.0%})")
            drift = _rel_drift(o.get("seconds", 0), c.get("seconds", 0))
            if drift > tolerance:
                notes.append(f"{label}: seconds {o.get('seconds')} -> "
                             f"{c.get('seconds')} (informational)")


#: per-protocol fields of the param artifact that must match exactly
PARAM_EXACT = ("static_verdict", "discharged", "candidates", "validated",
               "n_lemmas", "iterations", "agreement")
#: per-(protocol, n) exploration fields held to the drift tolerance
PARAM_STRICT = ("n_states", "n_transitions", "violations")


def _compare_param(baseline: dict, candidate: dict, tolerance: float,
                   errors: list, notes: list) -> None:
    old_by, new_by = ({p["protocol"]: p for p in doc["protocols"]}
                      for doc in (baseline, candidate))
    if set(old_by) != set(new_by):
        errors.append(f"protocols: row sets differ: "
                      f"missing={sorted(set(old_by) - set(new_by))} "
                      f"extra={sorted(set(new_by) - set(old_by))}")
        return
    for name in sorted(old_by):
        old, new = old_by[name], new_by[name]
        for field in PARAM_EXACT:
            if old.get(field) != new.get(field):
                errors.append(f"{name}: {field} {old.get(field)} -> "
                              f"{new.get(field)}")
        drift = _rel_drift(old.get("abstract_states", 0),
                           new.get("abstract_states", 0))
        if drift > tolerance:
            errors.append(f"{name}: abstract_states "
                          f"{old.get('abstract_states')} -> "
                          f"{new.get('abstract_states')} "
                          f"({drift:.1%} > {tolerance:.0%})")
        old_runs = {r["n"]: r for r in old["exploration"]}
        new_runs = {r["n"]: r for r in new["exploration"]}
        if set(old_runs) != set(new_runs):
            errors.append(f"{name}: exploration sizes differ: "
                          f"{sorted(old_runs)} -> {sorted(new_runs)}")
            continue
        for n in sorted(old_runs):
            o, c = old_runs[n], new_runs[n]
            label = f"{name}-n{n}"
            if o["completed"] != c["completed"]:
                errors.append(f"{label}: completed "
                              f"{o['completed']} -> {c['completed']}")
            if o.get("verdict") != c.get("verdict"):
                errors.append(f"{label}: verdict {o.get('verdict')} -> "
                              f"{c.get('verdict')}")
            for field in PARAM_STRICT:
                drift = _rel_drift(o[field], c[field])
                if drift > tolerance:
                    errors.append(f"{label}: {field} {o[field]} -> "
                                  f"{c[field]} ({drift:.1%} > "
                                  f"{tolerance:.0%})")
            drift = _rel_drift(o.get("seconds", 0), c.get("seconds", 0))
            if drift > tolerance:
                notes.append(f"{label}: seconds {o.get('seconds')} -> "
                             f"{c.get('seconds')} (informational)")


#: result fields of a profile document that must agree exactly across
#: drivers of the same model (the byte-identical-counts contract)
PROFILE_RESULT_EXACT = ("n_states", "n_transitions", "n_enabled",
                        "deadlocks", "completed", "stop_reason",
                        "reductions", "store", "fingerprint_collisions")
#: per-level fields held to exact equality; seconds/bytes are not
PROFILE_LEVEL_EXACT = ("level", "frontier", "expanded", "candidates",
                       "new_states", "n_states", "n_transitions",
                       "deadlocks", "collisions", "enabled")
PROFILE_LEVEL_INFO = ("seconds", "approx_bytes", "spill_bytes")


def _compare_profiles(baseline: dict, candidate: dict,
                      errors: list, notes: list) -> None:
    old_res, new_res = baseline["result"], candidate["result"]
    for field in PROFILE_RESULT_EXACT:
        if old_res.get(field) != new_res.get(field):
            errors.append(f"result.{field}: {old_res.get(field)} -> "
                          f"{new_res.get(field)} (must match exactly)")
    old_levels, new_levels = baseline["levels"], candidate["levels"]
    if len(old_levels) != len(new_levels):
        errors.append(f"levels: {len(old_levels)} -> {len(new_levels)} "
                      "(BFS depth must match exactly)")
        return
    drifted = {field: 0 for field in PROFILE_LEVEL_INFO}
    for old, new in zip(old_levels, new_levels):
        for field in PROFILE_LEVEL_EXACT:
            if old.get(field) != new.get(field):
                errors.append(f"level {old.get('level')}: {field} "
                              f"{old.get(field)} -> {new.get(field)} "
                              "(must match exactly)")
        for field in PROFILE_LEVEL_INFO:
            if _rel_drift(old.get(field, 0) or 0,
                          new.get(field, 0) or 0) > 0.25:
                drifted[field] += 1
    for field, count in drifted.items():
        if count:
            notes.append(f"levels: {field} drifted on {count}/"
                         f"{len(old_levels)} level(s) (informational)")
    old_run, new_run = baseline.get("run") or {}, candidate.get("run") or {}
    for field in ("workers", "partitions", "store", "engine"):
        if old_run.get(field) != new_run.get(field):
            notes.append(f"run.{field}: {old_run.get(field)} -> "
                         f"{new_run.get(field)} (layout, informational)")


def compare(baseline: dict, candidate: dict,
            tolerance: float = 0.25) -> tuple[list[str], list[str]]:
    """Return (errors, notes); empty errors means the diff passes."""
    errors: list[str] = []
    notes: list[str] = []
    schema = str(baseline.get("schema") or "")
    if schema.startswith("repro.profile/"):
        # two profiles of the same model (e.g. sequential vs
        # partitioned driver): schema versions may differ, counts not
        if not str(candidate.get("schema") or "").startswith(
                "repro.profile/"):
            errors.append(f"schema {baseline.get('schema')} -> "
                          f"{candidate.get('schema')}")
            return errors, notes
        _compare_profiles(baseline, candidate, errors, notes)
        return errors, notes
    if candidate.get("schema") != baseline.get("schema"):
        errors.append(f"schema {baseline.get('schema')} -> "
                      f"{candidate.get('schema')}")
        return errors, notes
    if candidate.get("budget") != baseline.get("budget"):
        errors.append(f"budget {baseline.get('budget')} -> "
                      f"{candidate.get('budget')}: budgeted sections are "
                      "only comparable at equal budgets")
        return errors, notes
    if baseline.get("schema") == "repro.bench_cutoff/1":
        _compare_cutoff(baseline, candidate, tolerance, errors, notes)
        return errors, notes
    if baseline.get("schema") == "repro.bench_param/1":
        _compare_param(baseline, candidate, tolerance, errors, notes)
        return errors, notes
    _compare_runs("runs", baseline["runs"], candidate["runs"],
                  tolerance, errors, notes)
    _compare_runs("headline", baseline["headline"]["runs"],
                  candidate["headline"]["runs"], tolerance, errors, notes)
    if baseline.get("schema") == "repro.bench_explore/2":
        for label, doc in (("baseline", baseline), ("candidate", candidate)):
            _check_cross_engine(f"{label} runs", doc["runs"], errors)
            _check_cross_engine(f"{label} headline",
                                doc["headline"]["runs"], errors)
    old_red = baseline["headline"]["reductions"]
    new_red = candidate["headline"]["reductions"]
    for name in sorted(set(old_red) | set(new_red)):
        old_v: Optional[float] = old_red.get(name)
        new_v = new_red.get(name)
        if (old_v is None) != (new_v is None):
            errors.append(f"reductions.{name}: {old_v} -> {new_v}")
        elif old_v is not None and abs(old_v - new_v) > tolerance:
            errors.append(f"reductions.{name}: {old_v} -> {new_v}")
    return errors, notes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark artifact "
                                         "(BENCH_explore.json / "
                                         "BENCH_cutoff.json / "
                                         "BENCH_param.json)")
    parser.add_argument("candidate", help="regenerated artifact of the "
                                          "same schema")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max relative drift on deterministic fields")
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)
    errors, notes = compare(baseline, candidate, args.tolerance)
    for note in notes:
        print(f"note: {note}")
    for error in errors:
        print(f"FAIL: {error}")
    if errors:
        print(f"{len(errors)} deterministic field(s) drifted beyond "
              f"{args.tolerance:.0%}")
        return 1
    print(f"benchmark diff OK ({args.tolerance:.0%} tolerance, "
          f"{len(notes)} informational note(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
