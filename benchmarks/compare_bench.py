"""Diff a regenerated BENCH_explore.json against the committed baseline.

CI regenerates the artifact at the same pinned budget and calls::

    python benchmarks/compare_bench.py baseline.json candidate.json

Exit status 1 when any *deterministic* field drifts more than the
tolerance (default 25%): state/transition/enabled counts, BFS depth,
completion flags and the headline reduction ratios.  BFS order is
deterministic at a fixed budget, so on an unchanged exploration engine
these fields match exactly; the tolerance is headroom for legitimate
engine changes, which must ship with a regenerated baseline once they
exceed it.  Timing fields (``seconds``, ``states_per_sec``) and store
byte sizes (``approx_bytes`` — Python-version dependent) are reported
but never fail the diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

STRICT_FIELDS = ("n_states", "n_transitions", "n_enabled", "depth")
INFO_FIELDS = ("states_per_sec", "approx_bytes", "seconds")


def _key(run: dict[str, Any]) -> tuple:
    return (run["protocol"], run["n"], run["config"])


def _rel_drift(old: float, new: float) -> float:
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new), 1e-9)
    return abs(new - old) / denom


def _compare_runs(section: str, old_runs: list, new_runs: list,
                  tolerance: float, errors: list, notes: list) -> None:
    old_by, new_by = ({_key(r): r for r in runs}
                      for runs in (old_runs, new_runs))
    if set(old_by) != set(new_by):
        errors.append(f"{section}: row sets differ: "
                      f"missing={sorted(set(old_by) - set(new_by))} "
                      f"extra={sorted(set(new_by) - set(old_by))}")
        return
    for key in sorted(old_by):
        old, new = old_by[key], new_by[key]
        label = f"{section} {key[0]}-n{key[1]}-{key[2]}"
        if old["completed"] != new["completed"]:
            errors.append(f"{label}: completed "
                          f"{old['completed']} -> {new['completed']}")
        for field in STRICT_FIELDS:
            drift = _rel_drift(old[field], new[field])
            if drift > tolerance:
                errors.append(f"{label}: {field} {old[field]} -> "
                              f"{new[field]} ({drift:.1%} > "
                              f"{tolerance:.0%})")
        if abs(old["transition_pruning"]
               - new["transition_pruning"]) > tolerance:
            errors.append(f"{label}: transition_pruning "
                          f"{old['transition_pruning']} -> "
                          f"{new['transition_pruning']}")
        for field in INFO_FIELDS:
            drift = _rel_drift(old.get(field, 0), new.get(field, 0))
            if drift > tolerance:
                notes.append(f"{label}: {field} {old.get(field)} -> "
                             f"{new.get(field)} (informational)")


def compare(baseline: dict, candidate: dict,
            tolerance: float = 0.25) -> tuple[list[str], list[str]]:
    """Return (errors, notes); empty errors means the diff passes."""
    errors: list[str] = []
    notes: list[str] = []
    if candidate.get("schema") != baseline.get("schema"):
        errors.append(f"schema {baseline.get('schema')} -> "
                      f"{candidate.get('schema')}")
        return errors, notes
    if candidate.get("budget") != baseline.get("budget"):
        errors.append(f"budget {baseline.get('budget')} -> "
                      f"{candidate.get('budget')}: budgeted sections are "
                      "only comparable at equal budgets")
        return errors, notes
    _compare_runs("runs", baseline["runs"], candidate["runs"],
                  tolerance, errors, notes)
    _compare_runs("headline", baseline["headline"]["runs"],
                  candidate["headline"]["runs"], tolerance, errors, notes)
    old_red = baseline["headline"]["reductions"]
    new_red = candidate["headline"]["reductions"]
    for name in sorted(set(old_red) | set(new_red)):
        old_v: Optional[float] = old_red.get(name)
        new_v = new_red.get(name)
        if (old_v is None) != (new_v is None):
            errors.append(f"reductions.{name}: {old_v} -> {new_v}")
        elif old_v is not None and abs(old_v - new_v) > tolerance:
            errors.append(f"reductions.{name}: {old_v} -> {new_v}")
    return errors, notes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_explore.json")
    parser.add_argument("candidate", help="regenerated BENCH_explore.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max relative drift on deterministic fields")
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)
    errors, notes = compare(baseline, candidate, args.tolerance)
    for note in notes:
        print(f"note: {note}")
    for error in errors:
        print(f"FAIL: {error}")
    if errors:
        print(f"{len(errors)} deterministic field(s) drifted beyond "
              f"{args.tolerance:.0%}")
        return 1
    print(f"benchmark diff OK ({args.tolerance:.0%} tolerance, "
          f"{len(notes)} informational note(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
