"""Experiment: paper Table 3 — verification cost, rendezvous vs asynchronous.

Paper values (states/seconds under a 64 MB cap)::

    Migratory   N=2  async 23163/2.84   rv 54/0.1
                N=4  async Unfinished   rv 235/0.4
                N=8  async Unfinished   rv 965/0.5
    Invalidate  N=2  async 193389/19.23 rv 546/0.6
                N=4  async Unfinished   rv 18686/2.3
                N=6  async Unfinished   rv 228334/18.4

Shape claims asserted here:

* at every node count the rendezvous space is at least an order of
  magnitude smaller than the asynchronous space;
* migratory asynchronous verification hits the budget ("Unfinished") by
  N = 8 while the rendezvous version stays trivial;
* the invalidate protocol is far costlier than migratory at equal N, at
  both levels.

Deviation from the paper (recorded in EXPERIMENTS.md): our semantics steps
at protocol-action granularity, not SPIN's statement granularity, so our
absolute counts are smaller — e.g. migratory async N = 4 completes here —
and our rendezvous invalidate encoding (explicit intent taus + sharer set)
is less compact than the paper's at N = 6.  All *orderings* hold.
"""

from __future__ import annotations

from conftest import write_report

from repro.bench.table3 import render_table3, table3_rows
from repro.check.explorer import explore
from repro.semantics.rendezvous import RendezvousSystem
from repro.protocols.migratory import migratory_protocol


def test_table3(benchmark, results_dir, state_budget, time_budget):
    rows = benchmark.pedantic(
        table3_rows, kwargs=dict(budget=state_budget,
                                 time_budget=time_budget),
        iterations=1, rounds=1)
    write_report(results_dir, "table3.txt",
                 render_table3(rows=rows, budget=state_budget,
                               time_budget=time_budget))

    by_key = {(r.protocol, r.n): r for r in rows}

    # rendezvous is always far cheaper than asynchronous
    for row in rows:
        if row.asynchronous.completed and row.rendezvous.completed:
            assert row.rendezvous.n_states * 5 <= row.asynchronous.n_states
        if not row.rendezvous.completed:
            # if even the rendezvous run hit the budget, the asynchronous
            # one must have too (never the other way around)
            assert not row.asynchronous.completed

    # migratory: rendezvous trivial at N=8 where asynchronous is Unfinished
    assert by_key[("Migratory", 8)].rendezvous.completed
    assert by_key[("Migratory", 8)].rendezvous.n_states < 2000
    assert not by_key[("Migratory", 8)].asynchronous.completed

    # both levels complete at N=2, with the paper's ordering
    for proto in ("Migratory", "Invalidate"):
        row = by_key[(proto, 2)]
        assert row.rendezvous.completed and row.asynchronous.completed

    # invalidate costs far more than migratory at equal size, both levels
    assert by_key[("Invalidate", 2)].rendezvous.n_states > \
        10 * by_key[("Migratory", 2)].rendezvous.n_states
    assert by_key[("Invalidate", 2)].asynchronous.n_states > \
        10 * by_key[("Migratory", 2)].asynchronous.n_states


def test_rendezvous_exploration_speed(benchmark):
    """Timing anchor: the rendezvous migratory check the paper calls
    'orders of magnitude more efficient' — N=8 in well under a second."""
    protocol = migratory_protocol()

    def run():
        return explore(RendezvousSystem(protocol, 8))

    result = benchmark(run)
    assert result.completed and result.n_states < 2000
