"""Experiment: paper section 5 scaling claim.

"In fact, the rendezvous migratory protocol could be model checked for up
to 64 nodes using 32MB of memory, while the asynchronous protocol can be
model checked for only two nodes using 64MB of memory."

We sweep the node count for the rendezvous migratory protocol up to 64 and
record states/time/approximate memory, asserting completion at 64 nodes
within a small fraction of the budget that the asynchronous protocol
exhausts by 6 nodes.  A second sweep shows the modelling pitfall the
library documents: making the CPU intent an explicit per-remote tau
(`explicit_rw=True`) turns the same protocol exponential and kills the
64-node result.
"""

from __future__ import annotations

from conftest import write_report

from repro.check.explorer import explore
from repro.protocols.migratory import migratory_protocol
from repro.refine.engine import refine
from repro.semantics.asynchronous import AsyncSystem
from repro.semantics.rendezvous import RendezvousSystem


def test_rendezvous_scales_to_64_nodes(benchmark, results_dir, state_budget):
    protocol = migratory_protocol()
    lines = ["Rendezvous migratory scaling (paper section 5: checkable to "
             "64 nodes)", "",
             f"{'N':>4} {'states':>10} {'transitions':>12} {'seconds':>8} "
             f"{'~MB':>6}"]
    results = {}
    for n in (2, 4, 8, 16, 32, 64):
        result = explore(RendezvousSystem(protocol, n),
                         name=f"rv-migratory-{n}")
        results[n] = result
        lines.append(f"{n:>4} {result.n_states:>10} "
                     f"{result.n_transitions:>12} {result.seconds:>8.2f} "
                     f"{result.approx_bytes / 1e6:>6.1f}")
    write_report(results_dir, "scaling_rendezvous.txt", "\n".join(lines))

    assert results[64].completed
    # growth must be polynomial: quadrupling from 16 to 64 nodes must not
    # square the state count
    assert results[64].n_states < results[16].n_states ** 2 / 4
    # timing anchor for pytest-benchmark
    final = benchmark.pedantic(
        lambda: explore(RendezvousSystem(protocol, 64)),
        iterations=1, rounds=1)
    assert final.completed


def test_async_dies_within_a_few_nodes(benchmark, results_dir,
                                       state_budget, time_budget):
    refined = refine(migratory_protocol())
    lines = ["Asynchronous migratory scaling (budget "
             f"{state_budget} states):", "",
             f"{'N':>4} {'result':>14}"]
    first_unfinished = None
    for n in (2, 3, 4, 5, 6):
        result = explore(AsyncSystem(refined, n), max_states=state_budget,
                         max_seconds=time_budget,
                         name=f"async-migratory-{n}")
        lines.append(f"{n:>4} {result.cell():>14}")
        if not result.completed and first_unfinished is None:
            first_unfinished = n
            break
    write_report(results_dir, "scaling_async.txt", "\n".join(lines))
    assert first_unfinished is not None and first_unfinished <= 6

    small = benchmark(lambda: explore(AsyncSystem(refined, 2)))
    assert small.completed


def test_explicit_intent_modelling_pitfall(benchmark, results_dir):
    """The 2^n trap: per-remote intent bits destroy the scaling result."""
    fused = migratory_protocol()
    explicit = migratory_protocol(explicit_rw=True)
    lines = ["Modelling pitfall: explicit per-remote CPU-intent tau",
             "", f"{'N':>4} {'fused-intent':>14} {'explicit-rw':>14}"]
    ratios = []
    for n in (2, 4, 8):
        a = explore(RendezvousSystem(fused, n))
        b = explore(RendezvousSystem(explicit, n))
        ratios.append(b.n_states / a.n_states)
        lines.append(f"{n:>4} {a.n_states:>14} {b.n_states:>14}")
    write_report(results_dir, "scaling_pitfall.txt", "\n".join(lines))
    # the gap must widen drastically with n (exponential vs polynomial)
    assert ratios[-1] > 4 * ratios[0]

    benchmark.pedantic(lambda: explore(RendezvousSystem(explicit, 8)),
                       iterations=1, rounds=1)
