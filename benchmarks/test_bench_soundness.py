"""Experiment: the section 4 soundness theorem, machine-checked.

The paper argues Equation 1 (every asynchronous step is a stutter or maps
to a rendezvous step under the abstraction function) by case analysis; we
verify it exhaustively for every library protocol and report the cost of
doing so — which doubles as a measurement of how much cheaper the paper's
way (verify the rendezvous protocol, trust the theorem) is than the
traditional way (verify the asynchronous protocol directly).
"""

from __future__ import annotations

from conftest import write_report

from repro.check.simulation import check_simulation
from repro.protocols.invalidate import invalidate_protocol
from repro.protocols.migratory import migratory_protocol
from repro.protocols.msi import msi_protocol
from repro.refine.engine import refine
from repro.refine.plan import RefinementConfig
from repro.semantics.asynchronous import AsyncSystem


def test_simulation_holds_for_all_protocols(benchmark, results_dir):
    lines = ["Equation 1 (weak simulation) checked exhaustively:", ""]
    for name, build, n in (("migratory", migratory_protocol, 2),
                           ("invalidate", invalidate_protocol, 2),
                           ("msi", msi_protocol, 2)):
        refined = refine(build())
        report = check_simulation(AsyncSystem(refined, n))
        lines.append(f"  {name} (n={n}): {report.describe().splitlines()[0]}")
        assert report.ok
    write_report(results_dir, "soundness_simulation.txt", "\n".join(lines))

    refined = refine(migratory_protocol())
    benchmark.pedantic(lambda: check_simulation(AsyncSystem(refined, 2)),
                       iterations=1, rounds=3)


def test_plain_refinement_satisfies_exact_equation(benchmark, results_dir):
    """Without fusion the literal one-step Equation 1 holds; with fusion
    the home-initiated pairs need the two-step form (a finding of this
    reproduction, recorded in EXPERIMENTS.md)."""
    plain = refine(migratory_protocol(), RefinementConfig(use_reqreply=False))
    fused = refine(migratory_protocol())

    exact = check_simulation(AsyncSystem(plain, 2), max_depth=1)
    shallow_fused = check_simulation(AsyncSystem(fused, 2), max_depth=1)
    deep_fused = check_simulation(AsyncSystem(fused, 2), max_depth=2)

    lines = [
        "Equation 1 step-depth analysis:",
        "",
        f"  plain refinement, depth 1: "
        f"{'HOLDS' if exact.ok else 'FAILS'}",
        f"  fused refinement, depth 1: "
        f"{'HOLDS' if shallow_fused.ok else 'FAILS'} "
        f"(expected to fail: responder C3 completes two rendezvous)",
        f"  fused refinement, depth 2: "
        f"{'HOLDS' if deep_fused.ok else 'FAILS'} "
        f"({deep_fused.n_mapped_deep} two-step edges)",
    ]
    write_report(results_dir, "soundness_depth.txt", "\n".join(lines))

    assert exact.ok
    assert not shallow_fused.ok
    assert deep_fused.ok and deep_fused.n_mapped_deep > 0

    benchmark(lambda: check_simulation(AsyncSystem(plain, 2), max_depth=1))
