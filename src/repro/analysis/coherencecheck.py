"""Parameterized coherence verification via environment abstraction (P46xx).

The explorer checks single-writer and SWMR (``protocols/invariants.py``)
at fixed node counts; this pass lifts the same two properties to *any*
number of remotes.  The construction is the classic CMP-style
environment abstraction: keep **two concrete remotes** (ids 0 and 1)
and collapse every further remote into one stateless **Other** node
(id :data:`OTHER`).  Both coherence properties mention at most two
remotes, and remotes are interchangeable copies of one template, so a
violation in any N-node run projects — by symmetry — onto a run of the
abstract system in which the two offending nodes are the concrete pair
and everyone else is Other.  If the abstract system has no reachable
violation, no instance does.

The abstract system over-approximates the environment:

* **Other sends**: any remote-template output message (with any payload
  the template can produce) may arrive at the home at any time, through
  *every* accepting home input guard — Other conflates real senders
  whose first-matching guard would differ, so one offer per accepting
  guard is the sound enumeration.  The home applies its usual binding
  and update with sender id :data:`OTHER`.
* **Other receives**: a home output whose target evaluates to
  :data:`OTHER` is absorbed unconditionally whenever the message is in
  the remote template's input alphabet (some environment node in some
  state might accept it); the home applies its update, Other has no
  state to change.
* **Sticky sets**: a home update may shrink an id-set variable (e.g.
  the sharer set).  Concretely that removes *one* id; in the
  projection, other environment members may remain.  Whenever a step
  removes :data:`OTHER` from a ``frozenset`` variable the abstract
  system additionally offers a variant step that keeps it — so the
  abstraction covers both "the last environment sharer left" and "more
  remain".

Unrefined, Other is too wild for some protocols: it can answer a
point-to-point handshake it was never part of.  The refinement loop
(CEGAR in the small) strengthens the abstraction with
**noninterference lemmas** harvested from the derived flow graph
(:mod:`repro.analysis.flows`): while the home is inside a flow engaged
with the remote named by variable ``v``, that remote sits inside the
flow's requester/responder region and can only send what that region
can produce.  Each candidate lemma is first *validated* — its concrete
justification invariant is model-checked on the two-node instance —
and only validated lemmas may be promoted.  A promoted lemma prunes
Other-sends along ``VarSender(v)`` guards only; fresh-sender guards
(``AnySender``/``SetSender``) stay open, because Other also plays the
innocent bystanders.

The loop: explore the abstract system; if a violation trace contains
no Other/sticky step it is a genuine two-node counterexample (replayed
through :class:`~repro.semantics.rendezvous.RendezvousSystem` to make
sure, rendered as an MSC by the CLI) — **refuted**; otherwise promote
the validated lemmas that would have blocked one of its Other-sends
and re-run; if none applies, or budgets run out, the verdict is
**inconclusive** — never a silent discharge.

Soundness caveats, stated rather than hidden: the abstraction is exact
for the id-opaque fragment the library and generator use (variable /
set / any sender patterns, variable targets, id-polymorphic updates);
home guards that inspect remote ids by arbitrary predicate or compute
targets by expression are flagged ``P4605`` and force an inconclusive
verdict.  Lemma justification is checked on the n=2 instance and
lifted by the same symmetry argument the P45xx pass documents; the
``BENCH_param.json`` differential cross-checks every verdict against
bounded exploration at n = 2..4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

from ..csp.ast import (
    ConstTarget,
    ExprTarget,
    Input,
    PredSender,
    Protocol,
    VarSender,
)
from ..csp.env import Env, Value
from .diagnostics import Diagnostic, make
from .flows import FlowGraph, derive_flows, producible_msgs, tau_closure

if TYPE_CHECKING:  # pragma: no cover - resolved lazily by _load_runtime
    from ..check.explorer import explore
    from ..check.stats import Counterexample
    from ..protocols.invariants import (
        COHERENCE_SPECS,
        CoherenceSpec,
        coherence_invariants,
    )
    from ..refine.plan import RefinementConfig
    from ..refine.reqreply import PairReport
    from ..semantics.rendezvous import (
        RendezvousStep,
        RendezvousSystem,
        TauStep,
    )
    from ..semantics.state import HOME_ID, ProcState, RvState


def _load_runtime() -> None:
    """Bind the exploration/semantics/invariants imports on first use.

    :mod:`repro.analysis` is imported while :mod:`repro.semantics`,
    :mod:`repro.check` and :mod:`repro.protocols` are still
    initializing, so — like :mod:`.paramcheck` — this module keeps the
    heavy imports out of module scope and binds them on first entry.
    """
    if "explore" in globals():
        return
    from ..check import explorer, stats
    from ..protocols import invariants
    from ..semantics import rendezvous, state

    globals().update(
        explore=explorer.explore,
        Counterexample=stats.Counterexample,
        COHERENCE_SPECS=invariants.COHERENCE_SPECS,
        CoherenceSpec=invariants.CoherenceSpec,
        coherence_invariants=invariants.coherence_invariants,
        RendezvousStep=rendezvous.RendezvousStep,
        RendezvousSystem=rendezvous.RendezvousSystem,
        TauStep=rendezvous.TauStep,
        HOME_ID=state.HOME_ID,
        ProcState=state.ProcState,
        RvState=state.RvState,
    )

__all__ = [
    "OTHER",
    "AbstractCoherenceSystem",
    "AbstractionError",
    "CoherenceLemma",
    "CoherenceVerdict",
    "OtherRecv",
    "OtherSend",
    "StickyStep",
    "check_coherence",
    "coherencecheck_pass",
    "derive_candidate_lemmas",
]

#: Number of concrete remote nodes kept by the abstraction.  Coherence
#: is a two-index property, so two suffice; the environment node gets
#: the next id.
N_CONCRETE = 2
OTHER = N_CONCRETE


class AbstractionError(Exception):
    """The abstract semantics hit a construct it cannot over-approximate."""


# ---------------------------------------------------------------------------
# abstract actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OtherSend:
    """The environment sends ``msg`` to the home.

    ``in_index`` pins which home input guard accepted it: Other stands
    for many real senders at once, so every accepting guard is a
    distinct abstract step (first-match would under-approximate).
    """

    msg: str
    payload: Value = None
    in_index: int = 0

    def describe(self) -> str:
        return f"other!{self.msg} ⇄ h[#{self.in_index}]"


@dataclass(frozen=True)
class OtherRecv:
    """The home sends ``msg`` to an environment node, which absorbs it."""

    msg: str
    out_index: int = 0

    def describe(self) -> str:
        return f"h!{self.msg} ⇄ other"


@dataclass(frozen=True)
class StickyStep:
    """Variant of a step whose update removed :data:`OTHER` from the
    id-set variables in ``vars`` — this copy keeps it, modelling real
    runs where further environment members remain in the set."""

    base: str
    vars: tuple[str, ...]

    def describe(self) -> str:
        return f"{self.base} ⊕ other∈{{{','.join(self.vars)}}}"


def _describe(action: Any) -> str:
    describe = getattr(action, "describe", None)
    return describe() if callable(describe) else repr(action)


def _is_abstract(action: Any) -> bool:
    return isinstance(action, (OtherSend, OtherRecv, StickyStep))


# ---------------------------------------------------------------------------
# noninterference lemmas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoherenceLemma:
    """While the home is in ``home_states`` engaged (via variable
    ``var``) with an environment node, that node can only send
    ``allowed_msgs``.

    ``pred`` is the concrete justification invariant (over a two-node
    :class:`~repro.semantics.state.RvState`); a lemma may gate the
    abstraction only after the invariant survives exhaustive two-node
    exploration.
    """

    name: str
    kind: str  # "engaged" | "wait"
    flow: str
    var: str
    home_states: frozenset[str]
    allowed_msgs: frozenset[str]
    detail: str
    pred: Callable[[Any], bool] = field(compare=False, repr=False)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "flow": self.flow,
            "var": self.var,
            "home_states": sorted(self.home_states),
            "allowed_msgs": sorted(self.allowed_msgs),
            "detail": self.detail,
        }


def _region_pred(home_states: frozenset[str], var: str,
                 region: frozenset[str]) -> Callable[[Any], bool]:
    def pred(rv: Any, _h: frozenset[str] = home_states, _v: str = var,
             _r: frozenset[str] = region) -> bool:
        if rv.home.state not in _h:
            return True
        idx = rv.home.env.get(_v)
        if not isinstance(idx, int) or not 0 <= idx < len(rv.remotes):
            return False
        return rv.remotes[idx].state in _r
    return pred


def derive_candidate_lemmas(
        protocol: Protocol, graph: FlowGraph) -> tuple[CoherenceLemma, ...]:
    """Candidate noninterference lemmas read off the flow graph.

    Two families per flow: the **engaged** lemma (home inside the flow
    ⇒ the requester sits in the flow's requester region, hence sends
    only what that region produces) and one **wait** lemma per flow
    wait on a non-requester variable whose pending message identifies
    the responder region.  Candidates are *not* yet trusted — see
    :func:`check_coherence` for the validation step.
    """
    remote = protocol.remote
    candidates: dict[str, CoherenceLemma] = {}
    for flow in graph.flows:
        var = flow.requester_var
        engaged = False
        if (flow.stable_entry and var is not None
                and flow.interior_home and flow.requester_region):
            region = flow.requester_region
            allowed = frozenset().union(
                *(producible_msgs(remote, s) for s in region))
            name = f"{flow.name}:engaged"
            candidates.setdefault(name, CoherenceLemma(
                name=name, kind="engaged", flow=flow.name, var=var,
                home_states=flow.interior_home, allowed_msgs=allowed,
                detail=(f"home inside {flow.name} ⇒ {var} is in "
                        f"{{{', '.join(sorted(region))}}} and sends only "
                        f"{{{', '.join(sorted(allowed))}}}"),
                pred=_region_pred(flow.interior_home, var, region)))
            engaged = True
        for wait in flow.waits:
            if engaged and wait.var == var:
                continue  # the engaged lemma already covers this state
            if wait.pending is None:
                continue
            responders = frozenset(
                g.to for sdef in remote.states.values()
                for g in sdef.inputs if g.msg == wait.pending)
            if not responders:
                continue
            region = frozenset().union(
                *(tau_closure(remote, s) for s in responders))
            allowed = frozenset().union(
                *(producible_msgs(remote, s) for s in region))
            name = f"{flow.name}:wait@{wait.state}:{wait.var}"
            states = frozenset({wait.state})
            candidates.setdefault(name, CoherenceLemma(
                name=name, kind="wait", flow=flow.name, var=wait.var,
                home_states=states, allowed_msgs=allowed,
                detail=(f"home at {wait.state} awaits "
                        f"{'/'.join(sorted(wait.msgs))} from {wait.var} "
                        f"after sending {wait.pending} ⇒ {wait.var} is in "
                        f"{{{', '.join(sorted(region))}}} and sends only "
                        f"{{{', '.join(sorted(allowed))}}}"),
                pred=_region_pred(states, wait.var, region)))
    return tuple(candidates[name] for name in sorted(candidates))


# ---------------------------------------------------------------------------
# the abstract system
# ---------------------------------------------------------------------------


class AbstractCoherenceSystem:
    """Two concrete remotes plus the Other environment node.

    States are plain two-remote :class:`~repro.semantics.state.RvState`
    values (Other is stateless); the concrete fragment mirrors
    :class:`~repro.semantics.rendezvous.RendezvousSystem` exactly, so a
    violation trace without abstract steps is a real two-node run.
    """

    def __init__(self, protocol: Protocol, *,
                 other_sends: dict[str, tuple[Value, ...]],
                 lemmas: tuple[CoherenceLemma, ...] = ()) -> None:
        _load_runtime()
        self.protocol = protocol
        self.other_sends = other_sends
        self.lemmas = tuple(lemmas)
        self.seen_remote_envs: set[Env] = {protocol.remote.initial_env}
        self._remote_input_msgs = frozenset(
            g.msg for sdef in protocol.remote.states.values()
            for g in sdef.inputs)

    # -- explorer interface --------------------------------------------------

    def initial_state(self) -> RvState:
        home = ProcState(self.protocol.home.initial_state,
                         self.protocol.home.initial_env)
        remote = ProcState(self.protocol.remote.initial_state,
                           self.protocol.remote.initial_env)
        return RvState(home=home, remotes=(remote,) * N_CONCRETE)

    def successors(self, state: RvState) -> list[tuple[Any, RvState]]:
        result: list[tuple[Any, RvState]] = []
        for action, post in self._base_successors(state):
            result.append((action, post))
            result.extend(self._sticky_variants(state, action, post))
        for _, post in result:
            for proc in post.remotes:
                self.seen_remote_envs.add(proc.env)
        return result

    def is_progress(self, action: Any) -> bool:
        return isinstance(action, (RendezvousStep, OtherSend, OtherRecv))

    # -- base transitions ----------------------------------------------------

    def _base_successors(
            self, state: RvState) -> Iterator[tuple[Any, RvState]]:
        yield from self._tau_steps(state)
        yield from self._home_active(state)
        yield from self._remote_active(state)
        yield from self._other_send_steps(state)

    def _tau_steps(self, state: RvState) -> Iterator[tuple[Any, RvState]]:
        for guard in self.protocol.home.state(state.home.state).taus:
            if guard.enabled(state.home.env):
                moved = state.home.moved(
                    guard.to, guard.apply_update(state.home.env))
                yield (TauStep(proc=HOME_ID, label=guard.label),
                       state.with_home(moved))
        for i, proc in enumerate(state.remotes):
            for guard in self.protocol.remote.state(proc.state).taus:
                if guard.enabled(proc.env):
                    moved = proc.moved(
                        guard.to, guard.apply_update(proc.env))
                    yield (TauStep(proc=i, label=guard.label),
                           state.with_remote(i, moved))

    def _home_active(self, state: RvState) -> Iterator[tuple[Any, RvState]]:
        home_def = self.protocol.home.state(state.home.state)
        for idx, guard in enumerate(home_def.outputs):
            if not guard.enabled(state.home.env):
                continue
            assert guard.target is not None
            try:
                target = guard.target.eval(state.home.env)
                payload = guard.eval_payload(state.home.env)
            except Exception as exc:
                raise AbstractionError(
                    f"home output !{guard.msg} at {state.home.state} is not "
                    f"evaluable under the abstraction ({exc})") from exc
            if 0 <= target < N_CONCRETE:
                remote = state.remotes[target]
                for r_guard in self.protocol.remote.state(
                        remote.state).inputs:
                    if r_guard.msg == guard.msg and r_guard.accepts(
                            remote.env, -1, payload):
                        new_home = state.home.moved(
                            guard.to, guard.apply_update(state.home.env))
                        new_remote = remote.moved(
                            r_guard.to,
                            r_guard.complete(remote.env, -1, payload))
                        yield (RendezvousStep(
                            active=HOME_ID, passive=target, msg=guard.msg,
                            payload=payload, out_index=idx),
                            state.with_home(new_home)
                            .with_remote(target, new_remote))
                        break  # one matching input is one rendezvous offer
            elif target == OTHER:
                if guard.msg not in self._remote_input_msgs:
                    continue  # no environment node could ever accept it
                new_home = state.home.moved(
                    guard.to, guard.apply_update(state.home.env))
                yield (OtherRecv(msg=guard.msg, out_index=idx),
                       state.with_home(new_home))
            else:
                raise AbstractionError(
                    f"home output !{guard.msg} at {state.home.state} "
                    f"targets remote {target}, outside the abstract "
                    f"universe 0..{OTHER}")

    def _remote_active(self, state: RvState) -> Iterator[tuple[Any, RvState]]:
        home_def = self.protocol.home.state(state.home.state)
        for i, proc in enumerate(state.remotes):
            for idx, guard in enumerate(
                    self.protocol.remote.state(proc.state).outputs):
                if not guard.enabled(proc.env):
                    continue
                payload = guard.eval_payload(proc.env)
                for h_guard in home_def.inputs:
                    if h_guard.msg == guard.msg and h_guard.accepts(
                            state.home.env, i, payload):
                        new_remote = proc.moved(
                            guard.to, guard.apply_update(proc.env))
                        new_home = state.home.moved(
                            h_guard.to,
                            h_guard.complete(state.home.env, i, payload))
                        yield (RendezvousStep(
                            active=i, passive=HOME_ID, msg=guard.msg,
                            payload=payload, out_index=idx),
                            state.with_home(new_home)
                            .with_remote(i, new_remote))
                        break

    def _other_send_steps(
            self, state: RvState) -> Iterator[tuple[Any, RvState]]:
        home_def = self.protocol.home.state(state.home.state)
        for msg in sorted(self.other_sends):
            for payload in self.other_sends[msg]:
                for in_index, guard in enumerate(home_def.inputs):
                    if guard.msg != msg:
                        continue
                    try:
                        if not guard.accepts(state.home.env, OTHER, payload):
                            continue
                        if self._blocked(state, guard, msg):
                            continue
                        new_env = guard.complete(
                            state.home.env, OTHER, payload)
                    except AbstractionError:
                        raise
                    except Exception as exc:
                        raise AbstractionError(
                            f"home input ?{msg} at {state.home.state} is "
                            f"not evaluable for the Other sender "
                            f"({exc})") from exc
                    yield (OtherSend(msg=msg, payload=payload,
                                     in_index=in_index),
                           state.with_home(
                               state.home.moved(guard.to, new_env)))

    def _blocked(self, state: RvState, guard: Input, msg: str) -> bool:
        if not isinstance(guard.sender, VarSender):
            return False  # fresh-sender guards also model bystanders
        for lemma in self.lemmas:
            if (lemma.var == guard.sender.var
                    and state.home.state in lemma.home_states
                    and state.home.env.get(lemma.var) == OTHER
                    and msg not in lemma.allowed_msgs):
                return True
        return False

    # -- sticky id-set variants ----------------------------------------------

    def _sticky_variants(
            self, pre: RvState, action: Any,
            post: RvState) -> list[tuple[Any, RvState]]:
        lost = sorted(
            key for key, value in post.home.env.items()
            if isinstance(value, frozenset) and OTHER not in value
            and isinstance(pre.home.env.get(key), frozenset)
            and OTHER in pre.home.env[key])  # type: ignore[operator]
        if not lost:
            return []
        variants: list[tuple[Any, RvState]] = []
        for subset in _nonempty_subsets(lost):
            env = post.home.env.update(
                {key: post.home.env[key] | {OTHER}  # type: ignore[operator]
                 for key in subset})
            variants.append((
                StickyStep(base=_describe(action), vars=subset),
                post.with_home(post.home.moved(post.home.state, env))))
        return variants


def _nonempty_subsets(items: list[str]) -> list[tuple[str, ...]]:
    subsets: list[tuple[str, ...]] = []
    for mask in range(1, 1 << len(items)):
        subsets.append(tuple(
            item for bit, item in enumerate(items) if mask >> bit & 1))
    return subsets


# ---------------------------------------------------------------------------
# the verdict
# ---------------------------------------------------------------------------


@dataclass
class CoherenceVerdict:
    """Outcome of the parameterized coherence check for one protocol."""

    protocol: str
    spec: CoherenceSpec
    status: str  # "discharged" | "refuted" | "inconclusive"
    properties: tuple[str, ...]
    lemmas: tuple[CoherenceLemma, ...]
    candidates: int
    validated: int
    iterations: int
    abstract_states: int
    obligations: tuple[Diagnostic, ...]
    witness: Optional[Counterexample] = None
    reason: Optional[str] = None

    @property
    def discharged(self) -> bool:
        return self.status == "discharged"

    def as_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "status": self.status,
            "discharged": self.discharged,
            "properties": list(self.properties),
            "lemmas": [lemma.as_dict() for lemma in self.lemmas],
            "candidates": self.candidates,
            "validated": self.validated,
            "iterations": self.iterations,
            "abstract_states": self.abstract_states,
            "reason": self.reason,
            "witness_steps": (len(self.witness.steps)
                              if self.witness is not None else None),
            "obligations": [d.as_dict() for d in self.obligations],
        }


# ---------------------------------------------------------------------------
# helper stages
# ---------------------------------------------------------------------------


def _static_guard_issues(protocol: Protocol) -> list[str]:
    """Home-side constructs the abstraction cannot classify for Other."""
    issues = []
    for name in sorted(protocol.home.states):
        sdef = protocol.home.state(name)
        for guard in sdef.inputs:
            if isinstance(guard.sender, PredSender):
                issues.append(
                    f"home input ?{guard.msg} at {name} matches senders by "
                    f"predicate {guard.sender.describe()}; predicates are "
                    "not id-opaque, so Other cannot be classified")
        for guard in sdef.outputs:
            if isinstance(guard.target, ExprTarget):
                issues.append(
                    f"home output !{guard.msg} at {name} computes its "
                    f"target by expression {guard.target.describe()}; the "
                    "abstraction cannot map it onto the concrete/Other "
                    "split")
            elif isinstance(guard.target, ConstTarget):
                issues.append(
                    f"home output !{guard.msg} at {name} targets the fixed "
                    f"remote {guard.target.remote}; fixed ids break the "
                    "remote-symmetry premise of the two-concrete-node "
                    "argument")
    return issues


def _other_send_table(
        protocol: Protocol, payload_envs: set[Env],
) -> tuple[dict[str, tuple[Value, ...]], list[str]]:
    """All (message, payload) pairs the remote template can emit,
    payloads evaluated over every remote environment seen so far."""
    issues: set[str] = set()
    table: dict[str, set[Value]] = {}
    for name in sorted(protocol.remote.states):
        for guard in protocol.remote.state(name).outputs:
            values = table.setdefault(guard.msg, set())
            for env in payload_envs:
                try:
                    values.add(guard.eval_payload(env))
                except Exception as exc:
                    issues.add(
                        f"payload of remote output !{guard.msg} at {name} "
                        f"is not evaluable under the abstraction ({exc})")
    return ({msg: tuple(sorted(values, key=repr))
             for msg, values in sorted(table.items())}, sorted(issues))


def _safe_pred(pred: Callable[[Any], bool]) -> Callable[[Any], bool]:
    def wrapped(state: Any) -> bool:
        try:
            return pred(state)
        except Exception:
            return False  # a crash in a predicate is a falsification
    return wrapped


def _validate_candidates(
        protocol: Protocol, candidates: tuple[CoherenceLemma, ...],
        max_states: int,
) -> tuple[tuple[CoherenceLemma, ...], Optional[str]]:
    """Exhaustively check each candidate's justification invariant on
    the two-node instance; only survivors may gate the abstraction."""
    if not candidates:
        return (), None
    _load_runtime()
    try:
        result = explore(
            RendezvousSystem(protocol, N_CONCRETE),
            name=f"{protocol.name}-lemma-witness",
            invariants=[(c.name, _safe_pred(c.pred)) for c in candidates],
            max_states=max_states,
            stop_on_violation=False,
            allow_deadlock=True)
    except Exception as exc:
        return (), f"lemma witness exploration failed ({exc})"
    if not result.completed:
        return (), (f"lemma witness exploration truncated "
                    f"({result.stop_reason}); no candidate validated")
    falsified = {cex.property_name for cex in result.violations}
    return tuple(c for c in candidates if c.name not in falsified), None


def _replay_concrete(protocol: Protocol,
                     cex: Counterexample) -> tuple[bool, Optional[str]]:
    """Replay an all-concrete abstract trace through the real two-node
    rendezvous semantics (defence in depth for refutations)."""
    _load_runtime()
    system = RendezvousSystem(protocol, N_CONCRETE)
    state = system.initial_state()
    if state != cex.states[0]:
        return False, "initial state mismatch"
    try:
        for i, action in enumerate(cex.steps):
            state = system.apply(state, action)
            if state != cex.states[i + 1]:
                return False, f"state divergence after step {i}"
    except Exception as exc:
        return False, str(exc)
    return True, None


def _promotable_lemmas(
        protocol: Protocol, violations: Iterable[Counterexample],
        validated: tuple[CoherenceLemma, ...],
        active: list[CoherenceLemma]) -> tuple[CoherenceLemma, ...]:
    """Validated, not-yet-active lemmas that would block an Other-send
    on some violation trace — the spurious-counterexample classifier."""
    active_names = {lemma.name for lemma in active}
    picked: dict[str, CoherenceLemma] = {}
    for cex in violations:
        for pre, action in zip(cex.states, cex.steps):
            if not isinstance(action, OtherSend):
                continue
            inputs = protocol.home.state(pre.home.state).inputs
            if not 0 <= action.in_index < len(inputs):
                continue  # defensive; indices come from our own steps
            guard = inputs[action.in_index]
            if not isinstance(guard.sender, VarSender):
                continue
            for lemma in validated:
                if lemma.name in active_names or lemma.name in picked:
                    continue
                if (lemma.var == guard.sender.var
                        and pre.home.state in lemma.home_states
                        and pre.home.env.get(lemma.var) == OTHER
                        and action.msg not in lemma.allowed_msgs):
                    picked[lemma.name] = lemma
    return tuple(picked[name] for name in sorted(picked))


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


def check_coherence(protocol: Protocol,
                    spec: Optional[CoherenceSpec] = None, *,
                    graph: Optional[FlowGraph] = None,
                    reports: Optional[tuple[PairReport, ...]] = None,
                    config: Optional[RefinementConfig] = None,
                    strict_cycles: bool = False,
                    max_states: int = 50_000,
                    witness_states: int = 20_000,
                    max_iterations: int = 8) -> CoherenceVerdict:
    """Check single-writer/SWMR for every node count.

    :param spec: the coherence spec to check; defaults to the registered
        spec for ``protocol.name`` (raises ``KeyError`` when none is).
    :param graph: pre-derived flow graph (the pass manager shares one).
    :param max_states: state budget per abstract exploration.
    :param witness_states: budget for the two-node lemma-validation run.
    :param max_iterations: cap on the lemma-promotion loop.
    """
    _load_runtime()
    if spec is None:
        spec = COHERENCE_SPECS[protocol.name]
    if graph is None:
        graph = derive_flows(protocol, reports=reports, config=config,
                             strict_cycles=strict_cycles)
    where = f"{protocol.name}:coherence"
    invariants = coherence_invariants(spec)
    properties = tuple(name for name, _ in invariants)

    issues = _static_guard_issues(protocol)
    candidates = derive_candidate_lemmas(protocol, graph)
    validated: tuple[CoherenceLemma, ...] = ()
    active: list[CoherenceLemma] = []
    status: Optional[str] = None
    witness: Optional[Counterexample] = None
    reason: Optional[str] = None
    iterations = 0
    abstract_states = 0

    if issues:
        status = "inconclusive"
        reason = "the environment abstraction is unsound here: " + issues[0]
    else:
        validated, validation_note = _validate_candidates(
            protocol, candidates, witness_states)
        if validation_note is not None:
            issues.append(validation_note)
        payload_envs = {protocol.remote.initial_env}
        other_sends, payload_issues = _other_send_table(
            protocol, payload_envs)
        while iterations < max_iterations:
            iterations += 1
            system = AbstractCoherenceSystem(
                protocol, other_sends=other_sends, lemmas=tuple(active))
            try:
                result = explore(
                    system,
                    name=f"{protocol.name}-coherence-abstract",
                    invariants=[(name, _safe_pred(pred))
                                for name, pred in invariants],
                    max_states=max_states,
                    stop_on_violation=False,
                    allow_deadlock=True)
            except AbstractionError as exc:
                issues.append(str(exc))
                status, reason = "inconclusive", str(exc)
                break
            except Exception as exc:
                status = "inconclusive"
                reason = f"abstract exploration failed ({exc})"
                break
            abstract_states = result.n_states
            if not result.completed:
                status = "inconclusive"
                reason = (f"abstract exploration truncated "
                          f"({result.stop_reason}) after "
                          f"{result.n_states} states")
                break
            new_envs = system.seen_remote_envs - payload_envs
            if new_envs:
                # payload fixpoint: Other may send any payload some
                # reachable remote environment can produce
                payload_envs |= new_envs
                grown, more_issues = _other_send_table(
                    protocol, payload_envs)
                payload_issues.extend(
                    x for x in more_issues if x not in payload_issues)
                if grown != other_sends:
                    other_sends = grown
                    continue
            if not result.violations:
                status = "discharged"
                break
            concrete = [cex for cex in result.violations
                        if not any(_is_abstract(s) for s in cex.steps)]
            if concrete:
                cex = min(concrete, key=lambda c: len(c.steps))
                ok, note = _replay_concrete(protocol, cex)
                if ok:
                    status, witness = "refuted", cex
                else:  # pragma: no cover - defensive
                    status = "inconclusive"
                    reason = (f"concrete-looking violation failed replay "
                              f"({note})")
                break
            fresh = _promotable_lemmas(protocol, result.violations,
                                       validated, active)
            if not fresh:
                status = "inconclusive"
                shortest = min(result.violations,
                               key=lambda c: len(c.steps))
                reason = (f"abstract violation of "
                          f"{shortest.property_name!r} persists "
                          f"({len(shortest.steps)} steps, with Other "
                          "interference) and no validated flow lemma "
                          "blocks it")
                break
            active.extend(fresh)
        else:
            status = "inconclusive"
            reason = (f"lemma-promotion loop hit the iteration cap "
                      f"({max_iterations})")
        issues.extend(x for x in payload_issues if x not in issues)
        if issues and status == "discharged":
            status = "inconclusive"
            reason = ("the abstraction over-approximation is incomplete: "
                      + issues[0])

    assert status is not None  # every branch above decides one
    obligations = _build_obligations(
        protocol, spec, where, status, reason, witness, issues,
        candidates, validated, active, iterations, abstract_states)
    return CoherenceVerdict(
        protocol=protocol.name, spec=spec, status=status,
        properties=properties, lemmas=tuple(active),
        candidates=len(candidates), validated=len(validated),
        iterations=iterations, abstract_states=abstract_states,
        obligations=tuple(obligations), witness=witness, reason=reason)


def _build_obligations(
        protocol: Protocol, spec: CoherenceSpec, where: str,
        status: str, reason: Optional[str],
        witness: Optional[Counterexample], issues: list[str],
        candidates: tuple[CoherenceLemma, ...],
        validated: tuple[CoherenceLemma, ...],
        active: list[CoherenceLemma], iterations: int,
        abstract_states: int) -> list[Diagnostic]:
    obligations: list[Diagnostic] = []
    for issue in issues:
        obligations.append(make(
            "P4605", where, issue,
            hint="restrict the protocol to the id-opaque fragment "
                 "(variable/set/any senders, variable targets) or check "
                 "coherence by bounded exploration only"))
    if candidates:
        promoted = ", ".join(lemma.name for lemma in active) or "none"
        obligations.append(make(
            "P4604", where,
            f"{len(candidates)} candidate noninterference lemma(s) from "
            f"the flow graph, {len(validated)} validated on the n=2 "
            f"instance, {len(active)} promoted ({promoted})"))
    if status == "discharged":
        obligations.append(make(
            "P4601", where,
            f"single-writer and SWMR hold for every node count: the "
            f"environment abstraction (2 concrete remotes + Other) has "
            f"no reachable violation ({abstract_states} abstract states, "
            f"{iterations} iteration(s), {len(active)} lemma(s)); "
            f"coherence mentions at most two remotes, so remote symmetry "
            f"lifts the result to arbitrary N"))
    elif status == "refuted":
        assert witness is not None
        obligations.append(make(
            "P4602", where,
            f"{witness.property_name!r} is violated by a concrete "
            f"two-node trace ({len(witness.steps)} steps, replayed "
            f"through the rendezvous semantics) — the protocol is "
            f"incoherent at every N >= 2",
            hint=f"run `repro paramverify {protocol.name}` for the "
                 "message sequence chart of the witness"))
    else:
        obligations.append(make(
            "P4603", where,
            f"parameterized coherence is inconclusive: "
            f"{reason or 'unknown'}",
            hint="an inconclusive verdict is not a refutation; check "
                 "coherence by bounded exploration (`repro check`) and "
                 "consider strengthening the flow structure"))
    return obligations


# ---------------------------------------------------------------------------
# the analysis pass
# ---------------------------------------------------------------------------


def coherencecheck_pass(protocol: Protocol, *,
                        graph: FlowGraph,
                        config: Optional[RefinementConfig] = None,
                        spec: Optional[CoherenceSpec] = None,
                        ) -> Iterable[Diagnostic]:
    """Pass-manager entry point; silent for protocols without a
    registered coherence spec (nothing to check them against)."""
    _load_runtime()
    if spec is None:
        spec = COHERENCE_SPECS.get(protocol.name)
        if spec is None:
            return []
    verdict = check_coherence(protocol, spec, graph=graph, config=config)
    return list(verdict.obligations)
