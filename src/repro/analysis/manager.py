"""The analysis pass manager.

:func:`analyze_protocol` runs the full static-analysis suite over a
rendezvous :class:`~repro.csp.ast.Protocol` and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`;
:func:`analyze_refined` does the same for a refined protocol, adding the
transient-state checks and taking buffer capacity and fire-and-forget
sets from the plan.

Passes are registered in :data:`PROTOCOL_PASSES`; each is a pure
function from the analysis context to an iterable of diagnostics, so the
suite is trivially extensible and individually testable.  The protocol
and refined passes are AST-level — milliseconds, no state-space
exploration.  The parameterized passes (:data:`PARAM_PASSES`, the P45xx
family) additionally check their statically generated flow invariants on
a tiny rendezvous witness instance (n = 2 by default); callers that must
stay exploration-free — the refinement engine's pre-plan gate — pass
``include_param=False``.

Expensive shared derivations (the section 3.3 pair reports, the flow
graph) are computed once per run and shared across passes through the
context's :class:`AnalysisCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..csp.ast import Protocol
from .bufferdemand import buffer_demand_pass
from .diagnostics import AnalysisReport, Diagnostic, make
from .fusability import fusability_pass
from .overlap import overlap_pass
from .reachability import reachability_pass
from .restrictions import restriction_pass
from .transients import transient_pass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..refine.plan import RefinedProtocol, RefinementConfig
    from ..refine.reqreply import PairReport
    from .coherencecheck import CoherenceVerdict
    from .flows import FlowGraph

__all__ = ["PARAM_PASSES", "PROTOCOL_PASSES", "AnalysisCache",
           "AnalysisContext", "analyze_protocol", "analyze_refined"]

#: Default node count assumed by node-count-sensitive passes (the buffer
#: demand bound scales with ``n``); override via ``nodes=``.
DEFAULT_NODES = 4


class AnalysisCache:
    """Per-run memo for derivations shared across passes.

    The fusability pass and the flows pass both need the section 3.3
    pair reports (one :func:`~repro.refine.reqreply.explain_pair` per
    candidate pair); the flows and paramcheck passes share the derived
    flow graph.  Each is computed at most once per analysis run.
    """

    def __init__(self) -> None:
        self._reports: "Optional[tuple[PairReport, ...]]" = None
        self._graph: "Optional[FlowGraph]" = None
        self._coherence: "Optional[CoherenceVerdict]" = None
        self._coherence_done = False

    def pair_reports(self, protocol: Protocol,
                     strict_cycles: bool) -> "tuple[PairReport, ...]":
        if self._reports is None:
            from ..refine.reqreply import fusability_report

            self._reports = fusability_report(
                protocol, strict_cycles=strict_cycles)
        return self._reports

    def flow_graph(self, ctx: "AnalysisContext") -> "FlowGraph":
        if self._graph is None:
            from .flows import derive_flows

            self._graph = derive_flows(
                ctx.protocol,
                reports=self.pair_reports(ctx.protocol, ctx.strict_cycles),
                config=ctx.config,
                strict_cycles=ctx.strict_cycles)
        return self._graph

    def coherence_verdict(
            self, ctx: "AnalysisContext") -> "Optional[CoherenceVerdict]":
        """The parameterized coherence verdict, or ``None`` when no
        coherence spec is registered for the protocol."""
        if not self._coherence_done:
            from ..protocols.invariants import COHERENCE_SPECS
            from .coherencecheck import check_coherence

            self._coherence_done = True
            spec = COHERENCE_SPECS.get(ctx.protocol.name)
            if spec is not None:
                self._coherence = check_coherence(
                    ctx.protocol, spec, graph=self.flow_graph(ctx),
                    config=ctx.config)
        return self._coherence


@dataclass(frozen=True)
class AnalysisContext:
    """Everything a pass may need; protocol-level passes ignore most."""

    protocol: Protocol
    nodes: int = DEFAULT_NODES
    capacity: int = 2
    fire_and_forget: frozenset[str] = frozenset()
    strict_cycles: bool = False
    refined: "Optional[RefinedProtocol]" = None
    config: "Optional[RefinementConfig]" = None
    cache: AnalysisCache = field(default_factory=AnalysisCache,
                                 compare=False)


PassFn = Callable[[AnalysisContext], Iterable[Diagnostic]]

PROTOCOL_PASSES: tuple[tuple[str, PassFn], ...] = (
    ("restrictions", lambda ctx: restriction_pass(ctx.protocol)),
    ("reachability", lambda ctx: reachability_pass(ctx.protocol)),
    ("overlap", lambda ctx: overlap_pass(ctx.protocol)),
    ("fusability", lambda ctx: fusability_pass(
        ctx.protocol, strict_cycles=ctx.strict_cycles,
        reports=ctx.cache.pair_reports(ctx.protocol, ctx.strict_cycles))),
    ("buffer-demand", lambda ctx: buffer_demand_pass(
        ctx.protocol, capacity=ctx.capacity, nodes=ctx.nodes,
        fire_and_forget=ctx.fire_and_forget)),
)

#: The parameterized (arbitrary-N) passes — P45xx.  These explore a tiny
#: rendezvous witness instance, so they are *not* pure AST passes; the
#: refinement engine's diagnostics gate excludes them.
PARAM_PASSES: tuple[tuple[str, PassFn], ...] = (
    ("flows", lambda ctx: _flows_pass(ctx)),
    ("paramcheck", lambda ctx: _paramcheck_pass(ctx)),
    ("coherence", lambda ctx: _coherence_pass(ctx)),
)

REFINED_PASSES: tuple[tuple[str, PassFn], ...] = (
    ("transients", lambda ctx: transient_pass(_require_refined(ctx))),
    ("simulation", lambda ctx: _simulation_pass(ctx)),
)


def _flows_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    from .flows import flows_pass

    try:
        graph = ctx.cache.flow_graph(ctx)
    except Exception as exc:
        return [_underivable(ctx, exc)]
    return flows_pass(ctx.protocol, graph=graph)


def _paramcheck_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    from .paramcheck import paramcheck_pass

    try:
        graph = ctx.cache.flow_graph(ctx)
    except Exception as exc:
        return [_underivable(ctx, exc)]
    return paramcheck_pass(ctx.protocol, graph=graph, config=ctx.config)


def _coherence_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    try:
        verdict = ctx.cache.coherence_verdict(ctx)
    except Exception as exc:
        return [make(
            "P4603", f"{ctx.protocol.name}:coherence",
            f"flow graph could not be derived ({exc}); the parameterized "
            "coherence check is inconclusive")]
    if verdict is None:  # no registered coherence spec — nothing to check
        return []
    return list(verdict.obligations)


def _underivable(ctx: AnalysisContext, exc: Exception) -> Diagnostic:
    return make("P4507", f"{ctx.protocol.name}:flows",
                f"flow graph could not be derived ({exc}); the "
                "parameterized analysis is inconclusive")


def _simulation_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    # deferred: .simulation pulls in the executable semantics, which reads
    # the step table from repro.refine — a top-level import would be cyclic
    from .simulation import simulation_pass

    return simulation_pass(_require_refined(ctx))


def _require_refined(ctx: AnalysisContext) -> "RefinedProtocol":
    if ctx.refined is None:  # pragma: no cover - internal misuse
        raise ValueError("transient pass needs a refined protocol")
    return ctx.refined


def analyze_protocol(protocol: Protocol, *,
                     config: "Optional[RefinementConfig]" = None,
                     nodes: int = DEFAULT_NODES,
                     select: Optional[Iterable[str]] = None,
                     include_param: bool = True,
                     ) -> AnalysisReport:
    """Run the static-analysis suite over a rendezvous protocol.

    :param config: the refinement configuration the buffer-demand and
        fusability passes should assume; defaults to the paper's standard
        ``k = 2`` configuration.
    :param nodes: remote node count ``n`` assumed by the buffer-demand
        bound (the bound scales with ``n``).
    :param select: restrict the report to these diagnostic codes.
    :param include_param: also run the parameterized (P45xx) passes;
        these explore a small witness instance, so callers needing a
        pure AST-level report turn them off.
    """
    from ..refine.plan import RefinementConfig

    config = config or RefinementConfig()
    ctx = AnalysisContext(
        protocol=protocol,
        nodes=nodes,
        capacity=config.home_buffer_capacity,
        fire_and_forget=config.fire_and_forget,
        strict_cycles=config.strict_reqreply_cycles,
        config=config,
    )
    passes = (PROTOCOL_PASSES + PARAM_PASSES if include_param
              else PROTOCOL_PASSES)
    return _run(protocol.name, ctx, passes, select)


def analyze_refined(refined: "RefinedProtocol", *,
                    nodes: int = DEFAULT_NODES,
                    select: Optional[Iterable[str]] = None,
                    include_protocol_passes: bool = True,
                    ) -> AnalysisReport:
    """Run the full suite plus refined-only checks over a refined protocol.

    ``include_protocol_passes=False`` runs only the refined-machine passes
    (transients, simulation certificate) — the refinement engine uses this
    as its post-plan gate, having already vetted the rendezvous AST.
    """
    config = refined.plan.config
    ctx = AnalysisContext(
        protocol=refined.protocol,
        nodes=nodes,
        capacity=config.home_buffer_capacity,
        fire_and_forget=config.fire_and_forget,
        strict_cycles=config.strict_reqreply_cycles,
        refined=refined,
        config=config,
    )
    passes = (PROTOCOL_PASSES + PARAM_PASSES + REFINED_PASSES
              if include_protocol_passes else REFINED_PASSES)
    return _run(refined.name, ctx, passes, select)


def _run(subject: str, ctx: AnalysisContext,
         passes: tuple[tuple[str, PassFn], ...],
         select: Optional[Iterable[str]]) -> AnalysisReport:
    diagnostics: list[Diagnostic] = []
    names: list[str] = []
    for name, fn in passes:
        names.append(name)
        diagnostics.extend(fn(ctx))
    report = AnalysisReport(subject=subject,
                            diagnostics=tuple(diagnostics),
                            passes_run=tuple(names))
    if select is not None:
        report = report.select(select)
    return report
