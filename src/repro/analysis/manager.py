"""The analysis pass manager.

:func:`analyze_protocol` runs the full static-analysis suite over a
rendezvous :class:`~repro.csp.ast.Protocol` and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`;
:func:`analyze_refined` does the same for a refined protocol, adding the
transient-state checks and taking buffer capacity and fire-and-forget
sets from the plan.

Passes are registered in :data:`PROTOCOL_PASSES`; each is a pure
function from the analysis context to an iterable of diagnostics, so the
suite is trivially extensible and individually testable.  Everything is
AST-level — milliseconds, no state-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..csp.ast import Protocol
from .bufferdemand import buffer_demand_pass
from .diagnostics import AnalysisReport, Diagnostic
from .fusability import fusability_pass
from .overlap import overlap_pass
from .reachability import reachability_pass
from .restrictions import restriction_pass
from .transients import transient_pass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..refine.plan import RefinedProtocol, RefinementConfig

__all__ = ["PROTOCOL_PASSES", "AnalysisContext", "analyze_protocol",
           "analyze_refined"]

#: Default node count assumed by node-count-sensitive passes (the buffer
#: demand bound scales with ``n``); override via ``nodes=``.
DEFAULT_NODES = 4


@dataclass(frozen=True)
class AnalysisContext:
    """Everything a pass may need; protocol-level passes ignore most."""

    protocol: Protocol
    nodes: int = DEFAULT_NODES
    capacity: int = 2
    fire_and_forget: frozenset[str] = frozenset()
    strict_cycles: bool = False
    refined: "Optional[RefinedProtocol]" = None


PassFn = Callable[[AnalysisContext], Iterable[Diagnostic]]

PROTOCOL_PASSES: tuple[tuple[str, PassFn], ...] = (
    ("restrictions", lambda ctx: restriction_pass(ctx.protocol)),
    ("reachability", lambda ctx: reachability_pass(ctx.protocol)),
    ("overlap", lambda ctx: overlap_pass(ctx.protocol)),
    ("fusability", lambda ctx: fusability_pass(
        ctx.protocol, strict_cycles=ctx.strict_cycles)),
    ("buffer-demand", lambda ctx: buffer_demand_pass(
        ctx.protocol, capacity=ctx.capacity, nodes=ctx.nodes,
        fire_and_forget=ctx.fire_and_forget)),
)

REFINED_PASSES: tuple[tuple[str, PassFn], ...] = (
    ("transients", lambda ctx: transient_pass(_require_refined(ctx))),
    ("simulation", lambda ctx: _simulation_pass(ctx)),
)


def _simulation_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    # deferred: .simulation pulls in the executable semantics, which reads
    # the step table from repro.refine — a top-level import would be cyclic
    from .simulation import simulation_pass

    return simulation_pass(_require_refined(ctx))


def _require_refined(ctx: AnalysisContext) -> "RefinedProtocol":
    if ctx.refined is None:  # pragma: no cover - internal misuse
        raise ValueError("transient pass needs a refined protocol")
    return ctx.refined


def analyze_protocol(protocol: Protocol, *,
                     config: "Optional[RefinementConfig]" = None,
                     nodes: int = DEFAULT_NODES,
                     select: Optional[Iterable[str]] = None,
                     ) -> AnalysisReport:
    """Run the static-analysis suite over a rendezvous protocol.

    :param config: the refinement configuration the buffer-demand and
        fusability passes should assume; defaults to the paper's standard
        ``k = 2`` configuration.
    :param nodes: remote node count ``n`` assumed by the buffer-demand
        bound (the bound scales with ``n``).
    :param select: restrict the report to these diagnostic codes.
    """
    from ..refine.plan import RefinementConfig

    config = config or RefinementConfig()
    ctx = AnalysisContext(
        protocol=protocol,
        nodes=nodes,
        capacity=config.home_buffer_capacity,
        fire_and_forget=config.fire_and_forget,
        strict_cycles=config.strict_reqreply_cycles,
    )
    return _run(protocol.name, ctx, PROTOCOL_PASSES, select)


def analyze_refined(refined: "RefinedProtocol", *,
                    nodes: int = DEFAULT_NODES,
                    select: Optional[Iterable[str]] = None,
                    include_protocol_passes: bool = True,
                    ) -> AnalysisReport:
    """Run the full suite plus refined-only checks over a refined protocol.

    ``include_protocol_passes=False`` runs only the refined-machine passes
    (transients, simulation certificate) — the refinement engine uses this
    as its post-plan gate, having already vetted the rendezvous AST.
    """
    config = refined.plan.config
    ctx = AnalysisContext(
        protocol=refined.protocol,
        nodes=nodes,
        capacity=config.home_buffer_capacity,
        fire_and_forget=config.fire_and_forget,
        strict_cycles=config.strict_reqreply_cycles,
        refined=refined,
    )
    passes = (PROTOCOL_PASSES + REFINED_PASSES if include_protocol_passes
              else REFINED_PASSES)
    return _run(refined.name, ctx, passes, select)


def _run(subject: str, ctx: AnalysisContext,
         passes: tuple[tuple[str, PassFn], ...],
         select: Optional[Iterable[str]]) -> AnalysisReport:
    diagnostics: list[Diagnostic] = []
    names: list[str] = []
    for name, fn in passes:
        names.append(name)
        diagnostics.extend(fn(ctx))
    report = AnalysisReport(subject=subject,
                            diagnostics=tuple(diagnostics),
                            passes_run=tuple(names))
    if select is not None:
        report = report.select(select)
    return report
