"""Transient-state sanity checks on refined (asynchronous) machines.

The refinement never materializes transient states in the AST — they are
implied, one per output guard, and interpreted on the fly by
:class:`~repro.semantics.asynchronous.AsyncSystem` (Tables 1 and 2).
That makes their *exits* easy to audit statically: a node that enters the
transient for output guard ``g`` leaves it by

* consuming the **ack** (plain refined request),
* consuming the **nack** and retrying / rescanning (plain request),
* an **implicit nack** — the awaited remote's own request arriving
  instead (home side, row T3), or
* consuming the **fused reply** (section 3.3 pairs), which *requires*
  the requester's successor state to actually offer the matching reply
  input — the reply has no ack of its own, so a missing input guard
  would strand the message and the requester.

For plans produced by :func:`repro.refine.engine.refine` the fused-pair
conditions were verified during detection; this pass re-checks them on
the *plan as given*, which matters for hand-assembled
:class:`~repro.refine.plan.RefinementPlan` objects (nothing stops a test
or a determined user from pairing messages the checks would reject).

Diagnostics: **P3401 (error)** — a fused requester's transient has no
reply exit; **P3402 (error)** — a fire-and-forget message is received by
the remote node (only remote-to-home notifications can skip the
handshake: the home's buffer absorbs them, the remote's single slot
cannot); **P3403 (info)** — the transient inventory, counting transients
per side with their exit kinds, so ``repro lint`` shows the real size of
the derived machine (cf. Figures 4-5).

Imports from :mod:`repro.refine` stay call-time to keep this module
importable from ``repro.csp.validate`` (see :mod:`.fusability`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..csp.ast import Input, Output, ProcessDef
from .diagnostics import Diagnostic, make

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..refine.plan import RefinedProtocol

__all__ = ["transient_pass"]


def transient_pass(refined: "RefinedProtocol") -> Iterator[Diagnostic]:
    from ..refine.plan import HOME_SIDE, REMOTE

    protocol = refined.protocol
    plan = refined.plan
    counts = {"remote": 0, "home": 0}
    fused_ok = True

    for side, process in (("remote", protocol.remote),
                          ("home", protocol.home)):
        requester = REMOTE if side == "remote" else HOME_SIDE
        for state in process.states.values():
            for guard in state.outputs:
                counts[side] += 1
                if guard.msg in plan.fire_and_forget:
                    counts[side] -= 1  # no transient: send and move on
                    continue
                if not plan.is_fused_request(guard.msg,
                                             sender_is_home=side == "home"):
                    continue  # ack/nack exits exist by construction (T1/T2)
                reply = plan.reply_of[guard.msg]
                if not _offers_reply(process, guard, reply):
                    fused_ok = False
                    yield make(
                        "P3401",
                        f"{process.name}.{state.name}",
                        f"fused request {guard.msg!r} "
                        f"({requester}-initiated) enters a transient "
                        f"whose successor state {guard.to!r} never "
                        f"inputs the reply {reply!r}; the requester "
                        "would wait forever",
                        hint="add the reply input to the successor "
                             "state or drop the pair from fused_pairs")

    for msg in sorted(plan.fire_and_forget):
        if _received_by_remote(protocol.remote, msg):
            yield make(
                "P3402", f"{protocol.name}:{msg}",
                f"fire-and-forget message {msg!r} is received by the "
                "remote node; only remote-to-home notifications can "
                "skip the handshake (the home's buffer absorbs them, "
                "the remote's single slot cannot)",
                hint="keep the ack for home-to-remote messages")

    exits = ("reply or ack/nack/implicit-nack"
             if plan.fused and fused_ok else "ack/nack/implicit-nack")
    yield make(
        "P3403", protocol.name,
        f"refined machine has {counts['remote']} remote and "
        f"{counts['home']} home transient state(s); every transient "
        f"exits via {exits} (Tables 1-2)")


def _offers_reply(process: ProcessDef, request: Output, reply: str) -> bool:
    """Does the requester's successor state input the fused reply?"""
    successor = process.state(request.to)
    for guard in successor.guards:
        if isinstance(guard, Input) and guard.msg == reply:
            return True
    return False


def _received_by_remote(remote: ProcessDef, msg: str) -> bool:
    return any(isinstance(g, Input) and g.msg == msg
               for s in remote.states.values() for g in s.guards)
