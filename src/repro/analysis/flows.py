"""Message-flow derivation from the rendezvous AST (parameterized analysis).

A *flow* is the static shape of one complete transaction: the ordered
message events (send/recv/wait) a protocol performs between two *stable*
home states, together with the home states the transaction occupies and
the remote states its participants sit in while it runs.  The notion is
lifted from the flow-based parameterized-verification literature
(Sethi/Talupur/Malik, arXiv:1407.7468): cache-coherence protocols are
naturally organised as a small set of flows, and invariants derived from
the flow structure suffice to discharge properties for *arbitrary* node
counts — exactly the gap between this repo's fixed-N model checking and
the paper's "refined protocols stay verifiable as N grows" story.

Everything here is derived purely from the CSP AST plus the section 3.3
request/reply pair reports (:mod:`repro.refine.reqreply`):

* **stable home states** — the fixpoint of "exit states of flows entered
  at stable states", seeded with the home's initial state;
* **flow entries** — a home input guard with a *fresh* sender pattern
  (:class:`~repro.csp.ast.AnySender` / :class:`~repro.csp.ast.SetSender`)
  anywhere starts a remote-initiated flow; a
  :class:`~repro.csp.ast.VarSender` input at a stable state is a
  reply-less *notification* flow (e.g. the migratory ``LR`` writeback);
  an output guard at a stable state starts a home-initiated flow;
* **interior walk** — from the entry we follow taus, interior sends and
  :class:`~repro.csp.ast.VarSender` waits (recording precedence edges),
  stopping at the *reply* (the output back to the bound requester) — the
  same traversal discipline as the fusability checker's
  reply-domination DFS, generalized from a yes/no verdict to the full
  event structure;
* **completeness** — every output row of the refined transition table
  (:func:`repro.refine.transitions.build_step_table`) and every home
  input guard must be covered by some flow event; anything uncovered is
  a transaction the flow inventory cannot account for (**P4501**).

:mod:`repro.analysis.paramcheck` consumes the :class:`FlowGraph` to
generate flow invariants and discharge deadlock freedom for arbitrary N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from ..csp.ast import (
    Input,
    Output,
    ProcessDef,
    Protocol,
    StateDef,
    Tau,
    VarSender,
    VarTarget,
)
from .diagnostics import Diagnostic, make

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..refine.plan import FusedPair, RefinementConfig
    from ..refine.reqreply import PairReport

__all__ = [
    "Flow",
    "FlowEvent",
    "FlowGraph",
    "Wait",
    "derive_flows",
    "flows_pass",
    "producible_msgs",
    "tau_closure",
]

#: Flow kinds.
REMOTE_INITIATED = "remote-initiated"
HOME_INITIATED = "home-initiated"
NOTIFICATION = "notification"

#: Event kinds.
SEND = "send"
RECV = "recv"
WAIT = "wait"


# ---------------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlowEvent:
    """One message event of a flow, from the home's point of view.

    ``kind`` is :data:`SEND` (home emits ``msg`` at ``state``),
    :data:`RECV` (home consumes ``msg`` at ``state`` — the flow entry or
    a home-initiated flow's reply) or :data:`WAIT` (home consumes ``msg``
    from a specific engaged remote mid-flow).  ``party`` describes the
    peer: the sender pattern or target expression text.
    """

    kind: str
    state: str
    msg: str
    party: str

    def describe(self) -> str:
        arrow = {SEND: "!", RECV: "?", WAIT: "?"}[self.kind]
        return f"{self.state} {arrow}{self.msg}({self.party})"


@dataclass(frozen=True)
class Wait:
    """A home state where a flow blocks on one specific remote.

    ``var`` is the home variable naming the engaged remote, ``msgs`` the
    message types the home accepts from it there, ``offers`` the message
    types the home simultaneously *offers* it (outputs targeting ``var``
    at the same state — the flow can progress through either side).
    """

    state: str
    var: str
    msgs: frozenset[str]
    offers: frozenset[str] = frozenset()
    pending: Optional[str] = None  # last interior send before this wait

    def describe(self) -> str:
        body = "/".join(sorted(self.msgs))
        return f"{self.state}: awaits {body} from {self.var}"


@dataclass(frozen=True)
class Flow:
    """One derived message flow."""

    name: str
    kind: str
    request_msg: str
    entry_state: str
    requester_var: Optional[str]
    events: tuple[FlowEvent, ...]
    #: precedence edges as (earlier, later) indices into ``events``
    precedence: tuple[tuple[int, int], ...]
    reply_msgs: frozenset[str]
    #: home states strictly inside the flow (between entry and exits)
    interior_home: frozenset[str]
    exit_states: frozenset[str]
    waits: tuple[Wait, ...]
    #: remote states the requester occupies while the flow is in progress
    #: (request-offer states and post-request wait states)
    requester_region: frozenset[str]
    #: post-request wait states only (strict subset of the region)
    requester_wait_states: frozenset[str]
    has_cycle: bool = False
    #: entered at a stable home state (nested flows are entered mid-flow)
    stable_entry: bool = True

    @property
    def message_cost(self) -> int:
        """Wire messages per completed transaction (rendezvous count)."""
        return sum(1 for e in self.events if e.kind in (SEND, RECV, WAIT))

    def describe(self) -> str:
        chain = " -> ".join(e.describe() for e in self.events)
        flags = []
        if self.has_cycle:
            flags.append("loop")
        if not self.stable_entry:
            flags.append("nested")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.name} ({self.kind}): {chain}{suffix}"

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "request": self.request_msg,
            "entry_state": self.entry_state,
            "requester_var": self.requester_var,
            "events": [e.describe() for e in self.events],
            "precedence": [list(edge) for edge in self.precedence],
            "replies": sorted(self.reply_msgs),
            "interior_home": sorted(self.interior_home),
            "exits": sorted(self.exit_states),
            "waits": [w.describe() for w in self.waits],
            "requester_region": sorted(self.requester_region),
            "has_cycle": self.has_cycle,
            "stable_entry": self.stable_entry,
        }


@dataclass(frozen=True)
class FlowGraph:
    """Every derived flow of one protocol, plus the coverage verdict."""

    protocol: str
    flows: tuple[Flow, ...]
    stable_states: frozenset[str]
    fused: tuple["FusedPair", ...]
    #: human-readable descriptions of transition-table rows / input guards
    #: no flow accounts for (empty iff the cover is complete)
    uncovered: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.uncovered

    def flow(self, name: str) -> Flow:
        for flow in self.flows:
            if flow.name == name:
                return flow
        raise KeyError(f"no flow named {name!r}")

    def describe(self) -> str:
        lines = [f"flow graph for {self.protocol}: {len(self.flows)} "
                 f"flow(s), stable home states "
                 f"{{{', '.join(sorted(self.stable_states))}}}"]
        for flow in self.flows:
            lines.append(f"  {flow.describe()}")
        if self.uncovered:
            lines.append(f"  UNCOVERED ({len(self.uncovered)}):")
            lines.extend(f"    {item}" for item in self.uncovered)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "stable_states": sorted(self.stable_states),
            "fused": [p.describe() for p in self.fused],
            "flows": [f.as_dict() for f in self.flows],
            "uncovered": list(self.uncovered),
            "complete": self.complete,
        }


# ---------------------------------------------------------------------------
# small static helpers (shared with paramcheck)
# ---------------------------------------------------------------------------


def tau_closure(process: ProcessDef, start: str) -> frozenset[str]:
    """States reachable from ``start`` through tau edges only."""
    seen = {start}
    stack = [start]
    while stack:
        for guard in process.state(stack.pop()).taus:
            if guard.to not in seen:
                seen.add(guard.to)
                stack.append(guard.to)
    return frozenset(seen)


def producible_msgs(process: ProcessDef, start: str) -> frozenset[str]:
    """Output message types offerable from ``start`` after local (tau)
    steps only — what the process can *produce* without outside help."""
    return frozenset(g.msg for s in tau_closure(process, start)
                     for g in process.state(s).outputs)


def _is_fresh(guard: Input) -> bool:
    """A fresh-sender input can start a new transaction (any remote, or
    any member of a tracked set); a ``VarSender`` input continues one."""
    return not isinstance(guard.sender, VarSender)


def _party(guard: Input | Output) -> str:
    pattern = (guard.sender if isinstance(guard, Input) else guard.target)
    return pattern.describe() if pattern is not None else "?"


# ---------------------------------------------------------------------------
# the interior walk
# ---------------------------------------------------------------------------


class _Walk:
    """DFS through a flow's interior, recording events and precedence.

    The traversal discipline mirrors the fusability checker's
    reply-domination DFS (:func:`repro.refine.reqreply._all_paths_reply`):
    taus are silent, outputs and ``VarSender`` inputs are flow events,
    fresh-sender inputs belong to *other* flows and are not entered, and
    a revisited state closes the path (flagging the flow as looping).
    """

    def __init__(self, home: ProcessDef, var: Optional[str],
                 remote_initiated: bool,
                 stop_at: frozenset[str] = frozenset()) -> None:
        self.home = home
        self.var = var
        self.remote_initiated = remote_initiated
        self.stop_at = stop_at
        self.events: list[FlowEvent] = []
        self.precedence: list[tuple[int, int]] = []
        self.reply_msgs: set[str] = set()
        self.interior: set[str] = set()
        self.exits: set[str] = set()
        self.waits: dict[tuple[str, str], Wait] = {}
        self.has_cycle = False

    def event(self, kind: str, state: str, msg: str, party: str,
              prev: int) -> int:
        idx = len(self.events)
        self.events.append(FlowEvent(kind=kind, state=state, msg=msg,
                                     party=party))
        if prev >= 0:
            self.precedence.append((prev, idx))
        return idx

    def _is_reply(self, guard: Input | Output) -> bool:
        """Does this guard complete the flow (answer the requester)?"""
        if self.var is None:
            return False
        if self.remote_initiated:
            return (isinstance(guard, Output)
                    and isinstance(guard.target, VarTarget)
                    and guard.target.var == self.var)
        return (isinstance(guard, Input)
                and isinstance(guard.sender, VarSender)
                and guard.sender.var == self.var)

    def _record_wait(self, state: StateDef, var: str,
                     pending: Optional[str]) -> None:
        msgs = frozenset(g.msg for g in state.inputs
                         if isinstance(g.sender, VarSender)
                         and g.sender.var == var)
        offers = frozenset(g.msg for g in state.outputs
                           if isinstance(g.target, VarTarget)
                           and g.target.var == var)
        key = (state.name, var)
        if key not in self.waits:
            self.waits[key] = Wait(state=state.name, var=var, msgs=msgs,
                                   offers=offers, pending=pending)

    def run(self, start: str, prev: int) -> None:
        self._visit(start, prev, frozenset(), None)

    def _visit(self, state_name: str, prev: int, path: frozenset[str],
               pending: Optional[str]) -> None:
        if state_name in path:
            self.has_cycle = True
            return
        if state_name in self.stop_at:
            # a stable home state: the transaction is over; whatever
            # happens next belongs to another flow
            self.exits.add(state_name)
            return
        state = self.home.state(state_name)
        deeper = path | {state_name}
        progressed = False
        for guard in state.guards:
            if isinstance(guard, Tau):
                self.interior.add(state_name)
                progressed = True
                self._visit(guard.to, prev, deeper, pending)
            elif isinstance(guard, Output):
                self.interior.add(state_name)
                progressed = True
                idx = self.event(SEND, state_name, guard.msg, _party(guard),
                                 prev)
                if self._is_reply(guard):
                    self.reply_msgs.add(guard.msg)
                    self.exits.add(guard.to)
                else:
                    self._visit(guard.to, idx, deeper, guard.msg)
            elif isinstance(guard.sender, VarSender):
                self.interior.add(state_name)
                progressed = True
                self._record_wait(state, guard.sender.var, pending)
                idx = self.event(WAIT, state_name, guard.msg, _party(guard),
                                 prev)
                if self._is_reply(guard):
                    self.reply_msgs.add(guard.msg)
                    self.exits.add(guard.to)
                else:
                    self._visit(guard.to, idx, deeper, None)
            # fresh-sender inputs start other flows; not entered
        if not progressed:
            # nothing but fresh entries (or no guards): the flow hands off
            self.exits.add(state_name)


# ---------------------------------------------------------------------------
# derivation
# ---------------------------------------------------------------------------


def derive_flows(protocol: Protocol, *,
                 reports: Optional[tuple["PairReport", ...]] = None,
                 config: Optional["RefinementConfig"] = None,
                 strict_cycles: bool = False) -> FlowGraph:
    """Derive ``protocol``'s message-flow graph from its AST.

    :param reports: pre-computed section 3.3 pair reports (the pass
        manager shares one set across the fusability and flow passes);
        computed on demand when ``None``.
    :param config: refinement configuration assumed for the coverage
        check against the refined transition table.
    """
    # deferred: repro.refine imports repro.csp.validate, which reaches
    # this module through the analysis package (same cycle fusability.py
    # documents)
    from ..refine.plan import RefinedProtocol, RefinementConfig, RefinementPlan
    from ..refine.reqreply import choose_pairs, fusability_report
    from ..refine.transitions import build_step_table

    config = config or RefinementConfig()
    if reports is None:
        reports = fusability_report(protocol, strict_cycles=strict_cycles)
    fused = choose_pairs(reports) if config.use_reqreply else ()

    home = protocol.home
    remote = protocol.remote

    # -- remote-initiated flows: every fresh-sender home input, anywhere --
    # pass 1: the stable fixpoint (walks run unstopped, which can only
    # overshoot exits — a safe overapproximation of the stable set)
    stable = _stable_fixpoint(protocol)

    # pass 2: derive the actual flows, stopping every walk at stable
    # states so no flow wanders into another transaction's territory
    flows: list[Flow] = []
    for state in home.states.values():  # deterministic: AST order
        for guard in state.inputs:
            if _is_fresh(guard):
                flow = _remote_initiated_flow(protocol, state, guard,
                                              stop_at=stable)
                if state.name not in stable:
                    flow = _mark_nested(flow)
                flows.append(flow)
            elif state.name in stable:
                flows.append(_notification_flow(protocol, state, guard))
        if state.name in stable:
            for out in state.outputs:
                flows.append(_home_initiated_flow(protocol, state, out,
                                                  stop_at=stable))

    flows = _dedupe_names(flows)

    # -- coverage against the refined transition table -------------------
    plan = RefinementPlan(config=config, fused=fused)
    table = build_step_table(RefinedProtocol(protocol=protocol, plan=plan))
    uncovered = tuple(_coverage_gaps(protocol, flows, table))

    return FlowGraph(protocol=protocol.name, flows=tuple(flows),
                     stable_states=stable, fused=fused,
                     uncovered=uncovered)


def _stable_fixpoint(protocol: Protocol) -> frozenset[str]:
    """Home states *between* transactions: the initial state plus every
    flow exit reachable from one, closed under taus."""
    home = protocol.home
    stable: set[str] = set()
    frontier = [home.initial_state]
    while frontier:
        name = frontier.pop()
        if name in stable:
            continue
        stable.add(name)
        exits: set[str] = set()
        state = home.state(name)
        for tau in state.taus:
            exits.add(tau.to)
        for guard in state.inputs:
            if _is_fresh(guard):
                exits.update(
                    _remote_initiated_flow(protocol, state, guard)
                    .exit_states)
            else:
                exits.add(guard.to)
        for out in state.outputs:
            exits.update(
                _home_initiated_flow(protocol, state, out).exit_states)
        frontier.extend(exits - stable)
    return frozenset(stable)


def _remote_initiated_flow(protocol: Protocol, state: StateDef,
                           guard: Input, *,
                           stop_at: frozenset[str] = frozenset()) -> Flow:
    home, remote = protocol.home, protocol.remote
    var = guard.bind_sender
    walk = _Walk(home, var, remote_initiated=True, stop_at=stop_at)
    entry = walk.event(RECV, state.name, guard.msg, _party(guard), -1)
    if var is not None:
        walk.run(guard.to, entry)
    else:
        walk.exits.add(guard.to)
    offer_states = frozenset(
        s.name for s in remote.states.values()
        for g in s.outputs if g.msg == guard.msg)
    wait_states = frozenset(
        g.to for s in remote.states.values()
        for g in s.outputs if g.msg == guard.msg)
    # the requester may keep taking local (tau) steps while the home
    # processes — the region must be closed under them
    region = frozenset(
        s for seed in offer_states | wait_states
        for s in tau_closure(remote, seed))
    return Flow(
        name=f"{guard.msg}@{state.name}",
        kind=REMOTE_INITIATED,
        request_msg=guard.msg,
        entry_state=state.name,
        requester_var=var,
        events=tuple(walk.events),
        precedence=tuple(walk.precedence),
        reply_msgs=frozenset(walk.reply_msgs),
        interior_home=frozenset(walk.interior - walk.exits),
        exit_states=frozenset(walk.exits),
        waits=tuple(walk.waits.values()),
        requester_region=region,
        requester_wait_states=wait_states - offer_states,
        has_cycle=walk.has_cycle,
    )


def _notification_flow(protocol: Protocol, state: StateDef,
                       guard: Input) -> Flow:
    """A ``VarSender`` input at a stable state: a reply-less writeback
    (e.g. the migratory ``LR``) — one rendezvous, no interior."""
    remote = protocol.remote
    assert isinstance(guard.sender, VarSender)
    event = FlowEvent(kind=RECV, state=state.name, msg=guard.msg,
                      party=_party(guard))
    offer_states = frozenset(
        s.name for s in remote.states.values()
        for g in s.outputs if g.msg == guard.msg)
    post_states = frozenset(
        g.to for s in remote.states.values()
        for g in s.outputs if g.msg == guard.msg)
    region = frozenset(
        s for seed in offer_states | post_states
        for s in tau_closure(remote, seed))
    return Flow(
        name=f"{guard.msg}@{state.name}",
        kind=NOTIFICATION,
        request_msg=guard.msg,
        entry_state=state.name,
        requester_var=guard.sender.var,
        events=(event,),
        precedence=(),
        reply_msgs=frozenset(),
        interior_home=frozenset(),
        exit_states=frozenset({guard.to}),
        waits=(),
        requester_region=region,
        requester_wait_states=frozenset(),
    )


def _home_initiated_flow(protocol: Protocol, state: StateDef,
                         guard: Output, *,
                         stop_at: frozenset[str] = frozenset()) -> Flow:
    """An output guard at a stable state: the home engages a remote."""
    home = protocol.home
    var = (guard.target.var if isinstance(guard.target, VarTarget) else None)
    walk = _Walk(home, var, remote_initiated=False, stop_at=stop_at)
    entry = walk.event(SEND, state.name, guard.msg, _party(guard), -1)
    if var is not None:
        walk.run(guard.to, entry)
    else:
        walk.exits.add(guard.to)
    responder_states = frozenset(
        s.name for s in protocol.remote.states.values()
        for g in s.inputs if g.msg == guard.msg)
    return Flow(
        name=f"{guard.msg}@{state.name}",
        kind=HOME_INITIATED,
        request_msg=guard.msg,
        entry_state=state.name,
        requester_var=var,
        events=tuple(walk.events),
        precedence=tuple(walk.precedence),
        reply_msgs=frozenset(walk.reply_msgs),
        interior_home=frozenset(walk.interior - walk.exits),
        exit_states=frozenset(walk.exits),
        waits=tuple(walk.waits.values()),
        requester_region=responder_states,
        requester_wait_states=frozenset(),
    )


def _mark_nested(flow: Flow) -> Flow:
    from dataclasses import replace
    return replace(flow, stable_entry=False)


def _dedupe_names(flows: list[Flow]) -> list[Flow]:
    from dataclasses import replace
    seen: dict[str, int] = {}
    out: list[Flow] = []
    for flow in flows:
        n = seen.get(flow.name, 0)
        seen[flow.name] = n + 1
        out.append(replace(flow, name=f"{flow.name}#{n}") if n else flow)
    return out


# ---------------------------------------------------------------------------
# coverage
# ---------------------------------------------------------------------------


def _coverage_gaps(protocol: Protocol, flows: list[Flow],
                   table: object) -> Iterator[str]:
    """Transition-table rows and input guards no flow accounts for."""
    from ..refine.transitions import HOME as T_HOME
    from ..refine.transitions import StepTable

    assert isinstance(table, StepTable)
    home, remote = protocol.home, protocol.remote

    # messages each side sends/receives inside some flow
    home_sends: set[str] = set()      # home -> remote wire messages
    remote_sends: set[str] = set()    # remote -> home wire messages
    home_inputs: set[tuple[str, str]] = set()  # (home state, msg) consumed
    for flow in flows:
        for event in flow.events:
            if event.kind == SEND:
                home_sends.add(event.msg)
            else:
                remote_sends.add(event.msg)
                home_inputs.add((event.state, event.msg))
        if flow.kind == HOME_INITIATED:
            home_sends.add(flow.request_msg)
        else:
            remote_sends.add(flow.request_msg)
        remote_sends.update(m for w in flow.waits for m in w.msgs)
        if flow.kind == REMOTE_INITIATED:
            home_sends.update(flow.reply_msgs)
        else:
            remote_sends.update(flow.reply_msgs)

    for spec in table:
        covered = (spec.msg in home_sends if spec.role == T_HOME
                   else spec.msg in remote_sends)
        if not covered:
            yield (f"{spec.role}.{spec.state}[{spec.out_index}] "
                   f"!{spec.msg} ({spec.kind}) is in no flow")

    for state in home.states.values():
        for guard in state.inputs:
            if (state.name, guard.msg) not in home_inputs:
                yield (f"home.{state.name} ?{guard.msg} is in no flow")

    for state in remote.states.values():
        for guard in state.inputs:
            if guard.msg not in home_sends:
                yield (f"remote.{state.name} ?{guard.msg} is never sent "
                       "inside a flow")


# ---------------------------------------------------------------------------
# the analysis pass
# ---------------------------------------------------------------------------


def flows_pass(protocol: Protocol, *,
               reports: Optional[tuple["PairReport", ...]] = None,
               config: Optional["RefinementConfig"] = None,
               strict_cycles: bool = False,
               graph: Optional[FlowGraph] = None) -> Iterator[Diagnostic]:
    """Emit the flow inventory (P4506) and any cover gaps (P4501)."""
    if graph is None:
        graph = derive_flows(protocol, reports=reports, config=config,
                             strict_cycles=strict_cycles)
    where = f"{protocol.name}:flows"
    kinds = {kind: sum(1 for f in graph.flows if f.kind == kind)
             for kind in (REMOTE_INITIATED, HOME_INITIATED, NOTIFICATION)}
    inventory = ", ".join(f"{n} {kind}" for kind, n in kinds.items() if n)
    yield make(
        "P4506", where,
        f"{len(graph.flows)} flow(s) derived ({inventory or 'none'}); "
        f"stable home states: {', '.join(sorted(graph.stable_states))}")
    if graph.uncovered:
        head = "; ".join(graph.uncovered[:6])
        more = (f" (+{len(graph.uncovered) - 6} more)"
                if len(graph.uncovered) > 6 else "")
        yield make(
            "P4501", where,
            f"flow cover is incomplete — {len(graph.uncovered)} "
            f"transition(s) belong to no derived flow: {head}{more}",
            hint="uncovered transitions cannot be accounted for by the "
                 "parameterized argument; see docs/ANALYSIS.md#P4501")
