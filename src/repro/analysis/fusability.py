"""Section 3.3 request/reply fusability report as diagnostics.

For every candidate request/reply pair (generated from requester-side
adjacency, exactly as the engine's detector does) this pass explains the
verdict:

* **P3301 (info)** — the pair passes all applicability conditions and
  will be fused: both acks elided, 2 wire messages instead of 4.
* **P3302 (info)** — the pair is a candidate but fails at least one
  condition; the diagnostic names *each* failed condition with the
  concrete state where it breaks (this is the report the one-line
  ``check_pair`` reason never gave).
* **P3303 (info)** — the pair is fusable but overlaps a chosen pair
  (chained fusion, e.g. ``acq``/``ok`` and ``ok``/``rel``); the engine
  deterministically picks a maximal non-overlapping subset and this
  diagnostic records what it skipped.

Everything here reuses :mod:`repro.refine.reqreply` — including its
reply-domination dataflow — through the public
:func:`~repro.refine.reqreply.fusability_report` API.

The import of :mod:`repro.refine` is deferred to call time: this module
is reachable from ``repro.csp.validate`` (via the analysis package),
and ``repro.refine.engine`` imports ``repro.csp.validate`` — a
module-level import here would close that cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from ..csp.ast import Protocol
from .diagnostics import Diagnostic, make

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..refine.reqreply import PairReport

__all__ = ["fusability_pass"]


def fusability_pass(protocol: Protocol,
                    strict_cycles: bool = False, *,
                    reports: "Optional[tuple[PairReport, ...]]" = None,
                    ) -> Iterator[Diagnostic]:
    """Report the fusability verdict for every candidate pair.

    :param reports: pre-computed pair reports; the pass manager shares
        one set across this pass and the flows pass so
        ``explain_pair`` runs at most once per pair.
    """
    from ..refine.reqreply import choose_pairs, fusability_report

    if reports is None:
        reports = fusability_report(protocol, strict_cycles=strict_cycles)
    chosen = frozenset(choose_pairs(reports))
    for report in reports:
        where = f"{protocol.name}:{report.pair.request_msg}"
        if not report.fusable:
            yield make("P3302", where, _failure_message(report),
                       hint="see docs/ANALYSIS.md#P3302 for the section "
                            "3.3 conditions")
        elif report.pair in chosen:
            yield make(
                "P3301", where,
                f"pair {report.pair.describe()} is fusable: both acks "
                "elided (2 messages instead of 4)")
        else:
            yield make(
                "P3303", where,
                f"pair {report.pair.describe()} passes the section 3.3 "
                "checks but shares a message with a chosen pair; chained "
                "fusions are not supported, so it stays a plain "
                "acked request",
                hint="pass fused_pairs=... to refine() to prefer this "
                     "pair instead")


def _failure_message(report: "PairReport") -> str:
    failed = "; ".join(
        f"{c.condition}: {c.reason}" for c in report.failures)
    return (f"pair {report.pair.describe()} is not fusable — "
            f"failed condition(s): {failed}")
