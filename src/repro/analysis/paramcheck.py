"""Flow-based parameterized deadlock-freedom analysis (the P45xx family).

:mod:`repro.analysis.flows` turns a protocol's AST into a message-flow
graph; this module turns that graph into a *verdict about arbitrary N*.
The argument has three legs, in the style of flow-based parameterized
verification (Sethi/Talupur/Malik, arXiv:1407.7468):

1. **Structure** (purely static): the flow cover must be complete
   (every transition belongs to a flow, else **P4501** from the flows
   pass), distinct stable-entry flows must occupy disjoint home interiors
   (**P4508** otherwise — without mutual exclusion the per-flow argument
   cannot attribute the home state to one transaction), and the home
   buffer demand of the refinement must be finite with the reservation
   discipline on (**P4503** otherwise — the paper's section 4 deadlock
   returns for some N if a remote can demand unbounded slots).

2. **Flow invariants** (static generation, checked on a small witness):
   for every *wait* — a home state where a flow blocks on one engaged
   remote — we compute the *blamed set*: remote states that can neither
   produce a message the home accepts there nor consume one the home
   offers.  An empty blamed set makes the wait responsive outright.
   Otherwise we emit the invariant "home at W ⇒ the engaged remote is
   not blamed", plus *engagement* invariants ("home inside flow A ⇒ A's
   requester sits in A's request region") and their duals ("a remote in
   A's wait region ⇒ home is inside A and engaged to it").  All
   invariants are checked exhaustively on the rendezvous instance at
   ``witness_nodes`` (default 2).  Because each invariant constrains the
   home and *one* engaged remote, and remotes are symmetric, a witness
   with one requester and one responder exercises every (home, engaged
   remote) case — this is the flow analogue of the repo's symmetry
   reduction, not an extra assumption.  A falsified wait invariant whose
   blamed state lies inside another flow's request region is a
   *waits-for cycle* between two flows (**P4502**, with the two flows
   and the blamed state as witness); any other falsification is
   **P4504** (invariant not inductive).  An inconclusive check —
   exploration truncated, semantics error, or a wait region the static
   analysis cannot track — is **P4507**.

3. **Transfer**: the claim is established at the rendezvous level; the
   repo's P44xx simulation certificate (``docs/ANALYSIS.md``) is what
   carries it to the asynchronous refinement, where the implicit-nack
   discipline resolves the request/request races the invariants rule
   out here.  The differential suite
   (``tests/property/test_flows_differential.py``) cross-checks the
   verdict against explicit-state exploration at n = 2..4.

When all legs hold, **P4505** (info) records the discharge: deadlock
freedom for arbitrary N, with the invariant inventory as the certificate
body.  Everything here is WARNING/INFO severity — obligations gate
nothing by default; ``repro lint --strict`` (or ``repro flows``) is
where they bite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from ..csp.ast import Input, Output, ProcessDef, Protocol, VarSender
from .bufferdemand import remote_demand
from .diagnostics import Diagnostic, make
from .flows import (
    HOME_INITIATED,
    NOTIFICATION,
    REMOTE_INITIATED,
    Flow,
    FlowGraph,
    Wait,
    derive_flows,
    producible_msgs,
    tau_closure,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..refine.plan import RefinementConfig
    from ..refine.reqreply import PairReport

__all__ = [
    "FlowInvariant",
    "ParamVerdict",
    "check_parameterized",
    "paramcheck_pass",
]

#: invariant kinds
WAIT = "wait"
ENGAGED = "engaged"
WAITING = "waiting"

#: default exhaustive-exploration budget for the witness instance
DEFAULT_WITNESS_BUDGET = 20_000


@dataclass(frozen=True)
class FlowInvariant:
    """One generated invariant, checkable on a rendezvous state."""

    name: str
    kind: str
    flow: str
    detail: str
    pred: Callable[[Any], bool] = field(compare=False, repr=False)
    #: for wait invariants: the blamed remote states and the wait record
    blamed: frozenset[str] = frozenset()
    wait: Optional[Wait] = None


@dataclass(frozen=True)
class ParamVerdict:
    """The parameterized deadlock-freedom verdict for one protocol."""

    protocol: str
    graph: FlowGraph
    discharged: bool
    obligations: tuple[Diagnostic, ...]
    invariants: tuple[FlowInvariant, ...]
    responsive_waits: int
    witness_nodes: int
    witness_states: int
    witness_completed: bool
    witness_deadlocks: int
    buffer_demand: Optional[int]

    @property
    def verdict(self) -> str:
        return "deadlock-free-any-N" if self.discharged else "obligations"

    def as_dict(self) -> dict[str, object]:
        return {
            "protocol": self.protocol,
            "verdict": self.verdict,
            "discharged": self.discharged,
            "complete_cover": self.graph.complete,
            "n_flows": len(self.graph.flows),
            "invariants": [
                {"name": i.name, "kind": i.kind, "flow": i.flow,
                 "detail": i.detail} for i in self.invariants],
            "responsive_waits": self.responsive_waits,
            "witness": {
                "nodes": self.witness_nodes,
                "states": self.witness_states,
                "completed": self.witness_completed,
                "deadlocks": self.witness_deadlocks,
            },
            "buffer_demand_per_remote": self.buffer_demand,
            "obligations": [d.as_dict() for d in self.obligations],
        }


# ---------------------------------------------------------------------------
# blamed sets
# ---------------------------------------------------------------------------


def _blamed(remote: ProcessDef, wait: Wait) -> frozenset[str]:
    """Remote states that can make no progress against a waiting home.

    A remote state escapes blame if, after local (tau) steps only, it
    can *produce* a message the home accepts at the wait, or *consume*
    one the home simultaneously offers there.  A blamed state paired
    with the wait is a local deadlock; the wait invariant asserts the
    engaged remote never sits in one.
    """
    blamed = set()
    for name in remote.states:
        if producible_msgs(remote, name) & wait.msgs:
            continue
        if wait.offers and any(
                g.msg in wait.offers
                for s in tau_closure(remote, name)
                for g in remote.state(s).inputs):
            continue
        blamed.add(name)
    return frozenset(blamed)


# ---------------------------------------------------------------------------
# invariant generation
# ---------------------------------------------------------------------------


def _wait_invariant(flow: Flow, wait: Wait,
                    blamed: frozenset[str]) -> FlowInvariant:
    state, var = wait.state, wait.var

    def pred(rv: Any, _s: str = state, _v: str = var,
             _b: frozenset[str] = blamed) -> bool:
        if rv.home.state != _s:
            return True
        idx = rv.home.env.get(_v)
        if not isinstance(idx, int) or not 0 <= idx < len(rv.remotes):
            return False  # untracked engagement: conservatively falsified
        return rv.remotes[idx].state not in _b

    detail = (f"home at {state} awaits {'/'.join(sorted(wait.msgs))} from "
              f"{var}; {var} must not be in "
              f"{{{', '.join(sorted(blamed))}}}")
    return FlowInvariant(name=f"{flow.name}:wait@{state}", kind=WAIT,
                         flow=flow.name, detail=detail, pred=pred,
                         blamed=blamed, wait=wait)


def _engaged_invariant(flow: Flow) -> FlowInvariant:
    interior, var = flow.interior_home, flow.requester_var
    region = flow.requester_region
    assert var is not None

    def pred(rv: Any, _i: frozenset[str] = interior, _v: str = var,
             _r: frozenset[str] = region) -> bool:
        if rv.home.state not in _i:
            return True
        idx = rv.home.env.get(_v)
        if not isinstance(idx, int) or not 0 <= idx < len(rv.remotes):
            return False
        return rv.remotes[idx].state in _r

    detail = (f"home inside {flow.name} "
              f"({', '.join(sorted(interior))}) ⇒ requester {var} is in "
              f"{{{', '.join(sorted(region))}}}")
    return FlowInvariant(name=f"{flow.name}:engaged", kind=ENGAGED,
                         flow=flow.name, detail=detail, pred=pred)


def _extended_interior(flow: Flow, graph: FlowGraph) -> frozenset[str]:
    """``flow``'s interior plus the interiors of flows nested inside it
    (transitively).  While the home serves a nested transaction — e.g.
    denying an upgrade mid-writer-grant — the outer requester is still
    legitimately waiting."""
    region = set(flow.interior_home)
    grown = True
    while grown:
        grown = False
        for nested in graph.flows:
            if nested.stable_entry or nested.entry_state not in region:
                continue
            if not nested.interior_home <= region:
                region |= nested.interior_home
                grown = True
    return frozenset(region)


def _waiting_invariant(wait_state: str, flows: tuple[Flow, ...],
                       graph: FlowGraph) -> FlowInvariant:
    """Dual of engagement: a remote parked in a request-wait state
    implies the home is mid-flow serving *that* remote — no requester is
    ever stranded against a stable home."""
    interiors = frozenset(s for f in flows
                          for s in _extended_interior(f, graph))
    vars_ = tuple(sorted({f.requester_var for f in flows
                          if f.requester_var is not None}))
    names = ", ".join(f.name for f in flows)

    def pred(rv: Any, _w: str = wait_state,
             _i: frozenset[str] = interiors,
             _v: tuple[str, ...] = vars_) -> bool:
        for idx, remote in enumerate(rv.remotes):
            if remote.state != _w:
                continue
            if rv.home.state not in _i:
                return False
            if not any(rv.home.env.get(v) == idx for v in _v):
                return False
        return True

    detail = (f"a remote at {wait_state} ⇒ home is inside one of "
              f"[{names}] and engaged to it")
    return FlowInvariant(name=f"waiting@{wait_state}", kind=WAITING,
                         flow=names, detail=detail, pred=pred)


def _sole_entry(remote: ProcessDef, wait_state: str,
                request_msgs: frozenset[str]) -> bool:
    """Is ``wait_state`` entered only by sending a request?  If other
    edges reach it, the dual invariant cannot attribute the wait."""
    if wait_state == remote.initial_state:
        return False
    for state in remote.states.values():
        for guard in state.guards:
            if guard.to != wait_state:
                continue
            if not (isinstance(guard, Output)
                    and guard.msg in request_msgs):
                return False
    return True


def generate_invariants(protocol: Protocol, graph: FlowGraph,
                        ) -> tuple[tuple[FlowInvariant, ...], int,
                                   tuple[str, ...]]:
    """Build the invariant set for ``graph``.

    Returns ``(invariants, responsive_waits, untracked)`` where
    ``responsive_waits`` counts waits discharged outright (empty blamed
    set, no invariant needed) and ``untracked`` lists request-wait
    states the dual invariant cannot cover (each is a P4507 obligation).
    """
    remote = protocol.remote
    invariants: list[FlowInvariant] = []
    seen: set[str] = set()
    responsive = 0

    for flow in graph.flows:
        for wait in flow.waits:
            blamed = _blamed(remote, wait)
            if not blamed:
                responsive += 1
                continue
            inv = _wait_invariant(flow, wait, blamed)
            if inv.name not in seen:  # nested flows share enclosing waits
                seen.add(inv.name)
                invariants.append(inv)
        if (flow.kind != NOTIFICATION and flow.stable_entry
                and flow.interior_home and flow.requester_var is not None
                and flow.requester_region):
            invariants.append(_engaged_invariant(flow))

    # duals, grouped by remote wait state across all reply-bearing flows
    by_wait: dict[str, list[Flow]] = {}
    for flow in graph.flows:
        if flow.kind != REMOTE_INITIATED or not flow.reply_msgs:
            continue
        for ws in flow.requester_wait_states:
            by_wait.setdefault(ws, []).append(flow)

    untracked: list[str] = []
    for ws in sorted(by_wait):
        flows = tuple(by_wait[ws])
        requests = frozenset(f.request_msg for f in flows)
        if not _sole_entry(remote, ws, requests):
            untracked.append(ws)
            continue
        invariants.append(_waiting_invariant(ws, flows, graph))

    return tuple(invariants), responsive, tuple(untracked)


# ---------------------------------------------------------------------------
# the check
# ---------------------------------------------------------------------------


def check_parameterized(protocol: Protocol, *,
                        graph: Optional[FlowGraph] = None,
                        reports: Optional[tuple["PairReport", ...]] = None,
                        config: Optional["RefinementConfig"] = None,
                        strict_cycles: bool = False,
                        witness_nodes: int = 2,
                        max_states: int = DEFAULT_WITNESS_BUDGET,
                        ) -> ParamVerdict:
    """Run the full parameterized deadlock-freedom analysis."""
    # deferred imports: repro.refine / repro.semantics reach back into
    # the analysis package (see flows.py)
    from ..refine.plan import RefinementConfig

    config = config or RefinementConfig()
    if graph is None:
        graph = derive_flows(protocol, reports=reports, config=config,
                             strict_cycles=strict_cycles)

    where = f"{protocol.name}:paramcheck"
    obligations: list[Diagnostic] = []

    # -- leg 1: structure ------------------------------------------------
    _check_mutex(graph, where, obligations)
    demand = _check_buffer(protocol, config, where, obligations)

    # -- leg 2: invariants on the witness instance -----------------------
    invariants, responsive, untracked = generate_invariants(protocol, graph)
    for ws in untracked:
        obligations.append(make(
            "P4507", where,
            f"request-wait state remote.{ws} has entries besides the "
            "request send; the waiting-side invariant cannot attribute "
            "it to a flow — parameterized claim is inconclusive"))

    witness = _run_witness(protocol, graph, invariants, witness_nodes,
                           max_states, where, obligations)

    # -- verdict ---------------------------------------------------------
    blocking = {"P4502", "P4503", "P4504", "P4507", "P4508"}
    discharged = (graph.complete
                  and not any(d.code in blocking for d in obligations))
    if discharged:
        obligations.append(make(
            "P4505", where,
            f"deadlock freedom discharged for arbitrary N: complete "
            f"cover by {len(graph.flows)} flows, {len(invariants)} flow "
            f"invariant(s) hold on the exhaustive n={witness_nodes} "
            f"rendezvous witness ({witness.n_states} states, "
            f"{responsive} wait(s) responsive outright), home buffer "
            f"demand {demand}/remote under reservations; lifted by flow "
            f"symmetry and transferred to the async refinement via the "
            f"P44xx simulation certificate"))

    return ParamVerdict(
        protocol=protocol.name,
        graph=graph,
        discharged=discharged,
        obligations=tuple(obligations),
        invariants=invariants,
        responsive_waits=responsive,
        witness_nodes=witness_nodes,
        witness_states=witness.n_states,
        witness_completed=witness.completed,
        witness_deadlocks=witness.deadlock_count,
        buffer_demand=demand,
    )


def _check_mutex(graph: FlowGraph, where: str,
                 obligations: list[Diagnostic]) -> None:
    """Stable-entry flows must occupy disjoint home interiors (nested
    flows deliberately share their enclosing transaction's states)."""
    top = [f for f in graph.flows if f.stable_entry and f.interior_home]
    for i, a in enumerate(top):
        for b in top[i + 1:]:
            shared = a.interior_home & b.interior_home
            if shared:
                obligations.append(make(
                    "P4508", where,
                    f"flows {a.name} and {b.name} share home state(s) "
                    f"{{{', '.join(sorted(shared))}}}; without mutual "
                    "exclusion the home state cannot be attributed to "
                    "one transaction"))


def _check_buffer(protocol: Protocol, config: "RefinementConfig",
                  where: str,
                  obligations: list[Diagnostic]) -> Optional[int]:
    demand = remote_demand(protocol.remote, config.fire_and_forget)
    if demand is None:
        obligations.append(make(
            "P4503", where,
            "a remote can issue unboundedly many unacknowledged "
            "messages (no finite per-remote demand); the k-bounded "
            "home-buffer argument does not close for any fixed "
            "capacity",
            hint="see P3203 and docs/ANALYSIS.md#P4503"))
    missing = [flag for flag, on in (
        ("reserve_progress_buffer", config.reserve_progress_buffer),
        ("reserve_ack_buffer", config.reserve_ack_buffer)) if not on]
    if missing:
        obligations.append(make(
            "P4503", where,
            f"reservation discipline disabled ({', '.join(missing)}); "
            "the section 4 overflow deadlock returns for some N "
            "regardless of capacity k"))
    return demand


def _run_witness(protocol: Protocol, graph: FlowGraph,
                 invariants: tuple[FlowInvariant, ...],
                 witness_nodes: int, max_states: int, where: str,
                 obligations: list[Diagnostic]) -> Any:
    from ..check.explorer import explore
    from ..check.stats import ExplorationResult
    from ..semantics.rendezvous import RendezvousSystem

    by_name = {inv.name: inv for inv in invariants}
    try:
        system = RendezvousSystem(protocol, witness_nodes)
        result = explore(
            system,
            name=f"{protocol.name}-rv{witness_nodes}-paramcheck",
            invariants=[(inv.name, _safe(inv.pred)) for inv in invariants],
            max_states=max_states,
            stop_on_violation=False,
            allow_deadlock=False,
        )
    except Exception as exc:  # semantics errors on ill-formed protocols
        obligations.append(make(
            "P4507", where,
            f"witness instance (n={witness_nodes}) could not be "
            f"explored: {exc}"))
        return ExplorationResult(
            system_name=f"{protocol.name}-rv{witness_nodes}-paramcheck",
            n_states=0, n_transitions=0, seconds=0.0, completed=False,
            stop_reason="error")

    # explore() records one counterexample per violating state; keep the
    # shortest witness per invariant
    best: dict[str, Any] = {}
    for cex in result.violations:
        prev = best.get(cex.property_name)
        if prev is None or len(cex.steps) < len(prev.steps):
            best[cex.property_name] = cex
    for name in sorted(best):
        inv = by_name.get(name)
        if inv is None:  # pragma: no cover - defensive
            continue
        obligations.append(_classify_violation(graph, inv, best[name],
                                               where))

    if result.deadlock_count:
        obligations.append(_deadlock_obligation(graph, result, where,
                                                witness_nodes))
    if not result.completed:
        obligations.append(make(
            "P4507", where,
            f"witness exploration truncated ({result.stop_reason}) "
            f"after {result.n_states} states; invariants were not "
            "checked exhaustively"))
    return result


def _safe(pred: Callable[[Any], bool]) -> Callable[[Any], bool]:
    def wrapped(state: Any) -> bool:
        try:
            return pred(state)
        except Exception:
            return False  # a crash in a predicate is a falsification
    return wrapped


def _classify_violation(graph: FlowGraph, inv: FlowInvariant,
                        cex: Any, where: str) -> Diagnostic:
    if inv.kind == WAIT and inv.wait is not None:
        state = cex.states[-1]
        blamed_state: Optional[str] = None
        idx = state.home.env.get(inv.wait.var)
        if isinstance(idx, int) and 0 <= idx < len(state.remotes):
            blamed_state = state.remotes[idx].state
        for other in graph.flows:
            if other.name == inv.flow or blamed_state is None:
                continue
            if blamed_state in other.requester_region:
                return make(
                    "P4502", where,
                    f"waits-for cycle between flows {inv.flow} and "
                    f"{other.name}: at home state {inv.wait.state}, "
                    f"flow {inv.flow} awaits "
                    f"{'/'.join(sorted(inv.wait.msgs))} from "
                    f"{inv.wait.var}, but {inv.wait.var} sits at "
                    f"remote.{blamed_state} inside {other.name}'s "
                    f"request region — each flow waits on the other "
                    f"({len(cex.steps)}-step witness)")
        return make(
            "P4504", where,
            f"wait invariant {inv.name} is not inductive: "
            f"{inv.detail}; falsified in {len(cex.steps)} steps "
            f"(engaged remote at "
            f"{blamed_state or 'untracked state'})")
    return make(
        "P4504", where,
        f"{inv.kind} invariant {inv.name} is not inductive: "
        f"{inv.detail}; falsified in {len(cex.steps)} steps")


def _deadlock_obligation(graph: FlowGraph, result: Any, where: str,
                         witness_nodes: int) -> Diagnostic:
    detail = ""
    if result.deadlocks:
        witness = result.deadlocks[0]
        # deadlock witnesses are traces (Counterexample) or bare states
        state = (witness.states[-1] if hasattr(witness, "states")
                 else witness)
        home = state.home.state
        remotes = ", ".join(r.state for r in state.remotes)
        involved = [f.name for f in graph.flows
                    if home in f.interior_home or home == f.entry_state]
        pair = (f" (home at {home} inside "
                f"[{', '.join(involved) or 'no flow'}], remotes at "
                f"[{remotes}])")
        detail = pair
    return make(
        "P4502", where,
        f"the n={witness_nodes} witness instance deadlocks "
        f"({result.deadlock_count} state(s)){detail}; the flow "
        "waits-for relation has a cycle")


# ---------------------------------------------------------------------------
# the analysis pass
# ---------------------------------------------------------------------------


def paramcheck_pass(protocol: Protocol, *,
                    reports: Optional[tuple["PairReport", ...]] = None,
                    config: Optional["RefinementConfig"] = None,
                    strict_cycles: bool = False,
                    graph: Optional[FlowGraph] = None,
                    witness_nodes: int = 2,
                    ) -> Iterator[Diagnostic]:
    """Pass-manager entry point: yield the P45xx obligations/verdict."""
    verdict = check_parameterized(
        protocol, graph=graph, reports=reports, config=config,
        strict_cycles=strict_cycles, witness_nodes=witness_nodes)
    yield from verdict.obligations
