"""Unreachable-state and dead-guard detection.

Two cheap whole-protocol dataflow checks that the string-based validator
never performed:

* **P2501 — unreachable state.**  A state with no path from the process's
  initial state can never execute.  It is dead weight at best; at worst it
  is the author's intended behaviour silently disconnected by a typo in a
  ``to=`` label (the AST only checks that the *name* exists).

* **P2502 — dead guard.**  A rendezvous guard whose message type the
  counterpart process never offers from the opposite side.  Under the star
  topology a home ``Input(m)`` can only ever fire if some remote state has
  an ``Output(m)`` — and symmetrically for the other three combinations.
  No variable valuation can save such a guard, so this is decidable
  syntactically (the same style of static flow reasoning Sethi et al.,
  arXiv:1407.7468, use to derive deadlock-freedom without search).

Both are warnings, not errors: the refinement theorem still applies (the
dead structure refines to dead structure), but the spec almost certainly
does not say what its author meant.
"""

from __future__ import annotations

from typing import Iterator

from ..csp.ast import Input, Output, ProcessDef, Protocol
from .diagnostics import Diagnostic, make

__all__ = ["reachability_pass", "unreachable_states"]


def reachability_pass(protocol: Protocol) -> Iterator[Diagnostic]:
    for process in (protocol.home, protocol.remote):
        yield from _unreachable(process)
    yield from _dead_guards(protocol.home, protocol.remote)
    yield from _dead_guards(protocol.remote, protocol.home)


def unreachable_states(process: ProcessDef) -> frozenset[str]:
    """Names of states with no path from the initial state."""
    seen: set[str] = set()
    stack = [process.initial_state]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(g.to for g in process.states[name].guards)
    return frozenset(process.states) - seen


def _unreachable(process: ProcessDef) -> Iterator[Diagnostic]:
    for name in sorted(unreachable_states(process)):
        yield make(
            "P2501", f"{process.name}.{name}",
            f"state is unreachable from the initial state "
            f"{process.initial_state!r}",
            hint="connect it with a guard or delete it")


def _dead_guards(process: ProcessDef,
                 counterpart: ProcessDef) -> Iterator[Diagnostic]:
    """Guards of ``process`` whose message the counterpart never offers."""
    offered_inputs = _messages(counterpart, Input)
    offered_outputs = _messages(counterpart, Output)
    for state in process.states.values():
        where = f"{process.name}.{state.name}"
        for guard in state.guards:
            if isinstance(guard, Output) and guard.msg not in offered_inputs:
                yield make(
                    "P2502", where,
                    f"output {guard.describe()} is dead: "
                    f"{counterpart.name} never inputs {guard.msg!r}",
                    hint=f"add a matching input to {counterpart.name} or "
                         "remove the guard")
            elif isinstance(guard, Input) and guard.msg not in offered_outputs:
                yield make(
                    "P2502", where,
                    f"input {guard.describe()} is dead: "
                    f"{counterpart.name} never outputs {guard.msg!r}",
                    hint=f"add a matching output to {counterpart.name} or "
                         "remove the guard")


def _messages(process: ProcessDef,
              kind: "type[Input] | type[Output]") -> frozenset[str]:
    return frozenset(
        g.msg for s in process.states.values() for g in s.guards
        if isinstance(g, kind))
