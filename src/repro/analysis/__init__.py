"""Protocol static analysis: structured diagnostics over rendezvous ASTs.

The paper's central claim is that its protocol class is *statically
checkable*: the section 2.4 syntactic restrictions, the section 3.3
request/reply fusability conditions and the section 2.5/3.2 buffer and
progress prerequisites are all decidable on the AST, before any state
space is explored.  This subsystem makes that a first-class tool:

* :mod:`~repro.analysis.diagnostics` — the :class:`Diagnostic` record
  (stable ``P….`` codes, severity, location, message, fix hint), the
  :class:`AnalysisReport` container and text/JSON renderers;
* :mod:`~repro.analysis.restrictions` — section 2.4 restriction checks
  (the old :mod:`repro.csp.validate` strings, now structured);
* :mod:`~repro.analysis.reachability` — unreachable states, dead guards;
* :mod:`~repro.analysis.overlap` — ambiguous home input guards;
* :mod:`~repro.analysis.fusability` — the per-pair section 3.3 report;
* :mod:`~repro.analysis.bufferdemand` — static home-buffer-demand bound;
* :mod:`~repro.analysis.transients` — transient-exit sanity on refined
  machines;
* :mod:`~repro.analysis.symbolic` — symbolic two-node configurations and
  the per-schema simulation obligations (section 4);
* :mod:`~repro.analysis.simulation` — the certificate checker that
  discharges those obligations against ``abs`` (``P44xx``);
* :mod:`~repro.analysis.flows` — message-flow derivation from the AST
  (the transaction shapes between stable home states);
* :mod:`~repro.analysis.paramcheck` — flow-based parameterized
  deadlock-freedom verdicts for arbitrary node counts (``P45xx``);
* :mod:`~repro.analysis.coherencecheck` — parameterized single-writer /
  SWMR verdicts through a flow-strengthened environment abstraction
  (``P46xx``);
* :mod:`~repro.analysis.sarif` — SARIF 2.1.0 export of any report;
* :mod:`~repro.analysis.manager` — the pass manager
  (:func:`analyze_protocol` / :func:`analyze_refined`).

Run it from the command line with ``python -m repro lint <protocol>``;
the refinement engine runs the same suite and refuses protocols with
error-severity findings.  The full code catalogue, with paper citations,
lives in ``docs/ANALYSIS.md``.
"""

from .bufferdemand import home_buffer_bound, remote_demand
from .coherencecheck import CoherenceLemma, CoherenceVerdict, check_coherence
from .diagnostics import (
    CODES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    Severity,
    expand_codes,
    render_json,
    render_text,
)
from .flows import Flow, FlowGraph, derive_flows
from .manager import (
    AnalysisCache,
    AnalysisContext,
    analyze_protocol,
    analyze_refined,
)
from .overlap import patterns_may_overlap
from .paramcheck import ParamVerdict, check_parameterized
from .reachability import unreachable_states
from .simulation import CertificateReport, check_certificate

__all__ = [
    "CODES",
    "AnalysisCache",
    "AnalysisContext",
    "AnalysisReport",
    "CertificateReport",
    "CodeInfo",
    "CoherenceLemma",
    "CoherenceVerdict",
    "Diagnostic",
    "Flow",
    "FlowGraph",
    "ParamVerdict",
    "Severity",
    "analyze_protocol",
    "analyze_refined",
    "check_certificate",
    "check_coherence",
    "check_parameterized",
    "derive_flows",
    "expand_codes",
    "home_buffer_bound",
    "patterns_may_overlap",
    "remote_demand",
    "render_json",
    "render_text",
    "unreachable_states",
]
