"""Symbolic two-node configurations for the refinement certificate.

The certificate checker of :mod:`repro.analysis.simulation` must discharge
one commutation obligation per *transition schema instance* — (role,
control/transient state, delivered message or send) — without exploring
the asynchronous state space whose explosion the paper set out to avoid.
This module produces those instances.

**Why two nodes suffice.**  Every Tables 1/2 row involves at most the home
node, the remote it is exchanging with, and one *competitor* whose request
must be buffered or nacked (rows T3-T6); the abstraction function ``abs``
factors per-node (each node's image depends only on its own control state
and its own channels/buffer entries).  An obligation therefore commutes
for some node count ``n`` iff it commutes in a configuration with the
involved remote plus one representative bystander, and the reachable
context set is closed under swapping remote indices — so a *two-remote*
system exhibits every schema row in every machinery posture.  This is the
standard parameterized argument (cf. flow-based frameworks for
arbitrary-``n`` protocols); it is what makes the check N-independent.

**How instances are produced.**  The *contexts* — joint control states the
parties can occupy when no machinery is in flight — are exactly the
reachable states of the **rendezvous** system at ``n = 2``: the tiny state
space the paper proposes users verify, not the asynchronous one.  Each
context ``c`` is embedded as the quiescent asynchronous state ``E(c)``
(empty channels and buffers, every node idle) and its closure is
enumerated: all asynchronous steps reachable from ``E(c)``, deduplicated
globally across contexts.  Nack/retransmit and rescan cycles revisit
earlier closure states, so the closure is finite — it is the
asynchronous reachable set at ``n = 2`` seeded from *every* context,
which also covers contexts a particular initial state would never reach.
(Quiescent states are expanded like any other: a node's out-guard cursor
after T2 nack-cycling differs from the embedding's, so treating them as
"already covered" would hide the retry flows.)

Contexts in which a remote occupies a state that exists only *mid-fused
exchange* are skipped: for a remote-initiated pair that is the requester's
reply-waiting state (the requester is transient there, never idle), and
for a home-initiated pair the responder's atomic response chain (consumed
in a single C3 step, never occupied at all).  Embedding them idle would
fabricate asynchronously unreachable configurations — e.g. a fused reply
arriving at a non-transient node, a :class:`SemanticsError` by
construction.  The closures of the surrounding contexts walk through the
real mid-exchange configurations instead.

Each emitted :class:`Obligation` carries a concrete before-state and the
executed :class:`~repro.semantics.asynchronous.Step`; a schema row whose
execution raises is reported as a :class:`SchemaFault`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Union

from ..csp.ast import Input, Protocol
from ..errors import SemanticsError
from ..semantics.asynchronous import (
    IDLE,
    AsyncState,
    AsyncSystem,
    DeliverToHome,
    DeliverToRemote,
    HomeNode,
    HomeStep,
    HomeTau,
    RemoteC3,
    RemoteNode,
    RemoteSend,
    RemoteTau,
    Step,
)
from ..semantics.network import Channels
from ..semantics.rendezvous import RendezvousSystem
from ..semantics.state import RvState

__all__ = [
    "Obligation",
    "SchemaFault",
    "embed",
    "enumerate_contexts",
    "enumerate_obligations",
    "is_quiescent",
]


@dataclass(frozen=True)
class Obligation:
    """One commutation obligation: a concrete step to check under ``abs``."""

    rule: str  # schema-row label, e.g. "remote.send" or "deliver.ACK→home"
    location: str  # "process.state" anchor for diagnostics
    before: AsyncState
    step: Step
    #: a competing remote has machinery of its own in this configuration
    #: (the T3-T6 buffering/nacking postures)
    interference: bool = False


@dataclass(frozen=True)
class SchemaFault:
    """A schema row whose execution raised instead of producing a step."""

    location: str
    message: str
    before: AsyncState


ObligationItem = Union[Obligation, SchemaFault]


def enumerate_contexts(protocol: Protocol, *,
                       max_states: int = 4096,
                       ) -> tuple[list[RvState], bool]:
    """Reachable rendezvous states at ``n = 2``, plus a completeness flag."""
    system = RendezvousSystem(protocol, 2)
    init = system.initial_state()
    seen: set[RvState] = {init}
    order: list[RvState] = [init]
    frontier: deque[RvState] = deque([init])
    complete = True
    while frontier:
        state = frontier.popleft()
        if len(seen) > max_states:
            complete = False
            break
        for _action, nxt in system.successors(state):
            if nxt not in seen:
                seen.add(nxt)
                order.append(nxt)
                frontier.append(nxt)
    return order, complete


def embed(system: AsyncSystem, context: RvState) -> AsyncState:
    """The quiescent asynchronous state ``E(c)`` of a rendezvous context."""
    home = HomeNode(state=context.home.state, env=context.home.env)
    remotes = tuple(RemoteNode(state=p.state, env=p.env)
                    for p in context.remotes)
    return AsyncState(home=home, remotes=remotes,
                      channels=Channels.empty(len(context.remotes)))


def is_quiescent(state: AsyncState) -> bool:
    """No machinery anywhere: the state is an embedding of some context."""
    if state.home.mode != IDLE or state.home.buffer:
        return False
    if any(r.mode != IDLE or r.buf is not None for r in state.remotes):
        return False
    return all(not queue for queue in state.channels.queues)


def enumerate_obligations(system: AsyncSystem,
                          contexts: list[RvState], *,
                          max_expansions: int = 20_000,
                          stats: dict[str, int] | None = None,
                          ) -> Iterator[ObligationItem]:
    """All closure obligations over the given contexts.

    Yields :class:`Obligation` records (deduplicated globally by
    (before-state, action)) and :class:`SchemaFault` records for rows
    whose execution raises.  If ``stats`` is given, ``stats["expanded"]``
    receives the closure size and ``stats["truncated"]`` is set to 1 when
    ``max_expansions`` cut the enumeration short.
    """
    skip_states = _mid_exchange_states(system)
    expanded: set[AsyncState] = set()
    if stats is not None:
        stats.setdefault("truncated", 0)
    for context in contexts:
        if any(p.state in skip_states for p in context.remotes):
            continue
        frontier: list[AsyncState] = [embed(system, context)]
        while frontier:
            state = frontier.pop()
            if state in expanded:
                continue
            if len(expanded) >= max_expansions:
                if stats is not None:
                    stats["truncated"] = 1
                    stats["expanded"] = len(expanded)
                return
            expanded.add(state)
            try:
                steps = system.steps(state)
            except SemanticsError as exc:
                yield SchemaFault(location=_location(state), message=str(exc),
                                  before=state)
                continue
            busy = _n_engaged(state)
            for step in steps:
                yield Obligation(rule=_classify(state, step),
                                 location=_location(state, step),
                                 before=state, step=step,
                                 interference=busy >= 2)
                # quiescent successors are expanded too: a node's guard
                # cursor (T2 out-guard cycling) can differ from the
                # embedding's, so stopping there would hide retry flows
                frontier.append(step.state)
    if stats is not None:
        stats["expanded"] = len(expanded)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _mid_exchange_states(system: AsyncSystem) -> frozenset[str]:
    """Remote states occupied only mid-fused-exchange (skip as contexts).

    Two families: the requester's reply-waiting state of a
    remote-initiated fused pair (occupied only while transient), and the
    responder chain of a home-initiated pair — consumed atomically by the
    C3 fused response, so asynchronous execution never idles there.
    Embedding either idle fabricates an unreachable configuration.
    """
    from ..refine.transitions import KIND_REQUEST, REMOTE
    states: set[str] = set()
    for spec in system.table:
        if (spec.role == REMOTE and spec.kind == KIND_REQUEST
                and spec.reply_to is not None):
            states.add(spec.reply_to)
    remote = system.protocol.remote
    for msg in system.table.fused_requests("home"):
        for state_def in remote.states.values():
            for guard in state_def.guards:
                if not isinstance(guard, Input) or guard.msg != msg:
                    continue
                cursor = remote.state(guard.to)
                states.add(cursor.name)
                hops = 0
                while (cursor.is_internal and len(cursor.guards) == 1
                       and hops <= len(remote.states)):
                    cursor = remote.state(cursor.taus[0].to)
                    states.add(cursor.name)
                    hops += 1
    return frozenset(states)


def _n_engaged(state: AsyncState) -> int:
    """How many remotes have machinery (transient, buffered, or in flight)."""
    count = 0
    for i, node in enumerate(state.remotes):
        if (node.mode != IDLE or node.buf is not None
                or state.channels.queues[Channels.to_remote(i)]
                or state.channels.queues[Channels.to_home(i)]
                or any(e.sender == i for e in state.home.buffer)):
            count += 1
    return count


def _classify(before: AsyncState, step: Step) -> str:
    """A human-stable schema-row label for an executed step."""
    action = step.action
    if isinstance(action, RemoteSend):
        return "remote.send"
    if isinstance(action, RemoteC3):
        return "remote.C3"
    if isinstance(action, RemoteTau):
        return "remote.tau"
    if isinstance(action, HomeStep):
        return f"home.{action.kind}"
    if isinstance(action, HomeTau):
        return "home.tau"
    if isinstance(action, DeliverToHome):
        head = before.channels.head_to_home(action.remote)
        kind = head.kind if head is not None else "?"
        return f"deliver.{kind}→home"
    if isinstance(action, DeliverToRemote):
        head = before.channels.head_to_remote(action.remote)
        kind = head.kind if head is not None else "?"
        return f"deliver.{kind}→remote"
    return "unknown"


def _location(state: AsyncState, step: Step | None = None) -> str:
    """A ``process.state`` diagnostic anchor for a closure configuration."""
    action = step.action if step is not None else None
    if isinstance(action, (RemoteSend, RemoteC3, RemoteTau, DeliverToRemote)):
        return f"remote.{state.remotes[action.remote].state}"
    return f"home.{state.home.state}"
