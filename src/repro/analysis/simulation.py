"""The simulation-obligation certificate checker (P44xx).

Discharges the paper's Equation 1 — every asynchronous step is a stutter
under ``abs`` or maps to rendezvous steps of the source protocol — *per
transition schema instance* over symbolic two-node configurations,
instead of exploring an asynchronous state space.  See
:mod:`repro.analysis.symbolic` for how the obligations are produced and
why two nodes suffice; this module checks them and turns failures into
diagnostics:

* **P4401** — a transition does not commute with ``abs`` (the executed
  step's image is neither a stutter nor reachable within the allowed
  number of rendezvous steps), or a schema row could not execute at all.
* **P4402** — ``abs`` is undefined on a reachable configuration outside
  the documented fire-and-forget carve-out.
* **P4403** — a transient state with no abstract preimage: ``abs`` finds
  no witness message, no input guard accepts a fused reply, or the step
  table promises a reply the AST cannot consume.
* **P4404** — the step table's control targets (ack/nack rewind and
  fast-forward states, fused replies) disagree with the ones the AST
  derives — the certificate's static half.
* **P4405** (info) — the certificate inventory: how many contexts and
  obligations were discharged, and how.
* **P4406** (warning) — a budget truncated the certificate; the verdict
  covers only what was enumerated.

The checker runs as the ``simulation`` pass of
:func:`repro.analysis.manager.analyze_refined`, surfaces in ``repro
lint`` and gates :func:`repro.refine.engine.refine`.  Its verdict is
cross-checked against explicit-state exploration
(:func:`repro.check.simulation.check_simulation`) by the differential
test harness, including on seeded mutants injected through
:meth:`repro.refine.transitions.StepTable.mutate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from ..csp.ast import Input
from ..refine.abstraction import AbstractionUndefined, abstract_state
from ..refine.plan import RefinedProtocol
from ..refine.transitions import (
    HOME as HOME_ROLE,
    KIND_REQUEST,
    StepTable,
    build_step_table,
)
from ..semantics.asynchronous import AsyncState, AsyncSystem
from ..semantics.network import NOTE, REPL
from ..semantics.rendezvous import RendezvousSystem
from ..semantics.state import RvState
from .diagnostics import CODES, Diagnostic, Severity, make
from .symbolic import (
    Obligation,
    SchemaFault,
    enumerate_contexts,
    enumerate_obligations,
)

__all__ = ["CertificateReport", "check_certificate", "simulation_pass"]

_EmitFn = Callable[..., None]


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of one certificate run (all obligations of one protocol)."""

    subject: str
    n_contexts: int
    n_obligations: int
    n_stutters: int
    n_mapped: int
    n_mapped_deep: int
    n_carved: int  # fire-and-forget carve-out obligations (skipped)
    n_interference: int
    closure_states: int
    complete: bool
    diagnostics: tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def describe(self) -> str:
        verdict = "CERTIFICATE HOLDS" if self.ok else "CERTIFICATE FAILS"
        return f"{verdict}: {self.inventory()}"

    def inventory(self) -> str:
        return (f"{self.n_obligations} obligations over "
                f"{self.n_contexts} contexts ({self.n_stutters} stutters, "
                f"{self.n_mapped} single-step, {self.n_mapped_deep} "
                f"multi-step fused, {self.n_carved} carved fire-and-forget, "
                f"{self.n_interference} interference); closure "
                f"{self.closure_states} states")


def check_certificate(refined: RefinedProtocol, *,
                      table: Optional[StepTable] = None,
                      max_contexts: int = 4096,
                      max_expansions: int = 20_000,
                      max_failures: int = 25,
                      ) -> CertificateReport:
    """Discharge every simulation obligation of ``refined``.

    ``table`` defaults to the table derived from the AST; passing a
    mutated table checks the *mutant* semantics against the unchanged
    abstraction — the fault-injection mode of the differential harness.
    """
    derived = build_step_table(refined)
    if table is None:
        table = derived
    diagnostics: list[Diagnostic] = []
    seen_keys: set[tuple[str, str, str]] = set()
    n_suppressed = 0

    def emit(code: str, location: str, message: str,
             hint: Optional[str] = None, dedup: str = "") -> None:
        nonlocal n_suppressed
        key = (code, location, dedup or message)
        if key in seen_keys:
            return
        seen_keys.add(key)
        if CODES[code].default_severity >= Severity.ERROR:
            n_errors = sum(1 for d in diagnostics
                           if d.severity >= Severity.ERROR)
            if n_errors >= max_failures:
                n_suppressed += 1
                return
        diagnostics.append(make(code, location, message, hint=hint))

    # -- static half: the table must agree with the AST ----------------------
    _check_table(table, derived, emit)
    _check_reply_exits(refined, table, emit)

    # -- dynamic half: discharge the commutation obligations -----------------
    system = AsyncSystem(refined, 2, table=table)
    rv_system = RendezvousSystem(refined.protocol, 2)
    contexts, contexts_complete = enumerate_contexts(
        refined.protocol, max_states=max_contexts)
    fused_depth = _fused_response_depths(refined)

    abs_cache: dict[AsyncState, Union[RvState, AbstractionUndefined]] = {}
    rv_succ_cache: dict[RvState, frozenset[RvState]] = {}

    def abstraction(state: AsyncState) -> Union[RvState, AbstractionUndefined]:
        cached = abs_cache.get(state)
        if cached is None:
            try:
                cached = abstract_state(system, state)
            except AbstractionUndefined as exc:
                cached = exc
            abs_cache[state] = cached
        return cached

    def rv_successors(state: RvState) -> frozenset[RvState]:
        cached = rv_succ_cache.get(state)
        if cached is None:
            cached = frozenset(nxt for _a, nxt in rv_system.successors(state))
            rv_succ_cache[state] = cached
        return cached

    def reachable_within(src: RvState, dst: RvState, depth: int) -> int:
        """Fewest rendezvous hops from ``src`` to ``dst`` within ``depth``."""
        frontier = {src}
        for hops in range(1, depth + 1):
            nxt: set[RvState] = set()
            for state in frontier:
                succ = rv_successors(state)
                if dst in succ:
                    return hops
                nxt.update(succ)
            frontier = nxt
        return 0

    n_obligations = n_stutters = n_mapped = n_deep = 0
    n_carved = n_interference = 0
    stats: dict[str, int] = {}
    for item in enumerate_obligations(system, contexts,
                                      max_expansions=max_expansions,
                                      stats=stats):
        if isinstance(item, SchemaFault):
            emit("P4401", item.location,
                 f"transition schema row cannot execute: {item.message} "
                 f"(in {item.before.describe()})",
                 dedup=item.message)
            continue
        n_obligations += 1
        if item.interference:
            n_interference += 1
        verdict = _check_obligation(item, system, abstraction,
                                    reachable_within, fused_depth, emit)
        if verdict == "stutter":
            n_stutters += 1
        elif verdict == "mapped":
            n_mapped += 1
        elif verdict == "deep":
            n_deep += 1
        elif verdict == "carved":
            n_carved += 1

    complete = contexts_complete and not stats.get("truncated")
    if not complete:
        what = []
        if not contexts_complete:
            what.append(f"rendezvous context budget {max_contexts}")
        if stats.get("truncated"):
            what.append(f"closure budget {max_expansions}")
        emit("P4406", "protocol",
             f"certificate truncated by {' and '.join(what)}; obligations "
             "beyond the budget were not discharged",
             hint="raise max_contexts/max_expansions to certify fully")

    report = CertificateReport(
        subject=refined.name,
        n_contexts=len(contexts),
        n_obligations=n_obligations,
        n_stutters=n_stutters,
        n_mapped=n_mapped,
        n_mapped_deep=n_deep,
        n_carved=n_carved,
        n_interference=n_interference,
        closure_states=stats.get("expanded", 0),
        complete=complete,
        diagnostics=tuple(diagnostics),
    )
    inventory = report.inventory()
    if n_suppressed:
        inventory += f" ({n_suppressed} further failure(s) suppressed)"
    diagnostics.append(make("P4405", "protocol", inventory))
    return CertificateReport(
        subject=report.subject, n_contexts=report.n_contexts,
        n_obligations=report.n_obligations, n_stutters=report.n_stutters,
        n_mapped=report.n_mapped, n_mapped_deep=report.n_mapped_deep,
        n_carved=report.n_carved, n_interference=report.n_interference,
        closure_states=report.closure_states, complete=report.complete,
        diagnostics=tuple(diagnostics))


def simulation_pass(refined: RefinedProtocol) -> Iterator[Diagnostic]:
    """The pass-manager entry point: certificate diagnostics only."""
    return iter(check_certificate(refined).diagnostics)


# ---------------------------------------------------------------------------
# obligation checking
# ---------------------------------------------------------------------------


def _check_obligation(
        item: Obligation,
        system: AsyncSystem,
        abstraction: Callable[[AsyncState],
                              Union[RvState, AbstractionUndefined]],
        reachable_within: Callable[[RvState, RvState, int], int],
        fused_depth: dict[str, int],
        emit: _EmitFn) -> str:
    """Check one obligation; returns its inventory bucket."""
    before_abs = abstraction(item.before)
    after_abs = abstraction(item.step.state)

    for state, image in ((item.before, before_abs),
                         (item.step.state, after_abs)):
        if isinstance(image, AbstractionUndefined):
            if image.is_note_carveout and _has_note(state) \
                    and system.plan.fire_and_forget:
                return "carved"
            if image.is_note_carveout:
                emit("P4402", item.location,
                     f"abs undefined ({image.reason}) on rule {item.rule} "
                     "but the plan declares no fire-and-forget messages: "
                     f"{image} (in {state.describe()})",
                     dedup=f"{item.rule}:{image.reason}")
            else:
                emit("P4403", item.location,
                     f"abs has no preimage ({image.reason}) after rule "
                     f"{item.rule}: {image} (in {state.describe()})",
                     hint="a transient state must always hold a witness "
                          "message (request, ack, nack or reply) for abs "
                          "to discharge",
                     dedup=f"{item.rule}:{image.reason}")
            return "failed"

    assert isinstance(before_abs, RvState)
    assert isinstance(after_abs, RvState)
    if before_abs == after_abs:
        return "stutter"
    # A step that puts a fused REPL in flight fast-forwards its target
    # through both rendezvous at once (plus the responder's internal tau
    # chain for a home-initiated pair), so it may map to several hops;
    # every other step maps to at most one.
    allowed = 1
    repl = next((m for m in item.step.sends if m.kind == REPL), None)
    if repl is not None and repl.msg is not None:
        allowed = fused_depth.get(repl.msg, 1)
    hops = reachable_within(before_abs, after_abs, allowed)
    if hops == 1:
        return "mapped"
    if hops > 1:
        return "deep"
    emit("P4401", item.location,
         f"rule {item.rule} ({item.step.action.describe()}) does not "
         f"commute: abs maps {before_abs.describe()} -> "
         f"{after_abs.describe()}, not reachable in <= {allowed} "
         "rendezvous step(s)",
         hint="check the rewind/fast-forward targets of the step-table "
              "row that fired here",
         dedup=f"{item.rule}:{item.step.action.describe()}")
    return "failed"


def _has_note(state: AsyncState) -> bool:
    if any(entry.note for entry in state.home.buffer):
        return True
    return any(msg.kind == NOTE
               for _i, _direction, msg in state.channels.in_flight())


# ---------------------------------------------------------------------------
# the static half
# ---------------------------------------------------------------------------


def _check_table(table: StepTable, derived: StepTable,
                 emit: _EmitFn) -> None:
    """P4404: every table row must match the AST-derived control data."""
    for spec in table:
        expected = derived.get(*spec.key)
        if expected is None:
            emit("P4404", f"{spec.role}.{spec.state}",
                 f"step-table row {spec.describe()} has no AST counterpart")
            continue
        if spec == expected:
            continue
        fields = [name for name in ("msg", "kind", "rewind_to",
                                    "forward_to", "fused_reply", "reply_to")
                  if getattr(spec, name) != getattr(expected, name)]
        emit("P4404", f"{spec.role}.{spec.state}",
             f"step-table row disagrees with the AST on "
             f"{', '.join(fields)}: table says {spec.describe()}, AST "
             f"derives {expected.describe()}",
             hint="the certificate only covers the table the refinement "
                  "derived; rebuild it with build_step_table")
    for spec in derived:
        if table.get(*spec.key) is None:
            emit("P4404", f"{spec.role}.{spec.state}",
                 f"step table is missing the row for {spec.describe()}")


def _check_reply_exits(refined: RefinedProtocol, table: StepTable,
                       emit: _EmitFn) -> None:
    """P4403 (static): a promised fused reply must have a consuming input."""
    for spec in table:
        if spec.fused_reply is None or spec.kind != KIND_REQUEST:
            continue
        process = (refined.protocol.home if spec.role == HOME_ROLE
                   else refined.protocol.remote)
        mid = spec.reply_to
        if mid is None or mid not in process.states:
            emit("P4403", f"{spec.role}.{spec.state}",
                 f"fused request {spec.msg!r} promises reply "
                 f"{spec.fused_reply!r} in unknown state {mid!r}")
            continue
        if not any(g.msg == spec.fused_reply
                   for g in process.state(mid).inputs):
            emit("P4403", f"{spec.role}.{mid}",
                 f"fused request {spec.msg!r} is acknowledged by reply "
                 f"{spec.fused_reply!r}, but state {mid!r} has no input "
                 "guard consuming it — the requester can never be released",
                 hint="an elided ack must be replaced by a consumable "
                      "reply; un-fuse the pair or add the reply input")


def _fused_response_depths(refined: RefinedProtocol) -> dict[str, int]:
    """Allowed rendezvous hops, keyed by home-initiated fused reply msg.

    The responder's C3 fused response consumes the request, runs its
    internal tau chain and emits the reply in one asynchronous step, so
    the obligation maps to ``2 + len(tau chain)`` rendezvous steps.
    (A *remote*-initiated pair never compresses: the home completes the
    request rendezvous on consuming it from the buffer, one hop, and its
    later reply emission is the second hop — so its reply stays at the
    default allowance of 1.)
    """
    depths: dict[str, int] = {}
    remote = refined.protocol.remote
    for msg in refined.plan.home_fused_requests:
        worst = 0
        for state in remote.states.values():
            for guard in state.guards:
                if not isinstance(guard, Input) or guard.msg != msg:
                    continue
                hops = 0
                cursor = remote.state(guard.to)
                while (cursor.is_internal and len(cursor.guards) == 1
                       and hops <= len(remote.states)):
                    hops += 1
                    cursor = remote.state(cursor.taus[0].to)
                worst = max(worst, hops)
        depths[refined.plan.reply_of[msg]] = 2 + worst
    return depths
