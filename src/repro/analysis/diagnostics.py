"""Structured diagnostics for the protocol static-analysis subsystem.

Every finding the analysis passes produce is a :class:`Diagnostic`: a
stable code (``P2401``, ``P3302``, ...), a severity, a location
(``process.state`` or just ``process``), a human-readable message and an
optional fix hint.  Codes are registered once in :data:`CODES` together
with the paper section that motivates the check, so renderers, the CLI's
``--select`` filter and the documentation catalogue all share one source
of truth.

Severity semantics follow the refinement theorem:

* :data:`Severity.ERROR` — the protocol is outside the class the paper's
  soundness proof covers; :func:`repro.refine.engine.refine` refuses it.
* :data:`Severity.WARNING` — refinable, but almost certainly a spec bug
  (dead guard, unreachable state) or a performance hazard (undersized
  home buffer).
* :data:`Severity.INFO` — a report, not a complaint: which request/reply
  pairs fused and why the others did not, when nacks become impossible.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = [
    "CODES",
    "AnalysisReport",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "expand_codes",
    "make",
    "render_json",
    "render_text",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst finding."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    section: str  # paper section motivating the check, e.g. "2.4"
    default_severity: Severity


def _registry(*entries: CodeInfo) -> dict[str, CodeInfo]:
    table: dict[str, CodeInfo] = {}
    for entry in entries:
        if entry.code in table:
            raise ValueError(f"duplicate diagnostic code {entry.code!r}")
        table[entry.code] = entry
    return table


#: Every diagnostic code the analysis suite can emit.  ``P24xx`` are the
#: section 2.4 syntactic restrictions (errors: refinement is refused),
#: ``P25xx`` structural liveness/reachability findings, ``P32xx`` the
#: section 3.2/6 buffer-demand analysis, ``P33xx`` the section 3.3
#: request/reply fusability report, ``P34xx`` transient-state sanity on
#: refined machines, ``P44xx`` the simulation certificate, ``P45xx`` the
#: flow-derived parameterized (arbitrary-N) deadlock-freedom analysis.
CODES: dict[str, CodeInfo] = _registry(
    # -- section 2.4 syntactic restrictions (refinement preconditions) ------
    CodeInfo("P2401", "terminal state", "2.4", Severity.ERROR),
    CodeInfo("P2402", "home output lacks a remote target", "2.4",
             Severity.ERROR),
    CodeInfo("P2403", "home input lacks a sender pattern", "2.4",
             Severity.ERROR),
    CodeInfo("P2404", "remote output names a peer", "2.4", Severity.ERROR),
    CodeInfo("P2405", "remote input names a peer", "2.4", Severity.ERROR),
    CodeInfo("P2406", "remote output non-determinism", "2.4", Severity.ERROR),
    CodeInfo("P2407", "remote active state mixes guards", "2.4",
             Severity.ERROR),
    CodeInfo("P2408", "home communication state carries taus", "2.4",
             Severity.ERROR),
    CodeInfo("P2409", "internal-state cycle", "2.4", Severity.ERROR),
    CodeInfo("P2410", "ambiguous input guards", "2.4", Severity.WARNING),
    # -- reachability / dead code (progress prerequisites) ------------------
    CodeInfo("P2501", "unreachable state", "2.5", Severity.WARNING),
    CodeInfo("P2502", "dead guard", "2.5", Severity.WARNING),
    # -- home buffer demand (sections 3.2 and 6) ----------------------------
    CodeInfo("P3201", "home buffer below static demand bound", "3.2",
             Severity.WARNING),
    CodeInfo("P3202", "home buffer covers worst-case demand", "6",
             Severity.INFO),
    CodeInfo("P3203", "unbounded fire-and-forget demand", "6",
             Severity.WARNING),
    # -- request/reply fusability report (section 3.3) ----------------------
    CodeInfo("P3301", "request/reply pair fusable", "3.3", Severity.INFO),
    CodeInfo("P3302", "request/reply candidate not fusable", "3.3",
             Severity.INFO),
    CodeInfo("P3303", "fusable pair skipped (chained fusion)", "3.3",
             Severity.INFO),
    # -- transient-state sanity on refined machines (Tables 1-2) ------------
    CodeInfo("P3401", "fused transient has no reply exit", "3.3",
             Severity.ERROR),
    CodeInfo("P3402", "fire-and-forget message received by remote", "5",
             Severity.ERROR),
    CodeInfo("P3403", "transient-state inventory", "3", Severity.INFO),
    # -- simulation-certificate obligations (section 4, Equation 1) ---------
    CodeInfo("P4401", "non-commuting transition", "4", Severity.ERROR),
    CodeInfo("P4402", "abstraction undefined outside the fire-and-forget "
                      "carve-out", "4", Severity.ERROR),
    CodeInfo("P4403", "transient state with no abstract preimage", "4",
             Severity.ERROR),
    CodeInfo("P4404", "step-table target mismatch against the AST", "3",
             Severity.ERROR),
    CodeInfo("P4405", "certificate inventory", "4", Severity.INFO),
    CodeInfo("P4406", "certificate incomplete (budget exhausted)", "4",
             Severity.WARNING),
    # -- parameterized (arbitrary-N) flow analysis --------------------------
    CodeInfo("P4501", "incomplete flow cover", "flows", Severity.WARNING),
    CodeInfo("P4502", "flow waits-for cycle (two-flow witness)", "flows",
             Severity.WARNING),
    CodeInfo("P4503", "unbounded-buffer obligation", "flows", Severity.WARNING),
    CodeInfo("P4504", "flow invariant not inductive on the witness instance",
             "flows", Severity.WARNING),
    CodeInfo("P4505", "parameterized deadlock freedom discharged", "flows",
             Severity.INFO),
    CodeInfo("P4506", "flow inventory", "flows", Severity.INFO),
    CodeInfo("P4507", "parameterized check inconclusive", "flows",
             Severity.WARNING),
    CodeInfo("P4508", "conflicting flows share home states", "flows",
             Severity.WARNING),
    # -- parameterized coherence (environment abstraction) -------------------
    CodeInfo("P4601", "parameterized coherence discharged", "coherence",
             Severity.INFO),
    CodeInfo("P4602", "coherence refuted (two-concrete-node witness)",
             "coherence", Severity.WARNING),
    CodeInfo("P4603", "parameterized coherence inconclusive", "coherence",
             Severity.WARNING),
    CodeInfo("P4604", "noninterference lemma inventory", "coherence",
             Severity.INFO),
    CodeInfo("P4605", "environment abstraction unsound for this construct",
             "coherence", Severity.WARNING),
)


def expand_codes(tokens: Iterable[str]) -> frozenset[str]:
    """Expand exact codes and code-family prefixes to registered codes.

    Each token is either a code registered in :data:`CODES` (``"P3301"``)
    or a prefix matching at least one registered code (``"P33"``, ``"P4"``)
    — the CLI's ``--select P45`` / ``--ignore P33`` syntax.  Raises
    :class:`KeyError` for tokens matching nothing, so typos fail loudly.
    """
    expanded: set[str] = set()
    unknown: list[str] = []
    for token in tokens:
        if token in CODES:
            expanded.add(token)
            continue
        family = [code for code in CODES if code.startswith(token)]
        if token and family:
            expanded.update(family)
        else:
            unknown.append(token)
    if unknown:
        raise KeyError(
            "unknown diagnostic code(s) or prefix(es): "
            f"{', '.join(sorted(unknown))}")
    return frozenset(expanded)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    ``location`` is ``"process.state"`` for state-level findings or just
    ``"process"`` / ``"protocol"`` for whole-machine findings; ``hint``
    (optional) suggests a fix.  ``legacy_text`` reproduces the exact
    pre-diagnostics message of :mod:`repro.csp.validate` so the back-compat
    wrappers stay byte-identical; it defaults to ``location: message``.
    """

    code: str
    severity: Severity
    location: str
    message: str
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def info(self) -> CodeInfo:
        return CODES[self.code]

    @property
    def legacy_text(self) -> str:
        """The ``location: message`` form used by the string-based API."""
        return f"{self.location}: {self.message}"

    def render(self) -> str:
        hint = f"\n        hint: {self.hint}" if self.hint else ""
        return (f"{self.code} {self.severity.label:<7} {self.location}: "
                f"{self.message}{hint}")

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
            "title": self.info.title,
            "section": self.info.section,
        }


def make(code: str, location: str, message: str,
         hint: Optional[str] = None,
         severity: Optional[Severity] = None) -> Diagnostic:
    """Build a diagnostic using the code's registered default severity."""
    if code not in CODES:
        raise ValueError(f"unregistered diagnostic code {code!r}")
    return Diagnostic(code=code,
                      severity=severity or CODES[code].default_severity,
                      location=location, message=message, hint=hint)


# ---------------------------------------------------------------------------
# reports and renderers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisReport:
    """The result of running the pass suite over one protocol."""

    subject: str  # protocol (or refined-protocol) name
    diagnostics: tuple[Diagnostic, ...] = ()
    passes_run: tuple[str, ...] = field(default=())

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.at(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.at(Severity.INFO)

    def at(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """No error-severity findings (the refinement engine's gate)."""
        return not self.errors

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def select(self, codes: Iterable[str]) -> "AnalysisReport":
        """A report restricted to the given codes or code-family prefixes
        (``"P3301"`` or ``"P33"``; see :func:`expand_codes`)."""
        wanted = expand_codes(codes)
        return AnalysisReport(
            subject=self.subject,
            diagnostics=tuple(d for d in self.diagnostics
                              if d.code in wanted),
            passes_run=self.passes_run)

    def ignore(self, codes: Iterable[str]) -> "AnalysisReport":
        """A report with the given codes (or code-family prefixes) removed
        (``select``'s complement; the CLI's ``--ignore``)."""
        dropped = expand_codes(codes)
        return AnalysisReport(
            subject=self.subject,
            diagnostics=tuple(d for d in self.diagnostics
                              if d.code not in dropped),
            passes_run=self.passes_run)

    def render_text(self) -> str:
        return render_text(self)

    def render_json(self) -> str:
        return render_json(self)


def render_text(report: AnalysisReport) -> str:
    """Human-oriented multi-line rendering, worst findings first."""
    lines = [f"lint report for {report.subject}: "
             f"{len(report.errors)} error(s), "
             f"{len(report.warnings)} warning(s), "
             f"{len(report.infos)} note(s)"]
    ordered = sorted(report.diagnostics,
                     key=lambda d: (-int(d.severity), d.code, d.location))
    lines += ["  " + d.render() for d in ordered]
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Stable machine-readable rendering (one JSON object)."""
    payload = {
        "subject": report.subject,
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "infos": len(report.infos),
        },
        "passes": list(report.passes_run),
        "diagnostics": [d.as_dict() for d in report.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
