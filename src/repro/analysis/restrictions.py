"""Section 2.4 syntactic-restriction checks as structured diagnostics.

This is the diagnostics-engine home of the checks that used to live as
flat strings in :mod:`repro.csp.validate` (that module is now a thin
back-compat wrapper over this pass).  The refinement procedure is only
defined — and only proven sound — for protocols obeying these rules:

* **Star topology** — remote guards never name a peer, home guards
  address remotes through sender patterns / targets (P2402-P2405).
* **Remote node restrictions** — a remote communication state is either
  a single active output or a passive input(+tau) state; "we restrict
  the remote nodes to contain only input non-determinism"
  (P2406, P2407).
* **Home node generality** — generalized input/output guards, but no
  taus in communication states (P2408).
* **Eventual exit from internal states** — no terminal states (P2401)
  and no cycles through internal states only (P2409); the latter is
  also the section 2.5 forward-progress prerequisite.

Message strings are kept *byte-identical* to the historical
``collect_violations`` output: tooling and tests built on the string API
must not observe this refactoring.
"""

from __future__ import annotations

from typing import Iterator

from ..csp.ast import Input, Output, ProcessDef, ProcessKind, Protocol, StateDef
from .diagnostics import Diagnostic, make

__all__ = ["restriction_pass", "process_restrictions"]


def restriction_pass(protocol: Protocol) -> Iterator[Diagnostic]:
    """All section 2.4 violations in ``protocol``, home first."""
    yield from process_restrictions(protocol.home)
    yield from process_restrictions(protocol.remote)


def process_restrictions(process: ProcessDef) -> Iterator[Diagnostic]:
    """Section 2.4 violations of a single process, in traversal order."""
    for state in process.states.values():
        where = f"{process.name}.{state.name}"
        if state.is_terminal:
            yield make(
                "P2401", where,
                "terminal state (no guards); processes must always "
                "eventually offer a rendezvous",
                hint="add a guard or delete the state")
            continue
        yield from _addressing(process, state, where)
        if process.kind == ProcessKind.REMOTE:
            yield from _remote_shape(state, where)
        else:
            yield from _home_shape(state, where)
    yield from _internal_cycles(process)


def _addressing(process: ProcessDef, state: StateDef,
                where: str) -> Iterator[Diagnostic]:
    for guard in state.guards:
        if process.kind == ProcessKind.HOME:
            if isinstance(guard, Output) and guard.target is None:
                yield make(
                    "P2402", where,
                    f"home output {guard.describe()} lacks a remote target",
                    hint="pass target=VarTarget(...)/ConstTarget(...)")
            if isinstance(guard, Input) and guard.sender is None:
                yield make(
                    "P2403", where,
                    f"home input {guard.describe()} lacks a sender pattern",
                    hint="pass sender=AnySender()/VarSender(...)")
        else:
            if isinstance(guard, Output) and guard.target is not None:
                yield make(
                    "P2404", where,
                    "remote output names a peer; star topology forbids "
                    "remote-to-remote messages",
                    hint="drop the target; remote outputs go to home")
            if isinstance(guard, Input) and guard.sender is not None:
                yield make(
                    "P2405", where,
                    "remote input names a peer; star topology forbids "
                    "remote-to-remote messages",
                    hint="drop the sender pattern; remote inputs come "
                         "from home")


def _remote_shape(state: StateDef, where: str) -> Iterator[Diagnostic]:
    """Paper 2.4: remote states are single-active-output or passive."""
    n_out = len(state.outputs)
    if n_out > 1:
        yield make(
            "P2406", where,
            f"remote state offers {n_out} output guards; a remote "
            "may be the active participant of only a single rendezvous",
            hint="split the choice into a tau-guarded internal state "
                 "per output")
    if n_out == 1 and (state.inputs or state.taus):
        yield make(
            "P2407", where,
            "remote active state mixes its output with "
            "input/tau guards; output non-determinism is not allowed "
            "in remote nodes",
            hint="move the output behind a dedicated active state")


def _home_shape(state: StateDef, where: str) -> Iterator[Diagnostic]:
    if state.is_communication and state.taus:
        yield make(
            "P2408", where,
            "home communication state carries tau guards; home "
            "autonomous work belongs in internal states",
            hint="route the tau through a tau-only internal state")


def _internal_cycles(process: ProcessDef) -> Iterator[Diagnostic]:
    """Cycles through internal states only (could spin forever): P2409.

    Depth-first search over the subgraph induced by internal states: if a
    cycle exists there, the process can stay in internal states forever,
    violating the paper's eventual-communication assumption.
    """
    internal = {s.name for s in process.states.values() if s.is_internal}
    succ = {
        name: [g.to for g in process.states[name].guards if g.to in internal]
        for name in internal
    }
    WHITE, GREY, BLACK = 0, 1, 2
    colour = dict.fromkeys(internal, WHITE)
    found: list[Diagnostic] = []

    def visit(node: str, stack: list[str]) -> None:
        colour[node] = GREY
        stack.append(node)
        for nxt in succ[node]:
            if colour[nxt] == GREY:
                cycle = stack[stack.index(nxt):] + [nxt]
                found.append(make(
                    "P2409", process.name,
                    f"internal-state cycle {' -> '.join(cycle)}; the "
                    "process could avoid communication forever",
                    hint="make at least one state on the cycle offer a "
                         "rendezvous"))
            elif colour[nxt] == WHITE:
                visit(nxt, stack)
        stack.pop()
        colour[node] = BLACK

    # declaration order, so the reported cycle entry point is deterministic
    for node in process.states:
        if node in internal and colour[node] == WHITE:
            visit(node, [])
    yield from found
