"""SARIF 2.1.0 export of analysis reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning services ingest; exporting the
P-code diagnostics lets CI annotate pull requests with lint findings
(``repro lint all --format sarif`` uploaded via
``github/codeql-action/upload-sarif``).

The mapping is deliberately small: one *run* for the whole invocation,
one *rule* per distinct diagnostic code (title and section from the
:data:`~repro.analysis.diagnostics.CODES` registry), one *result* per
diagnostic.  Protocol diagnostics have no file/line anchor, so each
result carries a *logical location* — the ``subject:pass`` style
location string the text renderer prints.
"""

from __future__ import annotations

import json
from typing import Iterable

from .. import __version__
from .diagnostics import CODES, AnalysisReport, Severity

__all__ = ["render_sarif"]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: :class:`Severity` → SARIF ``level``.
_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render_sarif(reports: Iterable[AnalysisReport], *,
                 tool_name: str = "repro-lint") -> str:
    """Render one or more analysis reports as a SARIF 2.1.0 document."""
    reports = list(reports)
    codes = sorted({d.code for report in reports
                    for d in report.diagnostics})
    rule_index = {code: i for i, code in enumerate(codes)}

    rules = []
    for code in codes:
        info = CODES.get(code)
        rule = {
            "id": code,
            "name": code,
            "shortDescription": {
                "text": info.title if info else code},
            "defaultConfiguration": {
                "level": _LEVELS[info.default_severity]
                if info else "warning"},
        }
        if info:
            rule["properties"] = {"section": info.section}
        rules.append(rule)

    results = []
    for report in reports:
        for d in report.diagnostics:
            text = d.message
            if d.hint:
                text += f" (hint: {d.hint})"
            results.append({
                "ruleId": d.code,
                "ruleIndex": rule_index[d.code],
                "level": _LEVELS[d.severity],
                "message": {"text": text},
                "locations": [{
                    "logicalLocations": [{
                        "fullyQualifiedName": d.location,
                    }],
                }],
                "properties": {"subject": report.subject},
            })

    doc = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": __version__,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)
