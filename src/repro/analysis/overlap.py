"""Guard-overlap (input ambiguity) detection on home communication states.

**P2410** — two input guards of the same home state accept the same
message type from sender patterns that can match the same remote.  At the
rendezvous level this is genuine nondeterminism; after refinement the
home's deterministic buffer scan silently resolves it in favour of
whichever guard the implementation checks first, so the two levels can
diverge in behaviour the author never sees.  The paper's own protocols
never overlap: each home state keys its inputs on distinct message types
or provably disjoint sender patterns.

The overlap test is conservative on the *pattern* level (it never
evaluates ``cond`` callables, which could disambiguate dynamically —
hence a warning, not an error):

* :class:`~repro.csp.ast.AnySender` overlaps every pattern;
* two :class:`~repro.csp.ast.VarSender`/:class:`~repro.csp.ast.SetSender`
  patterns overlap when they read the *same variable* (same remote, or
  intersecting sets are possible);
* :class:`~repro.csp.ast.PredSender` is opaque, treated as overlapping
  everything (it can accept anyone);
* a ``VarSender`` against a ``SetSender`` of a *different* variable (or
  two different-variable patterns generally) may still collide at run
  time, but flagging that would drown real findings in noise for the
  common owner/sharers split, so it is deliberately not reported.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from ..csp.ast import (
    AnySender,
    Input,
    PredSender,
    Protocol,
    SenderPat,
    SetSender,
    VarSender,
)
from .diagnostics import Diagnostic, make

__all__ = ["overlap_pass", "patterns_may_overlap"]


def overlap_pass(protocol: Protocol) -> Iterator[Diagnostic]:
    home = protocol.home
    for state in home.states.values():
        inputs = [g for g in state.guards if isinstance(g, Input)]
        for first, second in combinations(inputs, 2):
            if first.msg != second.msg:
                continue
            if patterns_may_overlap(first.sender, second.sender):
                yield make(
                    "P2410", f"{home.name}.{state.name}",
                    f"two input guards accept {first.msg!r} from "
                    f"overlapping senders ({_pat(first.sender)} vs "
                    f"{_pat(second.sender)}); the refinement resolves "
                    "this nondeterminism silently",
                    hint="key the guards on disjoint sender patterns or "
                         "distinct message types")


def patterns_may_overlap(a: "SenderPat | None",
                         b: "SenderPat | None") -> bool:
    """Can the two home sender patterns accept the same remote?"""
    if a is None or b is None:  # malformed home guard; P2403 covers it
        return False
    if isinstance(a, (AnySender, PredSender)) or \
            isinstance(b, (AnySender, PredSender)):
        return True
    if isinstance(a, VarSender) and isinstance(b, VarSender):
        return a.var == b.var
    if isinstance(a, SetSender) and isinstance(b, SetSender):
        return a.var == b.var
    return False


def _pat(pattern: "SenderPat | None") -> str:
    return pattern.describe() if pattern is not None else "<missing>"
