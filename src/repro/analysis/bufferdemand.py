"""Static home-buffer-demand bound (paper sections 3.2 and 6).

The refined home node owns a ``k >= 2`` slot buffer; requests that find
it full are nacked and retried (Table 2 rows T4-T6).  How much buffer can
the protocol actually *demand*?  Statically bounded, per the Table 1/2
rules:

* an ordinary (acknowledged) remote request blocks its sender — the
  remote sits in a transient state until ack/nack — so each remote
  contributes at most **one** outstanding request at a time;
* a *fire-and-forget* message (the section 5 hand-design extension) does
  not block: the sender moves on immediately and may issue further sends
  while the note still occupies a home buffer slot (notes cannot be
  nacked).  Per remote, the worst case is the longest chain of
  fire-and-forget outputs the remote can emit back to back, plus the one
  blocking request that ends the chain;
* if the remote can emit fire-and-forget messages around a cycle with no
  blocking output in between, the demand is **unbounded** (P3203).

With ``demand(remote)`` the per-remote bound, the home-side bound for
``n`` remotes is ``n * demand``.  The pass reports:

* **P3201 (warning)** — the configured ``k`` is below the bound: the
  protocol is still correct (that is what nacks are for) but requests
  will be nacked and retried under load.
* **P3202 (info)** — ``k`` is at or above the bound, so every
  simultaneously-outstanding request fits: nacks become impossible.
  This is the section 6 observation that sizing the shared pool at one
  slot per remote turns the retry machinery off.
* **P3203 (warning)** — unbounded fire-and-forget demand (a cycle of
  unacknowledged sends); no finite ``k`` suffices.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..csp.ast import Output, ProcessDef, Protocol
from .diagnostics import Diagnostic, make

__all__ = ["buffer_demand_pass", "remote_demand", "home_buffer_bound"]


def remote_demand(remote: ProcessDef,
                  fire_and_forget: frozenset[str]) -> Optional[int]:
    """Max simultaneously-outstanding un-acked sends of one remote.

    Returns ``None`` when unbounded (fire-and-forget cycle).  Computed as
    the maximum weight of any path in the remote's state graph where a
    fire-and-forget output edge weighs 1 and every other edge weighs 0;
    a blocking (acknowledged) output adds 1 and *terminates* the chain
    (the remote then waits for its ack, clearing all bookkeeping before
    it can send again).
    """
    blocking = any(
        isinstance(g, Output) and g.msg not in fire_and_forget
        for s in remote.states.values() for g in s.guards)
    if not fire_and_forget:
        return 1 if blocking else 0

    # Graph of *non-blocking* transitions (a blocking send ends the chain
    # instead and scores its +1 via ``bonus``): fire-and-forget outputs
    # weigh 1, inputs/taus weigh 0.
    edges: dict[str, list[tuple[str, int]]] = {s: [] for s in remote.states}
    bonus: dict[str, int] = dict.fromkeys(remote.states, 0)
    for name, state in remote.states.items():
        for guard in state.guards:
            if isinstance(guard, Output) and guard.msg not in fire_and_forget:
                bonus[name] = 1
            else:
                weight = 1 if isinstance(guard, Output) else 0
                edges[name].append((guard.to, weight))

    component = _tarjan_components(list(remote.states), edges)
    for src, out_edges in edges.items():
        for dst, weight in out_edges:
            if weight and component[src] == component[dst]:
                return None  # fire-and-forget cycle: unbounded demand

    # Longest path over the SCC condensation.  Components are numbered in
    # reverse topological order (successors first), so a single forward
    # scan sees every successor's score before its predecessors.
    n_comps = 1 + max(component.values())
    score = [0] * n_comps
    for comp in range(n_comps):
        members = [s for s, c in component.items() if c == comp]
        best = max(bonus[s] for s in members)
        for src in members:
            for dst, weight in edges[src]:
                if component[dst] != comp:
                    best = max(best, weight + score[component[dst]])
        score[comp] = best
    return max(score)


def _tarjan_components(nodes: list[str],
                       edges: dict[str, list[tuple[str, int]]],
                       ) -> dict[str, int]:
    """Tarjan SCCs; components are numbered in reverse topological order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = 0

    def strongconnect(node: str) -> None:
        nonlocal counter
        index[node] = low[node] = len(index)
        stack.append(node)
        on_stack.add(node)
        for succ, _ in edges[node]:
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component[member] = counter
                if member == node:
                    break
            counter += 1

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return component


def home_buffer_bound(protocol: Protocol, nodes: int,
                      fire_and_forget: frozenset[str] = frozenset(),
                      ) -> Optional[int]:
    """Static bound on simultaneously buffered remote requests at home."""
    per_remote = remote_demand(protocol.remote, fire_and_forget)
    if per_remote is None:
        return None
    return nodes * per_remote


def buffer_demand_pass(protocol: Protocol, *, capacity: int, nodes: int,
                       fire_and_forget: frozenset[str] = frozenset(),
                       ) -> Iterator[Diagnostic]:
    where = f"{protocol.name}:home-buffer"
    bound = home_buffer_bound(protocol, nodes, fire_and_forget)
    if bound is None:
        yield make(
            "P3203", where,
            "fire-and-forget demand is unbounded: the remote can emit "
            f"unacknowledged messages ({', '.join(sorted(fire_and_forget))}) "
            "around a cycle with no blocking request in between; no finite "
            "home buffer suffices",
            hint="acknowledge at least one message on the cycle")
        return
    if capacity < bound:
        yield make(
            "P3201", where,
            f"configured k={capacity} is below the static demand bound "
            f"{bound} for n={nodes} remotes; requests will be nacked and "
            "retried under load (correct but slower)",
            hint=f"raise home_buffer_capacity to {bound} to make nacks "
                 "impossible (section 6)")
    else:
        yield make(
            "P3202", where,
            f"k={capacity} covers the worst-case demand bound {bound} for "
            f"n={nodes} remotes: every outstanding request fits, so nacks "
            "are impossible (section 6)")
