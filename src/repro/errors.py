"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A protocol specification is malformed (dangling state, bad guard...)."""


class ValidationError(SpecError):
    """A specification violates the paper's syntactic restrictions.

    The refinement procedure of the paper is only sound for protocols in
    star topology whose remote nodes use restricted guard shapes
    (paper section 2.4).  :mod:`repro.csp.validate` raises this error when a
    protocol falls outside that class.

    ``diagnostics`` carries the structured
    :class:`~repro.analysis.diagnostics.Diagnostic` records behind the
    message when the error was produced by the analysis suite (the
    refinement engine's gate); it is an empty tuple for errors raised
    from the plain string-based validators.
    """

    def __init__(self, message: str,
                 diagnostics: tuple[object, ...] = ()) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class SemanticsError(ReproError):
    """An execution-time inconsistency in the transition semantics.

    Raised for situations the paper's rules make unreachable (e.g. a remote
    node's single-slot buffer overflowing).  Seeing this exception means a
    bug in either the protocol or the library, never a legal protocol state.
    """


class RefinementError(ReproError):
    """The refinement engine cannot translate a (validated) protocol."""


class CertificateError(RefinementError):
    """The refined protocol failed its simulation certificate.

    Raised by :func:`repro.refine.engine.refine` when the post-plan
    analysis passes (transient-state sanity, the P44xx simulation
    certificate of :mod:`repro.analysis.simulation`) report an
    error-severity finding: some transition schema instance does not
    commute with the section 4 abstraction function, so the asynchronous
    protocol would not be a sound refinement of the rendezvous source.
    ``diagnostics`` carries the structured
    :class:`~repro.analysis.diagnostics.Diagnostic` records.
    """

    def __init__(self, message: str,
                 diagnostics: tuple[object, ...] = ()) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class CheckError(ReproError):
    """A model-checking run failed to produce a verdict (budget exceeded...)."""


class BudgetExceeded(CheckError):
    """State or memory budget exhausted before the search finished.

    Mirrors the paper's "Unfinished" entries in Table 3, where SPIN ran out
    of its 64 MB allotment.  Carries the partial statistics so benchmark
    harnesses can still report how far the search got.
    """

    def __init__(self, message: str, stats: object | None = None) -> None:
        super().__init__(message)
        self.stats = stats


class PropertyViolation(CheckError):
    """A checked property (invariant, deadlock-freedom, progress) failed.

    ``witness`` carries a counterexample trace when the checker can build
    one: a list of ``(state, action)`` pairs from the initial state.
    """

    def __init__(self, message: str, witness: object | None = None) -> None:
        super().__init__(message)
        self.witness = witness


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent configuration."""
