"""Protocol-specialized compiled step engine (ROADMAP item 1).

:class:`~repro.semantics.asynchronous.AsyncSystem` interprets the guard
AST on every expansion: each ``steps()`` call re-fetches ``StateDef``
tuples, re-dispatches on sender patterns and transition-spec kinds, and
rebuilds frozen dataclasses through their (slow) generated ``__init__``.
All of that structure is *per-protocol constant*.  This module compiles
it away: from the shared :class:`~repro.refine.transitions.StepTable`
plus the protocol AST it generates one specialized successor function
per ``(role, state)`` — guard tests, payload slots, env-variable
indices and control targets (rewind/forward/fused-reply) baked in as
literals — and ``compile()``/``exec``-s the result into a module cached
on disk keyed by a structural protocol fingerprint.

Codegen invariants (the contract with the interpreter, which stays the
differential oracle — see ``tests/property/test_reduction_matrix.py``):

* **Byte-identical successor lists.**  The generated ``steps``/
  ``successors`` mirror ``AsyncSystem.steps`` branch for branch,
  including successor *order* — truncated-budget runs must agree.
* **Structure-only source.**  The emitted module contains no user
  callables; payload/cond/update/predicate lambdas are enumerated in a
  deterministic walk and injected through the ``funcs`` tuple at
  ``make_steps`` time.  Two structurally identical protocols with
  different lambdas therefore share source but never share closures.
* **Table-driven, not AST-derived.**  Control targets come from the
  (possibly mutated) :class:`StepTable` handed to :func:`compile_system`
  — a ``StepTable.mutate`` mutant compiles to a *different* module (the
  fingerprint covers every spec row) exhibiting the same faulty
  behaviour the interpreter does.
* **Fast constructors never copy instance dicts.**  States are built
  via ``__new__`` plus a fresh attribute dict, so the memo caches
  (``_hash_cache``/``_key_cache``) of an existing node can never leak
  into a modified copy.
* **Payloads are effect-free and hashable.**  The compiled engine may
  evaluate a payload expression zero times where the interpreter's
  value is observably unused (the lean ``successors`` path), and skips
  ``Env``'s eager per-value hashability validation on rebound
  variables; both are unobservable for the pure, hashable payloads the
  spec layer requires.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from ..csp.ast import (
    AnySender,
    ConstTarget,
    ExprTarget,
    Input,
    Output,
    PredSender,
    SetSender,
    StateDef,
    Tau,
    VarSender,
    VarTarget,
)
from .plan import RefinedProtocol
from .transitions import (
    HOME,
    KIND_NOTE,
    KIND_REPLY,
    REMOTE,
    StepTable,
    TransitionSpec,
)

__all__ = [
    "CODEGEN_VERSION",
    "CompiledEngine",
    "compile_system",
    "generate_source",
    "protocol_fingerprint",
]

#: Bumped whenever the emitted code changes shape; part of the cache key.
CODEGEN_VERSION = 2


def _generator_digest() -> str:
    """Digest of this very module's source, folded into every fingerprint.

    CODEGEN_VERSION is the human-readable part of the key, but relying on
    a hand-bumped counter alone is a trap: an edit to the generator that
    forgets the bump would keep serving stale modules from the disk
    cache.  Hashing the generator source makes cache invalidation
    automatic.
    """
    try:
        blob = Path(__file__).read_bytes()
    except OSError:  # frozen/zipped distributions: fall back to version
        return f"v{CODEGEN_VERSION}"
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


_GENERATOR_DIGEST = _generator_digest()


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------


def _sender_desc(pat: Any) -> tuple:
    if pat is None or isinstance(pat, AnySender):
        return ("any",)
    if isinstance(pat, VarSender):
        return ("var", pat.var)
    if isinstance(pat, SetSender):
        return ("set", pat.var)
    return ("pred", getattr(pat, "name", "pred"))


def _target_desc(tgt: Any) -> tuple:
    if tgt is None:
        return ("none",)
    if isinstance(tgt, VarTarget):
        return ("var", tgt.var)
    if isinstance(tgt, ConstTarget):
        return ("const", tgt.remote)
    return ("expr", getattr(tgt, "name", "expr"))


def _guard_desc(g: Any) -> tuple:
    if isinstance(g, Output):
        return ("out", g.msg, g.to, _target_desc(g.target),
                g.payload is not None, g.update is not None,
                g.cond is not None)
    if isinstance(g, Input):
        return ("in", g.msg, g.to, _sender_desc(g.sender), g.bind_sender,
                g.bind_value, g.cond is not None, g.update is not None)
    return ("tau", g.label, g.to, g.cond is not None, g.update is not None)


def _structure(refined: RefinedProtocol, table: StepTable) -> tuple:
    proto = refined.protocol
    cfg = refined.plan.config

    def proc_desc(p: Any) -> tuple:
        return (p.name, p.initial_state,
                tuple(k for k, _ in p.initial_env.canonical_key()),
                tuple((name, tuple(_guard_desc(g) for g in p.states[name].guards))
                      for name in sorted(p.states)))

    return (
        "repro.compiled", CODEGEN_VERSION, _GENERATOR_DIGEST, proto.name,
        proc_desc(proto.home), proc_desc(proto.remote),
        (cfg.home_buffer_capacity, cfg.use_reqreply,
         cfg.strict_reqreply_cycles, cfg.reserve_progress_buffer,
         cfg.reserve_ack_buffer, tuple(sorted(cfg.fire_and_forget))),
        tuple((s.role, s.state, s.out_index, s.msg, s.kind, s.rewind_to,
               s.forward_to, s.fused_reply, s.reply_to)
              for s in table.specs),
    )


def protocol_fingerprint(refined: RefinedProtocol, table: StepTable) -> str:
    """Structural cache key: AST shapes + table rows + plan + codegen
    version.  User callables are deliberately excluded — they are
    injected at load time, never baked into the source."""
    blob = repr(_structure(refined, table)).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------


def _fesc(s: str) -> str:
    """Escape a literal for interpolation into an emitted f-string."""
    return s.replace("{", "{{").replace("}", "}}")


_PRELUDE = '''\
from repro.csp.env import Env
from repro.errors import SemanticsError, SpecError
from repro.semantics.asynchronous import (
    AsyncState, BufEntry, DeliverToHome, DeliverToRemote, HomeNode,
    HomeStep, HomeTau, RemoteC3, RemoteNode, RemoteSend, RemoteTau, Step)
from repro.semantics.network import Channels, Msg
from repro.semantics.rendezvous import RendezvousStep


def make_steps(n_remotes, funcs):
'''

# Fast constructors: ``__new__`` plus a *fresh* attribute dict.  Never
# copy an existing instance's ``__dict__`` — it may hold memoized
# ``_hash_cache``/``_key_cache`` entries that would poison the copy.
#
# Node-level values (environments, messages, buffer entries, home and
# remote nodes) are *interned* per engine: their configuration spaces are
# tiny compared to the state space, and handing the visited store one
# canonical object per value means (a) its memoized hash is computed once
# ever and (b) equality checks on duplicate successor states
# short-circuit on object identity inside the tuple comparisons.  States
# and channels are interned through *bounded* tables (cleared when they
# grow past ``_LIMIT``): their configuration counts scale with the state
# count, and pinning them forever would defeat the fingerprint store's
# memory story on 10^7-state runs.  Clearing is safe — interning is
# purely an optimization, and equal-but-distinct survivors still compare
# by value.
_CTORS = '''\
    _osa = object.__setattr__
    _LIMIT = 1 << 20

    _ENVS = {}

    def _env(it):
        e = _ENVS.get(it)
        if e is None:
            e = Env.__new__(Env)
            _osa(e, "_items", it)
            _osa(e, "_hash", hash(it))
            _ENVS[it] = e
        return e

    _HOMES = {}

    def _home(st, env, mode, oi, aw, po, buf):
        key = (st, env, mode, oi, aw, po, buf)
        h = _HOMES.get(key)
        if h is None:
            h = HomeNode.__new__(HomeNode)
            _osa(h, "__dict__", {
                "state": st, "env": env, "mode": mode, "out_idx": oi,
                "awaiting": aw, "pending_out": po, "buffer": buf})
            if len(_HOMES) > _LIMIT:
                _HOMES.clear()
            _HOMES[key] = h
        return h

    _REMOTES = {}

    def _remote(st, env, mode, po, buf):
        key = (st, env, mode, po, buf)
        r = _REMOTES.get(key)
        if r is None:
            r = RemoteNode.__new__(RemoteNode)
            _osa(r, "__dict__", {"state": st, "env": env, "mode": mode,
                                 "pending_out": po, "buf": buf})
            if len(_REMOTES) > _LIMIT:
                _REMOTES.clear()
            _REMOTES[key] = r
        return r

    _BUFS = {}

    def _buf(s, m, p, nt):
        key = (s, m, p, nt)
        b = _BUFS.get(key)
        if b is None:
            b = BufEntry.__new__(BufEntry)
            _osa(b, "__dict__", {"sender": s, "msg": m, "payload": p,
                                 "note": nt})
            _BUFS[key] = b
        return b

    _MSGS = {}

    def _msg(k, m, p):
        key = (k, m, p)
        g = _MSGS.get(key)
        if g is None:
            g = Msg.__new__(Msg)
            _osa(g, "__dict__", {"kind": k, "msg": m, "payload": p})
            _MSGS[key] = g
        return g

    _CHANS = {}

    def _chan(q):
        c = _CHANS.get(q)
        if c is None:
            c = Channels.__new__(Channels)
            _osa(c, "__dict__", {"queues": q})
            if len(_CHANS) > _LIMIT:
                _CHANS.clear()
            _CHANS[q] = c
        return c

    _STATES = {}

    def _async(h, r, c):
        key = (h, r, c)
        s = _STATES.get(key)
        if s is None:
            s = AsyncState.__new__(AsyncState)
            _osa(s, "__dict__", {"home": h, "remotes": r, "channels": c})
            if len(_STATES) > _LIMIT:
                _STATES.clear()
            _STATES[key] = s
        return s

    def _step(a, s, c, z):
        t = Step.__new__(Step)
        _osa(t, "__dict__", {"action": a, "state": s, "completes": c,
                             "sends": z})
        return t

    def _rvz(a, p, m, pl):
        r = RendezvousStep.__new__(RendezvousStep)
        _osa(r, "__dict__", {"active": a, "passive": p, "msg": m,
                             "payload": pl, "out_index": 0})
        return r

    def _push(ch, c, m):
        q = ch.queues
        return _chan(q[:c] + (q[c] + (m,),) + q[c + 1:])

    def _ke(k):
        raise KeyError(f"variable {k!r} not declared in this Env")

    def _nonnote(b):
        n = 0
        for e in b:
            if not e.note:
                n += 1
        return n

    DEL_H = tuple(DeliverToHome(i) for i in range(n_remotes))
    DEL_R = tuple(DeliverToRemote(i) for i in range(n_remotes))
    R_SEND = tuple(RemoteSend(i) for i in range(n_remotes))
    R_C3 = tuple(RemoteC3(i) for i in range(n_remotes))
    NACK_MSG = Msg("NACK")
    ACK_MSG = Msg("ACK")
    _C1A = {}

    def _c1a(e):
        a = _C1A.get(e)
        if a is None:
            who = "h" if e.sender == "h" else f"r{e.sender}"
            tag = "~" if e.note else ""
            a = HomeStep("C1", f"{tag}{who}:{e.msg}")
            _C1A[e] = a
        return a
'''

# The delivery drivers are protocol-independent; they pop the channel
# head and dispatch to the per-state handlers (mirroring
# ``_deliver_to_home``/``_deliver_to_remote`` including error order).
_DELIVER = '''\
    def _dh(state, queues, home, remotes, i, q):
        c = 2 * i + 1
        ch = _chan(queues[:c] + (q[1:],) + queues[c + 1:])
        msg = q[0]
        kind = msg.kind
        if kind == "REQ":
            return H_REQ[home.state](ch, home, remotes, i, msg)
        if kind == "NOTE":
            nh = _home(home.state, home.env, home.mode, home.out_idx,
                       home.awaiting, home.pending_out,
                       home.buffer + (_buf(i, msg.msg, msg.payload, True),))
            return _step(DEL_H[i], _async(nh, remotes, ch), (), ())
        if home.mode != "trans" or home.awaiting != i:
            raise SemanticsError(
                f"home received {msg.describe()} from r{i} but is not "
                f"awaiting it (state {home.describe()})")
        if home.pending_out is None:
            raise SemanticsError("home has no pending output in TRANS mode")
        return H_T[home.state](ch, home, remotes, i, msg, kind)

    def _dhl(state, queues, home, remotes, i, q):
        c = 2 * i + 1
        ch = _chan(queues[:c] + (q[1:],) + queues[c + 1:])
        msg = q[0]
        kind = msg.kind
        if kind == "REQ":
            return H_REQL[home.state](ch, home, remotes, i, msg)
        if kind == "NOTE":
            nh = _home(home.state, home.env, home.mode, home.out_idx,
                       home.awaiting, home.pending_out,
                       home.buffer + (_buf(i, msg.msg, msg.payload, True),))
            return (DEL_H[i], _async(nh, remotes, ch))
        if home.mode != "trans" or home.awaiting != i:
            raise SemanticsError(
                f"home received {msg.describe()} from r{i} but is not "
                f"awaiting it (state {home.describe()})")
        if home.pending_out is None:
            raise SemanticsError("home has no pending output in TRANS mode")
        return H_TL[home.state](ch, home, remotes, i, msg, kind)

    def _dr(state, queues, home, remotes, i, q):
        c = 2 * i
        ch = _chan(queues[:c] + (q[1:],) + queues[c + 1:])
        msg = q[0]
        kind = msg.kind
        node = remotes[i]
        if kind == "REQ":
            if node.mode == "trans":
                return _step(DEL_R[i], _async(home, remotes, ch), (), ())
            if node.buf is not None:
                raise SemanticsError(
                    f"remote r{i} single-slot buffer overflow "
                    f"({node.describe()} receiving {msg.describe()})")
            nn = _remote(node.state, node.env, node.mode, node.pending_out,
                         _buf("h", msg.msg, msg.payload, False))
            return _step(
                DEL_R[i],
                _async(home, remotes[:i] + (nn,) + remotes[i + 1:], ch),
                (), ())
        if node.mode != "trans":
            raise SemanticsError(
                f"remote r{i} received {msg.describe()} while not transient")
        if node.pending_out is None:
            raise SemanticsError("remote has no pending output in TRANS mode")
        return R_T[node.state](ch, home, remotes, i, msg, kind)

    def _drl(state, queues, home, remotes, i, q):
        c = 2 * i
        ch = _chan(queues[:c] + (q[1:],) + queues[c + 1:])
        msg = q[0]
        kind = msg.kind
        node = remotes[i]
        if kind == "REQ":
            if node.mode == "trans":
                return (DEL_R[i], _async(home, remotes, ch))
            if node.buf is not None:
                raise SemanticsError(
                    f"remote r{i} single-slot buffer overflow "
                    f"({node.describe()} receiving {msg.describe()})")
            nn = _remote(node.state, node.env, node.mode, node.pending_out,
                         _buf("h", msg.msg, msg.payload, False))
            return (DEL_R[i],
                    _async(home, remotes[:i] + (nn,) + remotes[i + 1:], ch))
        if node.mode != "trans":
            raise SemanticsError(
                f"remote r{i} received {msg.describe()} while not transient")
        if node.pending_out is None:
            raise SemanticsError("remote has no pending output in TRANS mode")
        return R_TL[node.state](ch, home, remotes, i, msg, kind)
'''

_DRIVERS = '''\
    def steps(state):
        out = []
        home = state.home
        remotes = state.remotes
        queues = state.channels.queues
        for i in range(n_remotes):
            q = queues[2 * i + 1]
            if q:
                out.append(_dh(state, queues, home, remotes, i, q))
            q = queues[2 * i]
            if q:
                out.append(_dr(state, queues, home, remotes, i, q))
        if home.mode == "idle":
            H_DEC[home.state](state, home, remotes, out)
        for i in range(n_remotes):
            node = remotes[i]
            if node.mode == "idle":
                R_STEP[node.state](state, home, remotes, node, i, out)
        return out

    # -- delta-memoized lean driver ------------------------------------
    #
    # Every step family is *channel-delta-pure* over a compact key: a
    # home decision depends only on the (interned) home node, a remote
    # spontaneous step on (i, node), a delivery on (i, receiver node,
    # head message).  The first time a key is seen, the ordinary lean
    # handler runs and its outcome is diffed into a replayable delta —
    # the new node (if any) plus per-channel pop/push ops.  Every later
    # state sharing that key replays the delta with tuple surgery,
    # skipping guard evaluation, payload lambdas, and env updates
    # entirely.  A step whose effect is not expressible as a delta
    # (never the case for this semantics, but the extractor refuses
    # rather than assumes) simply stays on the slow path.

    def _ch_delta(oq, nq):
        ops = []
        for c in range(len(oq)):
            o = oq[c]
            n = nq[c]
            if n is o or n == o:
                continue
            lo = len(o)
            ln = len(n)
            if ln >= lo and n[:lo] == o:
                ops.append((c, 0, n[lo:]))        # pure push(es)
            elif ln >= lo - 1 and n[:lo - 1] == o[1:]:
                ops.append((c, 1, n[lo - 1:]))    # pop head (+ pushes)
            else:
                return None
        return tuple(ops)

    def _mk_delta(state, entries):
        oq = state.channels.queues
        home = state.home
        remotes = state.remotes
        out = []
        for action, ns in entries:
            ops = _ch_delta(oq, ns.channels.queues)
            if ops is None:
                return None
            # Diff by value, not identity: state interning can hand back
            # a canonical successor whose components are equal to — but
            # not the same objects as — the origin's, and recording an
            # unchanged component as an absolute replacement would bake
            # the *origin's* value into the delta.
            nh = ns.home
            h2 = None if (nh is home or nh == home) else nh
            rdel = None
            nr = ns.remotes
            if nr is not remotes:
                for j in range(n_remotes):
                    nj = nr[j]
                    if nj is not remotes[j] and nj != remotes[j]:
                        if rdel is not None:
                            return None
                        rdel = (j, nj)
            out.append((action, h2, rdel, ops))
        return tuple(out)

    def _replay(state, delta, out):
        q0 = state.channels.queues
        home = state.home
        remotes = state.remotes
        for action, h2, rdel, ops in delta:
            q = q0
            for c, start, app in ops:
                qc = q[c]
                q = q[:c] + ((qc[start:] + app) if start else qc + app,) \
                    + q[c + 1:]
            if rdel is None:
                r = remotes
            else:
                j = rdel[0]
                r = remotes[:j] + (rdel[1],) + remotes[j + 1:]
            out.append((action, _async(home if h2 is None else h2, r,
                                       _chan(q))))

    _DH_MEMO = {}
    _DR_MEMO = {}
    _HD_MEMO = {}
    _RS_MEMO = {}

    def successors(state):
        out = []
        home = state.home
        remotes = state.remotes
        queues = state.channels.queues
        for i in range(n_remotes):
            q = queues[2 * i + 1]
            if q:
                key = (i, home, q[0])
                d = _DH_MEMO.get(key)
                if d is not None:
                    _replay(state, d, out)
                else:
                    e = _dhl(state, queues, home, remotes, i, q)
                    out.append(e)
                    d = _mk_delta(state, (e,))
                    if d is not None:
                        if len(_DH_MEMO) > _LIMIT:
                            _DH_MEMO.clear()
                        _DH_MEMO[key] = d
            q = queues[2 * i]
            if q:
                node = remotes[i]
                key = (i, node, q[0])
                d = _DR_MEMO.get(key)
                if d is not None:
                    _replay(state, d, out)
                else:
                    e = _drl(state, queues, home, remotes, i, q)
                    out.append(e)
                    d = _mk_delta(state, (e,))
                    if d is not None:
                        if len(_DR_MEMO) > _LIMIT:
                            _DR_MEMO.clear()
                        _DR_MEMO[key] = d
        if home.mode == "idle":
            d = _HD_MEMO.get(home)
            if d is not None:
                _replay(state, d, out)
            else:
                tmp = []
                H_DECL[home.state](state, home, remotes, tmp)
                out.extend(tmp)
                d = _mk_delta(state, tmp)
                if d is not None:
                    if len(_HD_MEMO) > _LIMIT:
                        _HD_MEMO.clear()
                    _HD_MEMO[home] = d
        for i in range(n_remotes):
            node = remotes[i]
            if node.mode == "idle":
                key = (i, node)
                d = _RS_MEMO.get(key)
                if d is not None:
                    _replay(state, d, out)
                else:
                    tmp = []
                    R_STEPL[node.state](state, home, remotes, node, i, tmp)
                    out.extend(tmp)
                    d = _mk_delta(state, tmp)
                    if d is not None:
                        if len(_RS_MEMO) > _LIMIT:
                            _RS_MEMO.clear()
                        _RS_MEMO[key] = d
        return out

    return steps, successors
'''


class _Gen:
    """One-shot source emitter for a (refined protocol, step table) pair."""

    def __init__(self, refined: RefinedProtocol, table: StepTable) -> None:
        self.refined = refined
        self.protocol = refined.protocol
        self.plan = refined.plan
        self.table = table
        self.cap = refined.plan.config.home_buffer_capacity
        self.reserve_progress = refined.plan.config.reserve_progress_buffer
        self.reserve_ack = refined.plan.config.reserve_ack_buffer
        self.remote_fused = table.fused_requests(REMOTE)
        self.home_fused = table.fused_requests(HOME)
        self.has_notes = bool(table.notes)
        self.home_idx = {k: i for i, (k, _) in enumerate(
            self.protocol.home.initial_env.canonical_key())}
        self.remote_idx = {k: i for i, (k, _) in enumerate(
            self.protocol.remote.initial_env.canonical_key())}
        self.home_states = sorted(self.protocol.home.states)
        self.remote_states = sorted(self.protocol.remote.states)
        self.slots: list[Callable[..., Any]] = []
        self._slot_names: dict[int, str] = {}
        self.lines: list[str] = []

    # -- small emission helpers --------------------------------------------

    def w(self, indent: int, text: str = "") -> None:
        self.lines.append("    " * indent + text if text else "")

    def slot(self, fn: Callable[..., Any]) -> str:
        name = self._slot_names.get(id(fn))
        if name is None:
            name = f"F{len(self.slots)}"
            self._slot_names[id(fn)] = name
            self.slots.append(fn)
        return name

    def ev(self, role: str, var: str, env: str = "env") -> str:
        idx = (self.home_idx if role == HOME else self.remote_idx).get(var)
        if idx is None:
            return f"_ke({var!r})"
        return f"{env}._items[{idx}][1]"

    def pay(self, g: Output, env: str) -> str:
        return (f"{self.slot(g.payload)}({env})"
                if g.payload is not None else "None")

    def upd(self, g: Any, env: str) -> str:
        return (f"{self.slot(g.update)}({env})"
                if g.update is not None else env)

    def free_expr(self, buf: str) -> str:
        if self.has_notes:
            return f"{self.cap} - _nonnote({buf})"
        return f"{self.cap} - len({buf})"

    def accepts(self, g: Input, role: str, env: str, snd: str,
                val: str) -> str:
        """Boolean expression mirroring ``Input.accepts`` (may be '')."""
        parts: list[str] = []
        s = g.sender
        if isinstance(s, VarSender):
            parts.append(f"{self.ev(role, s.var, env)} == {snd}")
        elif isinstance(s, SetSender):
            e = self.ev(role, s.var, env)
            parts.append(f"(isinstance({e}, frozenset) and {snd} in {e})")
        elif isinstance(s, PredSender):
            parts.append(f"{self.slot(s.pred)}({env}, {snd})")
        if g.cond is not None:
            parts.append(f"{self.slot(g.cond)}({env}, {snd}, {val})")
        return " and ".join(parts)

    def emit_complete(self, ind: int, g: Input, role: str, src: str,
                      snd: str, val: str, dst: str) -> None:
        """Statements mirroring ``Input.complete``: bind sender, bind
        value (in-place item surgery at the baked sorted index), then
        apply the update callable."""
        idx_map = self.home_idx if role == HOME else self.remote_idx
        cur = src
        binds = []
        if g.bind_sender is not None:
            binds.append((g.bind_sender, snd))
        if g.bind_value is not None:
            binds.append((g.bind_value, val))
        if binds:
            self.w(ind, f"it = {src}._items")
            for key, v in binds:
                i = idx_map.get(key)
                if i is None:
                    self.w(ind, f"_ke({key!r})")
                else:
                    self.w(ind, f"it = it[:{i}] + (({key!r}, {v}),)"
                                f" + it[{i + 1}:]")
            self.w(ind, f"{dst} = _env(it)")
            cur = dst
        if g.update is not None:
            self.w(ind, f"{dst} = {self.slot(g.update)}({cur})")
            cur = dst
        if cur != dst:
            self.w(ind, f"{dst} = {cur}")

    def emit_target(self, ind: int, g: Output, env: str) -> None:
        """Statements computing ``t`` (the remote id) with the exact
        interpreter error behaviour, plus the range check."""
        tgt = g.target
        assert tgt is not None
        if isinstance(tgt, VarTarget):
            self.w(ind, f"t = {self.ev(HOME, tgt.var, env)}")
            self.w(ind, "if not isinstance(t, int):")
            self.w(ind + 1, "raise SpecError(f\"output target variable "
                            f"{_fesc(repr(tgt.var))} holds {{t!r}}, "
                            "expected a remote id (int)\")")
        elif isinstance(tgt, ConstTarget):
            self.w(ind, f"t = {tgt.remote}")
        else:
            self.w(ind, f"t = int({self.slot(tgt.expr)}({env}))")
        desc = _fesc(g.describe())
        self.w(ind, "if not 0 <= t < n_remotes:")
        self.w(ind + 1, f"raise SemanticsError(f\"home output {desc} "
                        "targets r{t}\")")

    # -- per-state handlers ------------------------------------------------

    def emit_home_req(self, sid: int, sdef: StateDef, lean: bool) -> None:
        L = "l" if lean else ""
        w = self.w
        outputs = sdef.outputs
        w(1, f"def _hq{sid}{L}(ch, home, remotes, i, msg):")
        w(2, "entry = _buf(i, msg.msg, msg.payload, False)")
        w(2, "buffer = home.buffer")
        if outputs:
            w(2, "if home.mode == \"trans\" and home.awaiting == i:")
            w(3, "po = home.pending_out")
            for gi in range(len(outputs)):
                spec = self.table.spec(HOME, sdef.name, gi)
                nidx = (gi + 1) % len(outputs)
                kw = "if" if gi == 0 else "elif"
                w(3, f"{kw} po == {gi}:")
                w(4, f"if {self.free_expr('buffer')} >= 1:")
                w(5, f"nh = _home({spec.rewind_to!r}, home.env, \"idle\", "
                     f"{nidx}, None, None, buffer + (entry,))")
                if lean:
                    w(5, "return (DEL_H[i], _async(nh, remotes, ch))")
                else:
                    w(5, "return _step(DEL_H[i], _async(nh, remotes, ch), "
                         "(), ())")
                if self.reserve_ack:
                    w(4, "raise SemanticsError(f\"ack-buffer reservation "
                         "violated: home is transient with a full buffer "
                         "({home.describe()})\")")
                else:
                    w(4, f"nh = _home({spec.rewind_to!r}, home.env, "
                         f"\"idle\", {nidx}, None, None, buffer)")
                    w(4, "ch = _push(ch, 2 * i, NACK_MSG)")
                    if lean:
                        w(4, "return (DEL_H[i], _async(nh, remotes, ch))")
                    else:
                        w(4, "return _step(DEL_H[i], "
                             "_async(nh, remotes, ch), (), (NACK_MSG,))")
            w(3, "raise SemanticsError(\"home has no pending output in "
                 "TRANS mode\")")
        # normal buffering path (T4-T6 / communication-state analogue)
        inputs = sdef.inputs
        if inputs and self.reserve_progress:
            w(2, "m = msg.msg")
            w(2, "v = msg.payload")
            w(2, "env = home.env")
            alts = []
            for g in inputs:
                acc = self.accepts(g, HOME, "env", "i", "v")
                alts.append(f"(m == {g.msg!r} and {acc})" if acc
                            else f"m == {g.msg!r}")
            w(2, "sat = " + " or ".join(alts))
        if self.reserve_progress:
            sat = "sat" if inputs else "False"
            w(2, f"res = 0 if {sat} else 1" if inputs else "res = 1")
        else:
            w(2, "res = 0")
        if self.reserve_ack:
            w(2, "if home.mode == \"trans\":")
            w(3, "res += 1")
        w(2, f"if {self.free_expr('buffer')} > res:")
        w(3, "nh = _home(home.state, home.env, home.mode, home.out_idx, "
             "home.awaiting, home.pending_out, buffer + (entry,))")
        if lean:
            w(3, "return (DEL_H[i], _async(nh, remotes, ch))")
        else:
            w(3, "return _step(DEL_H[i], _async(nh, remotes, ch), (), ())")
        w(2, "ch = _push(ch, 2 * i, NACK_MSG)")
        if lean:
            w(2, "return (DEL_H[i], _async(home, remotes, ch))")
        else:
            w(2, "return _step(DEL_H[i], _async(home, remotes, ch), (), "
                 "(NACK_MSG,))")
        w(0)

    def emit_home_trans(self, sid: int, sdef: StateDef, lean: bool) -> None:
        """ACK/NACK/REPL arriving at a transient home in this state."""
        L = "l" if lean else ""
        w = self.w
        outputs = sdef.outputs
        w(1, f"def _ht{sid}{L}(ch, home, remotes, i, msg, kind):")
        w(2, "env = home.env")
        w(2, "po = home.pending_out")
        for gi, g in enumerate(outputs):
            spec = self.table.spec(HOME, sdef.name, gi)
            nidx = (gi + 1) % len(outputs)
            kw = "if" if gi == 0 else "elif"
            w(2, f"{kw} po == {gi}:")
            w(3, "if kind == \"NACK\":")
            w(4, f"nh = _home({spec.rewind_to!r}, env, \"idle\", {nidx}, "
                 "None, None, home.buffer)")
            if lean:
                w(4, "return (DEL_H[i], _async(nh, remotes, ch))")
            else:
                w(4, "return _step(DEL_H[i], _async(nh, remotes, ch), "
                     "(), ())")
            if not lean:
                w(3, f"rp = {self.pay(g, 'env')}")
            w(3, "if kind == \"ACK\":")
            w(4, f"nh = _home({spec.forward_to!r}, {self.upd(g, 'env')}, "
                 "\"idle\", 0, None, None, home.buffer)")
            if lean:
                w(4, "return (DEL_H[i], _async(nh, remotes, ch))")
            else:
                w(4, "return _step(DEL_H[i], _async(nh, remotes, ch), "
                     f"(_rvz(\"h\", i, {g.msg!r}, rp),), ())")
            w(3, "if kind == \"REPL\":")
            self._emit_home_repl(4, g, spec, lean)
            w(3, "raise SemanticsError(f\"unknown message kind "
                 "{kind!r}\")")
        w(2, "raise SemanticsError(\"home has no pending output in "
             "TRANS mode\")")
        w(0)

    def _emit_home_repl(self, ind: int, g: Output, spec: TransitionSpec,
                        lean: bool) -> None:
        w = self.w
        unexpected = ("raise SemanticsError(f\"home got unexpected reply "
                      "{msg.describe()} while awaiting the reply to "
                      f"{_fesc(repr(g.msg))}\")")
        if spec.fused_reply is None:
            w(ind, unexpected)
            return
        fr = spec.fused_reply
        assert spec.reply_to is not None
        w(ind, f"if msg.msg != {fr!r}:")
        w(ind + 1, unexpected)
        w(ind, f"env2 = {self.upd(g, 'env')}")
        w(ind, "v = msg.payload")
        mid = self.protocol.home.state(spec.reply_to)
        candidates = [gg for gg in mid.inputs if gg.msg == fr]
        closed = False
        for ci, gg in enumerate(candidates):
            acc = self.accepts(gg, HOME, "env2", "i", "v")
            if not acc and ci == 0:
                # unconditional first candidate: always taken
                self.emit_complete(ind, gg, HOME, "env2", "i", "v", "env3")
                w(ind, f"nh = _home({gg.to!r}, env3, \"idle\", 0, None, "
                       "None, home.buffer)")
                closed = True
                break
            kw = "if" if ci == 0 else "elif"
            w(ind, f"{kw} {acc or 'True'}:")
            self.emit_complete(ind + 1, gg, HOME, "env2", "i", "v", "env3")
            w(ind + 1, f"nh = _home({gg.to!r}, env3, \"idle\", 0, None, "
                       "None, home.buffer)")
        nomatch = (f"raise SemanticsError(\"home: no input guard in state "
                   f"{_fesc(repr(spec.reply_to))} accepts the fused reply "
                   f"{_fesc(repr(fr))}\")")
        if not candidates:
            w(ind, nomatch)
            return
        if not closed:
            w(ind, "else:")
            w(ind + 1, nomatch)
        if lean:
            w(ind, "return (DEL_H[i], _async(nh, remotes, ch))")
        else:
            w(ind, "return _step(DEL_H[i], _async(nh, remotes, ch), "
                   f"(_rvz(\"h\", i, {g.msg!r}, rp), "
                   f"_rvz(i, \"h\", {fr!r}, v)), ())")

    def emit_home_dec(self, sid: int, sdef: StateDef, lean: bool) -> None:
        """The home's C1 / C2-or-reply decision (communication states)
        or its tau fan-out (internal states)."""
        L = "l" if lean else ""
        w = self.w
        w(1, f"def _hd{sid}{L}(state, home, remotes, out):")
        if sdef.is_terminal:
            w(2, "return")
            w(0)
            return
        w(2, "env = home.env")
        if not sdef.is_communication:
            for ti, tau in enumerate(sdef.taus):
                ind = 2
                if tau.cond is not None:
                    w(2, f"if {self.slot(tau.cond)}(env):")
                    ind = 3
                w(ind, f"nh = _home({tau.to!r}, {self.upd(tau, 'env')}, "
                       "\"idle\", 0, None, None, home.buffer)")
                if lean:
                    w(ind, f"out.append((HTAU_{sid}_{ti}, "
                           "_async(nh, remotes, state.channels)))")
                else:
                    w(ind, f"out.append(_step(HTAU_{sid}_{ti}, "
                           "_async(nh, remotes, state.channels), (), ()))")
            w(0)
            return
        w(2, "buffer = home.buffer")
        # C1: first satisfying buffered entry, first matching guard
        inputs = sdef.inputs
        if inputs:
            w(2, "for pos in range(len(buffer)):")
            w(3, "entry = buffer[pos]")
            w(3, "m = entry.msg")
            for g in inputs:
                acc = self.accepts(g, HOME, "env", "entry.sender",
                                   "entry.payload")
                test = f"m == {g.msg!r}" + (f" and {acc}" if acc else "")
                w(3, f"if {test}:")
                self.emit_complete(4, g, HOME, "env", "entry.sender",
                                   "entry.payload", "env2")
                w(4, "nb = buffer[:pos] + buffer[pos + 1:]")
                w(4, f"nh = _home({g.to!r}, env2, \"idle\", 0, None, None, "
                     "nb)")
                fused = g.msg in self.remote_fused
                w(4, "if entry.note:")
                if lean:
                    w(5, "out.append((_c1a(entry), "
                         "_async(nh, remotes, state.channels)))")
                else:
                    w(5, "out.append(_step(_c1a(entry), "
                         "_async(nh, remotes, state.channels), "
                         f"(_rvz(entry.sender, \"h\", {g.msg!r}, "
                         "entry.payload),), ()))")
                w(4, "else:")
                if fused:
                    if lean:
                        w(5, "out.append((_c1a(entry), "
                             "_async(nh, remotes, state.channels)))")
                    else:
                        w(5, "out.append(_step(_c1a(entry), "
                             "_async(nh, remotes, state.channels), (), ()))")
                else:
                    w(5, "ch = _push(state.channels, 2 * entry.sender, "
                         "ACK_MSG)")
                    if lean:
                        w(5, "out.append((_c1a(entry), "
                             "_async(nh, remotes, ch)))")
                    else:
                        w(5, "out.append(_step(_c1a(entry), "
                             "_async(nh, remotes, ch), (), (ACK_MSG,)))")
                w(4, "return")
        # C2-or-reply: cyclic scan from out_idx
        outputs = sdef.outputs
        if not outputs:
            w(2, "return")
            w(0)
            return
        n_out = len(outputs)
        if n_out == 1:
            self._emit_home_out_attempt(2, sid, sdef, 0, "return",
                                        "home.out_idx", lean)
        else:
            w(2, "oi = home.out_idx")
            w(2, f"for off in range({n_out}):")
            w(3, f"idx = (oi + off) % {n_out}")
            for gi in range(n_out):
                kw = "if" if gi == 0 else "elif"
                w(3, f"{kw} idx == {gi}:")
                self._emit_home_out_attempt(4, sid, sdef, gi, "continue",
                                            "oi", lean)
        w(0)

    def _emit_home_out_attempt(self, ind: int, sid: int, sdef: StateDef,
                               gi: int, bail: str, oi: str,
                               lean: bool) -> None:
        """One output guard's C2/REPLY attempt inside the cyclic scan.

        ``bail`` is how a disabled / condition-(c)-skipped guard yields
        to the next scan position ("continue" in a loop, "return" when
        the state has a single output guard).
        """
        w = self.w
        g = sdef.outputs[gi]
        spec = self.table.spec(HOME, sdef.name, gi)
        if g.cond is not None:
            w(ind, f"if not {self.slot(g.cond)}(env):")
            w(ind + 1, bail)
        self.emit_target(ind, g, "env")
        if spec.kind == KIND_REPLY:
            w(ind, f"pl = {self.pay(g, 'env')}")
            w(ind, f"rm = _msg(\"REPL\", {g.msg!r}, pl)")
            w(ind, "ch = _push(state.channels, 2 * t, rm)")
            w(ind, f"nh = _home({g.to!r}, {self.upd(g, 'env')}, \"idle\", "
                   "0, None, None, buffer)")
            if lean:
                w(ind, f"out.append((HA_{sid}_{gi}[t], "
                       "_async(nh, remotes, ch)))")
            else:
                w(ind, f"out.append(_step(HA_{sid}_{gi}[t], "
                       "_async(nh, remotes, ch), (), (rm,)))")
            w(ind, "return")
            return
        if spec.kind == KIND_NOTE:
            w(ind, "raise SemanticsError(\"fire-and-forget home outputs "
                   "are not supported\")")
            return
        # condition (c): skip a target that is itself requesting us
        w(ind, "ok = True")
        w(ind, "for e in buffer:")
        w(ind + 1, "if e.sender == t and not e.note:")
        w(ind + 2, "ok = False")
        w(ind + 2, "break")
        w(ind, "if not ok:")
        w(ind + 1, bail)
        w(ind, "ch = state.channels")
        w(ind, "nb = buffer")
        w(ind, "vn = None")
        w(ind, f"if {self.free_expr('buffer')} < 1:")
        w(ind + 1, "vp = 0")
        w(ind + 1, "nn = len(buffer)")
        w(ind + 1, "while vp < nn and buffer[vp].note:")
        w(ind + 2, "vp += 1")
        w(ind + 1, "if vp == nn:")
        w(ind + 2, "return")
        w(ind + 1, "ch = _push(ch, 2 * buffer[vp].sender, NACK_MSG)")
        w(ind + 1, "vn = NACK_MSG")
        w(ind + 1, "nb = buffer[:vp] + buffer[vp + 1:]")
        w(ind, f"rq = _msg(\"REQ\", {g.msg!r}, {self.pay(g, 'env')})")
        w(ind, "ch = _push(ch, 2 * t, rq)")
        w(ind, f"nh = _home({sdef.name!r}, env, \"trans\", {oi}, t, {gi}, "
               "nb)")
        if lean:
            w(ind, f"out.append((HA_{sid}_{gi}[t], "
                   "_async(nh, remotes, ch)))")
        else:
            w(ind, f"out.append(_step(HA_{sid}_{gi}[t], "
                   "_async(nh, remotes, ch), (), "
                   "(rq,) if vn is None else (vn, rq)))")
        w(ind, "return")

    def emit_remote_trans(self, sid: int, sdef: StateDef,
                          lean: bool) -> None:
        """ACK/NACK/REPL arriving at a transient remote in this state."""
        L = "l" if lean else ""
        w = self.w
        g = sdef.outputs[0]
        spec = self.table.spec(REMOTE, sdef.name, 0)
        w(1, f"def _rt{sid}{L}(ch, home, remotes, i, msg, kind):")
        w(2, "node = remotes[i]")
        w(2, "env = node.env")
        if not lean:
            w(2, f"rp = {self.pay(g, 'env')}")
        w(2, "if kind == \"NACK\":")
        if lean:
            w(3, f"rq = _msg(\"REQ\", {g.msg!r}, {self.pay(g, 'env')})")
        else:
            w(3, f"rq = _msg(\"REQ\", {g.msg!r}, rp)")
        w(3, "ch = _push(ch, 2 * i + 1, rq)")
        if lean:
            w(3, "return (DEL_R[i], _async(home, remotes, ch))")
        else:
            w(3, "return _step(DEL_R[i], _async(home, remotes, ch), (), "
                 "(rq,))")
        w(2, "if kind == \"ACK\":")
        w(3, f"nn = _remote({spec.forward_to!r}, {self.upd(g, 'env')}, "
             "\"idle\", None, None)")
        if lean:
            w(3, "return (DEL_R[i], _async(home, "
                 "remotes[:i] + (nn,) + remotes[i + 1:], ch))")
        else:
            w(3, "return _step(DEL_R[i], _async(home, "
                 "remotes[:i] + (nn,) + remotes[i + 1:], ch), "
                 f"(_rvz(i, \"h\", {g.msg!r}, rp),), ())")
        w(2, "if kind == \"REPL\":")
        self._emit_remote_repl(3, sid, g, spec, lean)
        w(2, "raise SemanticsError(f\"unknown message kind {kind!r}\")")
        w(0)

    def _emit_remote_repl(self, ind: int, sid: int, g: Output,
                          spec: TransitionSpec, lean: bool) -> None:
        w = self.w
        unexpected = ("raise SemanticsError(f\"remote r{i} got unexpected "
                      "reply {msg.describe()} while awaiting the reply to "
                      f"{_fesc(repr(g.msg))}\")")
        if spec.fused_reply is None:
            w(ind, unexpected)
            return
        fr = spec.fused_reply
        assert spec.reply_to is not None
        w(ind, f"if msg.msg != {fr!r}:")
        w(ind + 1, unexpected)
        w(ind, f"env2 = {self.upd(g, 'env')}")
        w(ind, "v = msg.payload")
        mid = self.protocol.remote.state(spec.reply_to)
        candidates = [gg for gg in mid.inputs if gg.msg == fr]
        nomatch = (f"raise SemanticsError(f\"remote r{{i}}: no input guard "
                   f"in state {_fesc(repr(spec.reply_to))} accepts the "
                   f"fused reply {_fesc(repr(fr))}\")")
        closed = False
        for ci, gg in enumerate(candidates):
            acc = self.accepts(gg, REMOTE, "env2", "-1", "v")
            if not acc and ci == 0:
                self.emit_complete(ind, gg, REMOTE, "env2", "-1", "v",
                                   "env3")
                w(ind, f"nn = _remote({gg.to!r}, env3, \"idle\", None, "
                       "None)")
                closed = True
                break
            kw = "if" if ci == 0 else "elif"
            w(ind, f"{kw} {acc or 'True'}:")
            self.emit_complete(ind + 1, gg, REMOTE, "env2", "-1", "v",
                               "env3")
            w(ind + 1, f"nn = _remote({gg.to!r}, env3, \"idle\", None, "
                       "None)")
        if not candidates:
            w(ind, nomatch)
            return
        if not closed:
            w(ind, "else:")
            w(ind + 1, nomatch)
        if lean:
            w(ind, "return (DEL_R[i], _async(home, "
                   "remotes[:i] + (nn,) + remotes[i + 1:], ch))")
        else:
            w(ind, "return _step(DEL_R[i], _async(home, "
                   "remotes[:i] + (nn,) + remotes[i + 1:], ch), "
                   f"(_rvz(i, \"h\", {g.msg!r}, rp), "
                   f"_rvz(\"h\", i, {fr!r}, v)), ())")

    def emit_remote_step(self, sid: int, sdef: StateDef,
                         lean: bool) -> None:
        """Idle-remote behaviour: send (active), C3 + taus (passive),
        taus only (internal)."""
        L = "l" if lean else ""
        w = self.w
        w(1, f"def _rs{sid}{L}(state, home, remotes, node, i, out):")
        if sdef.is_terminal:
            w(2, "return")
            w(0)
            return
        w(2, "env = node.env")
        outputs = sdef.outputs
        if outputs:
            g = outputs[0]
            spec = self.table.spec(REMOTE, sdef.name, 0)
            ind = 2
            if g.cond is not None:
                w(2, f"if not {self.slot(g.cond)}(env):")
                w(3, "return")
            w(ind, f"pl = {self.pay(g, 'env')}")
            if spec.kind == KIND_NOTE:
                w(ind, f"nm = _msg(\"NOTE\", {g.msg!r}, pl)")
                w(ind, "ch = _push(state.channels, 2 * i + 1, nm)")
                w(ind, f"nn = _remote({spec.forward_to!r}, "
                       f"{self.upd(g, 'env')}, \"idle\", None, node.buf)")
                tail = "(), (nm,)"
            else:
                w(ind, f"rq = _msg(\"REQ\", {g.msg!r}, pl)")
                w(ind, "ch = _push(state.channels, 2 * i + 1, rq)")
                w(ind, f"nn = _remote({sdef.name!r}, env, \"trans\", 0, "
                       "None)")
                tail = "(), (rq,)"
            if lean:
                w(ind, "out.append((R_SEND[i], _async(home, "
                       "remotes[:i] + (nn,) + remotes[i + 1:], ch)))")
            else:
                w(ind, "out.append(_step(R_SEND[i], _async(home, "
                       f"remotes[:i] + (nn,) + remotes[i + 1:], ch), "
                       f"{tail}))")
            w(0)
            return
        if sdef.is_communication:
            w(2, "b = node.buf")
            w(2, "if b is not None:")
            self._emit_remote_c3(3, sid, sdef, lean)
        for ti, tau in enumerate(sdef.taus):
            ind = 2
            if tau.cond is not None:
                w(2, f"if {self.slot(tau.cond)}(env):")
                ind = 3
            w(ind, f"nn = _remote({tau.to!r}, {self.upd(tau, 'env')}, "
                   "node.mode, node.pending_out, node.buf)")
            if lean:
                w(ind, f"out.append((RTAU_{sid}_{ti}[i], _async(home, "
                       "remotes[:i] + (nn,) + remotes[i + 1:], "
                       "state.channels)))")
            else:
                w(ind, f"out.append(_step(RTAU_{sid}_{ti}[i], _async(home, "
                       "remotes[:i] + (nn,) + remotes[i + 1:], "
                       "state.channels), (), ()))")
        w(0)

    def _emit_remote_c3(self, ind: int, sid: int, sdef: StateDef,
                        lean: bool) -> None:
        w = self.w
        w(ind, "m = b.msg")
        w(ind, "v = b.payload")
        first = True
        for g in sdef.inputs:
            acc = self.accepts(g, REMOTE, "env", "-1", "v")
            test = f"m == {g.msg!r}" + (f" and {acc}" if acc else "")
            w(ind, f"{'if' if first else 'elif'} {test}:")
            first = False
            self.emit_complete(ind + 1, g, REMOTE, "env", "-1", "v", "env2")
            if g.msg in self.home_fused:
                self._emit_fused_response(ind + 1, g, lean)
            else:
                w(ind + 1, "ch = _push(state.channels, 2 * i + 1, "
                           "ACK_MSG)")
                w(ind + 1, f"nn = _remote({g.to!r}, env2, \"idle\", None, "
                           "None)")
                if lean:
                    w(ind + 1, "out.append((R_C3[i], _async(home, "
                               "remotes[:i] + (nn,) + remotes[i + 1:], "
                               "ch)))")
                else:
                    w(ind + 1, "out.append(_step(R_C3[i], _async(home, "
                               "remotes[:i] + (nn,) + remotes[i + 1:], "
                               f"ch), (_rvz(\"h\", i, {g.msg!r}, v),), "
                               "(ACK_MSG,)))")
        w(ind, "else:" if not first else "if True:")
        w(ind + 1, "ch = _push(state.channels, 2 * i + 1, NACK_MSG)")
        w(ind + 1, f"nn = _remote({sdef.name!r}, env, \"idle\", "
                   "node.pending_out, None)")
        if lean:
            w(ind + 1, "out.append((R_C3[i], _async(home, "
                       "remotes[:i] + (nn,) + remotes[i + 1:], ch)))")
        else:
            w(ind + 1, "out.append(_step(R_C3[i], _async(home, "
                       "remotes[:i] + (nn,) + remotes[i + 1:], ch), (), "
                       "(NACK_MSG,)))")

    def _emit_fused_response(self, ind: int, g: Input, lean: bool) -> None:
        """Statically unrolled ``_remote_fused_response`` tau chain."""
        w = self.w
        proc = self.protocol.remote
        cursor = proc.state(g.to)
        chain: list[Tau] = []
        hops = 0
        while cursor.is_internal and len(cursor.guards) == 1:
            tau = cursor.taus[0]
            chain.append(tau)
            cursor = proc.state(tau.to)
            hops += 1
            if hops > len(proc.states):
                w(ind, "raise SemanticsError(\"fused response stuck in "
                       "internal loop\")")
                return
        reply_msg = self.table.reply_of.get(g.msg)
        guards = cursor.guards
        if (reply_msg is None or len(guards) != 1
                or not isinstance(guards[0], Output)
                or guards[0].msg != reply_msg):
            w(ind, "raise SemanticsError(\"fused response: expected sole "
                   f"output {_fesc(repr(reply_msg))} in state "
                   f"{_fesc(repr(cursor.name))}\")")
            return
        for tau in chain:
            if tau.cond is not None:
                w(ind, f"if not {self.slot(tau.cond)}(env2):")
                w(ind + 1, "raise SemanticsError(\"fused-response local "
                           f"action {_fesc(tau.describe())} disabled\")")
            if tau.update is not None:
                w(ind, f"env2 = {self.slot(tau.update)}(env2)")
        og = guards[0]
        w(ind, f"pl = {self.pay(og, 'env2')}")
        w(ind, f"rm = _msg(\"REPL\", {reply_msg!r}, pl)")
        w(ind, "ch = _push(state.channels, 2 * i + 1, rm)")
        w(ind, f"nn = _remote({og.to!r}, {self.upd(og, 'env2')}, \"idle\", "
               "None, None)")
        if lean:
            w(ind, "out.append((R_C3[i], _async(home, "
                   "remotes[:i] + (nn,) + remotes[i + 1:], ch)))")
        else:
            w(ind, "out.append(_step(R_C3[i], _async(home, "
                   "remotes[:i] + (nn,) + remotes[i + 1:], ch), (), "
                   "(rm,)))")

    # -- whole-module assembly ---------------------------------------------

    def emit_actions(self) -> None:
        """Preallocated per-state action objects (frozen-dataclass
        construction is too slow for the hot path)."""
        w = self.w
        for sid, name in enumerate(self.home_states):
            sdef = self.protocol.home.states[name]
            for gi, g in enumerate(sdef.outputs):
                spec = self.table.spec(HOME, name, gi)
                if spec.kind == KIND_NOTE:
                    continue
                kind = "REPLY" if spec.kind == KIND_REPLY else "C2"
                w(1, f"HA_{sid}_{gi} = tuple(HomeStep({kind!r}, "
                     f"f\"{_fesc(g.msg)}→r{{t}}\") "
                     "for t in range(n_remotes))")
            for ti, tau in enumerate(sdef.taus):
                if not sdef.is_communication:
                    w(1, f"HTAU_{sid}_{ti} = HomeTau({tau.label!r})")
        for sid, name in enumerate(self.remote_states):
            sdef = self.protocol.remote.states[name]
            if sdef.outputs:
                continue
            for ti, tau in enumerate(sdef.taus):
                w(1, f"RTAU_{sid}_{ti} = tuple(RemoteTau(i, "
                     f"{tau.label!r}) for i in range(n_remotes))")
        w(0)

    def emit_dispatch(self) -> None:
        w = self.w
        home = self.protocol.home
        remote = self.protocol.remote

        def table_lines(var: str, names: list[str], fn: str, suffix: str,
                        keep: Callable[[StateDef], bool]) -> None:
            w(1, f"{var} = {{")
            for sid, name in enumerate(names):
                proc = home if fn.startswith("_h") else remote
                if keep(proc.states[name]):
                    w(2, f"{name!r}: {fn}{sid}{suffix},")
            w(1, "}")

        always = (lambda s: True)
        has_out = (lambda s: bool(s.outputs))
        for suffix, tag in (("", ""), ("l", "L")):
            table_lines(f"H_REQ{tag}", self.home_states, "_hq", suffix,
                        always)
            table_lines(f"H_T{tag}", self.home_states, "_ht", suffix,
                        has_out)
            table_lines(f"H_DEC{tag}", self.home_states, "_hd", suffix,
                        always)
            table_lines(f"R_T{tag}", self.remote_states, "_rt", suffix,
                        has_out)
            table_lines(f"R_STEP{tag}", self.remote_states, "_rs", suffix,
                        always)
        w(0)

    def generate(self) -> str:
        name = self.protocol.name
        fp = protocol_fingerprint(self.refined, self.table)
        header = (
            f'"""Specialized step functions for protocol {name!r}.\n'
            "\n"
            f"Generated by repro.refine.compiled (codegen v"
            f"{CODEGEN_VERSION}); fingerprint {fp}.  Structure-only: all\n"
            "user callables arrive through the funcs tuple at load time.\n"
            "Do not edit.\n"
            '"""\n'
        )
        self.lines = []
        # handlers first (emitted into self.lines), then assembled
        for sid, sname in enumerate(self.home_states):
            sdef = self.protocol.home.states[sname]
            for lean in (False, True):
                self.emit_home_req(sid, sdef, lean)
                if sdef.outputs:
                    self.emit_home_trans(sid, sdef, lean)
                self.emit_home_dec(sid, sdef, lean)
        for sid, sname in enumerate(self.remote_states):
            sdef = self.protocol.remote.states[sname]
            for lean in (False, True):
                if sdef.outputs:
                    self.emit_remote_trans(sid, sdef, lean)
                self.emit_remote_step(sid, sdef, lean)
        handlers = "\n".join(self.lines)
        self.lines = []
        self.emit_actions()
        actions = "\n".join(self.lines)
        self.lines = []
        self.emit_dispatch()
        dispatch = "\n".join(self.lines)
        unpack = "".join(f"    F{j} = funcs[{j}]\n"
                         for j in range(len(self.slots)))
        return (header + _PRELUDE + unpack + _CTORS + "\n" + actions
                + handlers + _DELIVER + "\n" + dispatch + _DRIVERS)


def _generate(refined: RefinedProtocol,
              table: StepTable) -> tuple[str, tuple[Callable[..., Any], ...]]:
    gen = _Gen(refined, table)
    source = gen.generate()
    return source, tuple(gen.slots)


def generate_source(refined: RefinedProtocol, table: StepTable) -> str:
    """The generated module source (for inspection, docs and tests)."""
    return _generate(refined, table)[0]


# ---------------------------------------------------------------------------
# compilation + caching
# ---------------------------------------------------------------------------


@dataclass
class CompiledEngine:
    """Bound step functions for one (protocol, table, n_remotes)."""

    fingerprint: str
    source_path: Optional[Path]
    steps: Callable[[Any], list[Any]]
    successors: Callable[[Any], list[tuple[Any, Any]]]


#: compiled code objects per fingerprint (per-process)
_CODE_MEMO: dict[str, Any] = {}
#: exec'd module namespaces per fingerprint (per-process)
_NS_MEMO: dict[str, dict[str, Any]] = {}


def _cache_dir() -> Optional[Path]:
    env = os.environ.get("REPRO_COMPILED_CACHE")
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro" / "compiled"


def _disk_cache(name: str, fp: str, source: str) -> tuple[Optional[Path],
                                                          str]:
    """Persist/load the generated source; returns (path, source).

    The cache is keyed by the structural fingerprint, so a hit is by
    construction byte-identical to what we would regenerate; reading it
    back keeps tracebacks pointing at a real file.  Any filesystem
    trouble degrades to in-memory compilation.
    """
    directory = _cache_dir()
    if directory is None:
        return None, source
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    path = directory / f"{safe}-{fp}.py"
    try:
        if path.exists():
            return path, path.read_text(encoding="utf-8")
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(source)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path, source
    except OSError:
        return None, source


def compile_system(refined: RefinedProtocol, table: StepTable,
                   n_remotes: int) -> CompiledEngine:
    """Compile (or load from cache) the specialized engine.

    Deterministic: the same protocol structure + table + plan always
    yields the same module source, so spawn workers rebuilding a
    :class:`~repro.check.parallel.SystemSpec` reconstruct bit-identical
    step functions (callables are re-enumerated in the same walk).
    """
    source, funcs = _generate(refined, table)
    fp = protocol_fingerprint(refined, table)
    ns = _NS_MEMO.get(fp)
    path: Optional[Path] = None
    if ns is None:
        path, source = _disk_cache(refined.protocol.name, fp, source)
        code = _CODE_MEMO.get(fp)
        if code is None:
            filename = str(path) if path is not None else f"<compiled {fp}>"
            code = compile(source, filename, "exec")
            _CODE_MEMO[fp] = code
        ns = {}
        exec(code, ns)  # noqa: S102 - our own generated, cached source
        _NS_MEMO[fp] = ns
    steps, successors = ns["make_steps"](n_remotes, funcs)
    return CompiledEngine(fingerprint=fp, source_path=path, steps=steps,
                          successors=successors)
