"""The abstraction function ``abs`` of paper section 4.

``abs`` maps every asynchronous global state to a rendezvous global state
by erasing the machinery the refinement introduced:

1. every *request for rendezvous* in the medium or in a buffer is
   discarded, and its sender's transient state is rewound to the
   communication state it came from ("as though the request was never
   sent");
2. every *ack* in the medium is discarded and its target fast-forwarded to
   the state it will reach on consuming the ack (the rendezvous is treated
   as already complete — both parties have committed);
3. every *nack* is discarded, rewinding its target to its communication
   state.

Fused request/reply pairs (section 3.3) add one genuinely new situation the
paper folds into rule 2 ("a repl message is treated as an ack"): between
the responder consuming the un-acked request and emitting the reply,
*nothing* for the requester is in flight.  The requester is then
**half-forwarded** — advanced past the request rendezvous to the
intermediate state whose sole pending offer is the reply input — which is a
legal rendezvous-level state (the request rendezvous happened; the reply
rendezvous has not).  The in-flight ``REPL`` itself fast-forwards the
requester through both rendezvous.

Fire-and-forget notifications (the hand-designed-protocol extension) are
*not* covered: the sender commits while the receiver may be arbitrarily far
from consuming, and no finite fast-forward reproduces a rendezvous state.
``abs`` raises :class:`AbstractionUndefined` for such states — this is
precisely the formal reason the paper's procedure keeps the LR ack that the
hand-designed Avalanche protocol drops, and the hand protocol is instead
validated by direct invariant/progress checking.
"""

from __future__ import annotations

from ..csp.ast import Output, ProcessDef
from ..csp.env import Env
from ..errors import ReproError
from ..semantics.asynchronous import AsyncState, AsyncSystem, TRANS
from ..semantics.network import ACK, NACK, NOTE, REPL, REQ, Channels, Msg
from ..semantics.state import ProcState, RvState

__all__ = ["AbstractionUndefined", "abstract_state"]


class AbstractionUndefined(ReproError):
    """``abs`` is not defined for this state.

    ``reason`` is a stable machine-readable tag the certificate checker
    dispatches on: the two ``note-*`` reasons are the *documented*
    fire-and-forget carve-out (hand-designed protocols only), while
    ``no-witness`` and ``no-reply-input`` indicate a transient state with
    no abstract preimage — a broken refinement, never a legal state of a
    paper-rule protocol.
    """

    REASON_NOTE_IN_FLIGHT = "note-in-flight"
    REASON_NOTE_BUFFERED = "note-buffered"
    REASON_NO_WITNESS = "no-witness"
    REASON_NO_REPLY_INPUT = "no-reply-input"

    def __init__(self, message: str,
                 reason: str = REASON_NO_WITNESS) -> None:
        super().__init__(message)
        self.reason = reason

    @property
    def is_note_carveout(self) -> bool:
        """True for the documented fire-and-forget undefinedness."""
        return self.reason in (self.REASON_NOTE_IN_FLIGHT,
                               self.REASON_NOTE_BUFFERED)


def abstract_state(system: AsyncSystem, state: AsyncState) -> RvState:
    """Apply the section 4 abstraction function to one asynchronous state."""
    _reject_notes(state)
    remotes = tuple(
        _abstract_remote(system, state, i) for i in range(system.n_remotes))
    home = _abstract_home(system, state)
    return RvState(home=home, remotes=remotes)


# ---------------------------------------------------------------------------


def _reject_notes(state: AsyncState) -> None:
    for _i, _direction, msg in state.channels.in_flight():
        if msg.kind == NOTE:
            raise AbstractionUndefined(
                "fire-and-forget message in flight; abs is only defined for "
                "protocols refined by the paper's (acknowledged) rules",
                reason=AbstractionUndefined.REASON_NOTE_IN_FLIGHT)
    if any(entry.note for entry in state.home.buffer):
        raise AbstractionUndefined(
            "fire-and-forget message buffered at home; abs undefined",
            reason=AbstractionUndefined.REASON_NOTE_BUFFERED)


def _abstract_remote(system: AsyncSystem, state: AsyncState,
                     i: int) -> ProcState:
    node = state.remotes[i]
    if node.mode != TRANS:
        return ProcState(state=node.state, env=node.env)

    out_guard = system.protocol.remote.state(node.state).outputs[
        node.pending_out or 0]
    down = state.channels.queues[Channels.to_remote(i)]

    ack = _find_kind(down, ACK)
    if ack is not None:
        # rule 2: fast-forward through the completed rendezvous
        return ProcState(state=out_guard.to,
                         env=out_guard.apply_update(node.env))
    repl = _find_kind(down, REPL)
    if repl is not None:
        return _forward_through_reply(system, node.env, out_guard, repl,
                                      sender=-1, process=system.protocol.remote)
    if _request_outstanding(system, state, i, out_guard):
        # rule 1/3: the request is still pending (or was nacked): rewind
        return ProcState(state=node.state, env=node.env)
    if out_guard.msg in system.plan.remote_fused_requests:
        # fused request already consumed by the home, reply not yet sent:
        # half-forward to the intermediate reply-waiting state
        return ProcState(state=out_guard.to,
                         env=out_guard.apply_update(node.env))
    raise AbstractionUndefined(
        f"remote r{i} transient on {out_guard.msg!r} with no witness "
        "message anywhere — semantics bug",
        reason=AbstractionUndefined.REASON_NO_WITNESS)


def _abstract_home(system: AsyncSystem, state: AsyncState) -> ProcState:
    home = state.home
    if home.mode != TRANS:
        return ProcState(state=home.state, env=home.env)

    assert home.awaiting is not None
    i = home.awaiting
    out_guard = system.protocol.home.state(home.state).outputs[
        home.pending_out or 0]
    up = state.channels.queues[Channels.to_home(i)]

    ack = _find_kind(up, ACK)
    if ack is not None:
        return ProcState(state=out_guard.to,
                         env=out_guard.apply_update(home.env))
    repl = _find_kind(up, REPL)
    if repl is not None:
        return _forward_through_reply(system, home.env, out_guard, repl,
                                      sender=i, process=system.protocol.home)
    # request still in flight toward the remote, dropped by a transient
    # remote, or nacked: in all cases rule 1/3 rewinds the home.
    return ProcState(state=home.state, env=home.env)


def _forward_through_reply(system: AsyncSystem, env: Env, out_guard: Output,
                           repl: Msg, sender: int,
                           process: ProcessDef) -> ProcState:
    """Fast-forward through a fused pair: request update, then reply input."""
    env = out_guard.apply_update(env)
    mid = process.state(out_guard.to)
    for guard in mid.inputs:
        if guard.msg == repl.msg and guard.accepts(env, sender, repl.payload):
            return ProcState(state=guard.to,
                             env=guard.complete(env, sender, repl.payload))
    raise AbstractionUndefined(
        f"no input guard in {mid.name!r} accepts the in-flight reply "
        f"{repl.describe()}",
        reason=AbstractionUndefined.REASON_NO_REPLY_INPUT)


def _request_outstanding(system: AsyncSystem, state: AsyncState, i: int,
                         out_guard: Output) -> bool:
    """Is remote ``i``'s request still pending (medium, buffer, or nacked)?"""
    up = state.channels.queues[Channels.to_home(i)]
    down = state.channels.queues[Channels.to_remote(i)]
    if any(m.kind == REQ and m.msg == out_guard.msg for m in up):
        return True
    if any(e.sender == i and e.msg == out_guard.msg and not e.note
           for e in state.home.buffer):
        return True
    if _find_kind(down, NACK) is not None:
        return True
    return False


def _find_kind(queue: tuple[Msg, ...], kind: str) -> Msg | None:
    for msg in queue:
        if msg.kind == kind:
            return msg
    return None
