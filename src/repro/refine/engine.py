"""The refinement procedure (paper section 3).

:func:`refine` is the paper's headline operation: given a *validated*
rendezvous protocol and a :class:`~repro.refine.plan.RefinementConfig`, it
produces a :class:`~repro.refine.plan.RefinedProtocol` — the asynchronous
protocol obtained by splitting every rendezvous into request + ack/nack,
introducing transient states, and (optionally) fusing request/reply pairs.

Because the transformation of Tables 1 and 2 is *uniform* — the transient
behaviour depends only on the shape of the communication state, never on
the protocol's meaning — the refined protocol is represented as the
original AST plus a plan; :class:`~repro.semantics.asynchronous.AsyncSystem`
interprets the pair operationally and :func:`repro.viz.dot.refined_dot`
materializes the transient states for display.  This mirrors the paper,
where Tables 1/2 are rule schemas applied on the fly, and keeps a single
authoritative implementation of the rules.

The engine performs all *static* work here:

* syntactic-restriction validation (section 2.4) — refinement soundness is
  only proven for the restricted protocol class;
* request/reply fusion detection and verification (section 3.3);
* sanity checks on fire-and-forget annotations (an extension used to model
  the hand-designed Avalanche protocol — see
  :mod:`repro.protocols.handwritten`).
"""

from __future__ import annotations

from ..analysis.manager import analyze_protocol, analyze_refined
from ..csp.ast import Input, Protocol
from ..errors import CertificateError, RefinementError, ValidationError
from .plan import FusedPair, RefinedProtocol, RefinementConfig, RefinementPlan
from .reqreply import _reject_overlaps, check_pair, detect_fusable_pairs

__all__ = ["refine"]


def refine(protocol: Protocol,
           config: RefinementConfig | None = None,
           *,
           fused_pairs: tuple[FusedPair, ...] | None = None) -> RefinedProtocol:
    """Refine ``protocol`` into an asynchronous protocol.

    :param config: refinement parameters; defaults to the paper's standard
        configuration (k = 2, request/reply fusion enabled, progress and
        ack buffers reserved).
    :param fused_pairs: explicitly chosen request/reply pairs.  By default
        (``None``) all statically fusable pairs are detected and applied
        when ``config.use_reqreply``; pass an explicit tuple to fuse only
        those (each is still verified against the section 3.3 conditions).
    :raises RefinementError: for unfusable explicit pairs or bad
        fire-and-forget annotations.
    :raises ValidationError: if the protocol violates the syntactic
        restrictions the soundness proof needs.
    """
    config = config or RefinementConfig()
    _gate_on_diagnostics(protocol, config)

    if not config.use_reqreply:
        if fused_pairs:
            raise RefinementError(
                "fused_pairs given but config.use_reqreply is False")
        fused: tuple[FusedPair, ...] = ()
    elif fused_pairs is None:
        fused = detect_fusable_pairs(
            protocol, strict_cycles=config.strict_reqreply_cycles)
    else:
        for pair in fused_pairs:
            reason = check_pair(protocol, pair,
                                strict_cycles=config.strict_reqreply_cycles)
            if reason is not None:
                raise RefinementError(
                    f"pair {pair.describe()} cannot be fused: {reason}")
        _reject_overlaps(list(fused_pairs))
        fused = tuple(fused_pairs)

    _check_fire_and_forget(protocol, config, fused)

    plan = RefinementPlan(config=config, fused=fused)
    refined = RefinedProtocol(protocol=protocol, plan=plan)
    _gate_on_certificate(refined)
    return refined


def _gate_on_diagnostics(protocol: Protocol,
                         config: RefinementConfig) -> None:
    """Refuse to refine on any error-severity diagnostic.

    The analysis suite subsumes the old :func:`validate_protocol` call:
    every section 2.4 restriction violation comes back as an error-level
    :class:`~repro.analysis.diagnostics.Diagnostic`, and any *future*
    error-severity pass automatically becomes a refinement precondition
    too.  The raised :class:`ValidationError` carries the structured
    records in ``exc.diagnostics``.
    """
    # include_param=False: the gate must stay a pure AST-level check —
    # the parameterized (P45xx) passes explore a witness instance and
    # never raise errors anyway
    report = analyze_protocol(protocol, config=config, include_param=False)
    errors = report.errors
    if errors:
        detail = "\n  - ".join(f"[{d.code}] {d.legacy_text}" for d in errors)
        raise ValidationError(
            f"protocol {protocol.name!r} violates the paper's syntactic "
            f"restrictions:\n  - {detail}",
            diagnostics=errors)


def _gate_on_certificate(refined: RefinedProtocol) -> None:
    """Refuse to emit a refined protocol that fails its own certificate.

    Runs only the refined-machine passes (the rendezvous AST was already
    vetted by :func:`_gate_on_diagnostics`): transient-state sanity and
    the P44xx simulation certificate, which discharges the paper's
    Equation 1 obligation for every transition schema instance.
    """
    report = analyze_refined(refined, include_protocol_passes=False)
    errors = report.errors
    if errors:
        detail = "\n  - ".join(f"[{d.code}] {d.legacy_text}" for d in errors)
        raise CertificateError(
            f"refined protocol {refined.name!r} fails its simulation "
            f"certificate:\n  - {detail}",
            diagnostics=errors)


def _check_fire_and_forget(protocol: Protocol, config: RefinementConfig,
                           fused: tuple[FusedPair, ...]) -> None:
    """Fire-and-forget annotations must name real, un-fused message types."""
    if not config.fire_and_forget:
        return
    known = protocol.message_types
    fused_msgs = {p.request_msg for p in fused} | {p.reply_msg for p in fused}
    for msg in sorted(config.fire_and_forget):
        if msg not in known:
            raise RefinementError(
                f"fire-and-forget message {msg!r} does not occur in "
                f"protocol {protocol.name!r}")
        if msg in fused_msgs:
            raise RefinementError(
                f"message {msg!r} cannot be both fire-and-forget and part "
                "of a fused request/reply pair")
        if _received_by_remote(protocol, msg):
            raise RefinementError(
                f"fire-and-forget message {msg!r} is received by the remote "
                "node; only remote-to-home notifications can skip the "
                "handshake (the home's buffer absorbs them)")


def _received_by_remote(protocol: Protocol, msg: str) -> bool:
    for state in protocol.remote.states.values():
        for guard in state.guards:
            if isinstance(guard, Input) and guard.msg == msg:
                return True
    return False
