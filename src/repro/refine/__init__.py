"""The paper's refinement procedure: engine, plans, fusion, abstraction."""

from .abstraction import AbstractionUndefined, abstract_state
from .engine import refine
from .plan import (
    HOME_SIDE,
    REMOTE,
    FusedPair,
    RefinedProtocol,
    RefinementConfig,
    RefinementPlan,
)
from .reqreply import check_pair, detect_fusable_pairs

__all__ = [
    "AbstractionUndefined", "FusedPair", "HOME_SIDE", "REMOTE",
    "RefinedProtocol", "RefinementConfig", "RefinementPlan",
    "abstract_state", "check_pair", "detect_fusable_pairs", "refine",
]
