"""Per-transition refinement metadata: the certificate the checker consumes.

Tables 1 and 2 of the paper are *rule schemas*: for every output guard of
the rendezvous AST the refinement introduces one transient state whose
behaviour is fully determined by four pieces of control data — where a
nack (or implicit nack) **rewinds** the sender to, where an ack
**fast-forwards** it to, and, for a fused request (section 3.3), which
reply message acknowledges it and which intermediate state must consume
that reply.  :func:`build_step_table` materializes exactly that data, one
:class:`TransitionSpec` per ``(role, state, output-index)``.

The table is the single source of truth for the executable semantics:
:class:`~repro.semantics.asynchronous.AsyncSystem` looks its control
targets up here instead of re-deriving them from the AST, so the
simulator, the model checker and the symbolic certificate checker of
:mod:`repro.analysis.simulation` all run the *same* transition schema —
there is nothing to drift.  The abstraction function of
:mod:`repro.refine.abstraction` deliberately does **not** read the table:
it stays AST/plan-driven ground truth, which is what lets the certificate
checker catch a corrupted table (a wrong rewind target makes the executed
step disagree with ``abs`` and fail its commutation obligation).

``StepTable.mutate`` is the sanctioned mutation hook the differential
test harness uses to seed faults (corrupt a rewind target, drop an ack by
pretending a pair fused) that both the symbolic checker and the
explicit-state explorer must detect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional

from ..errors import RefinementError, SemanticsError
from .plan import RefinedProtocol

__all__ = [
    "HOME",
    "KIND_NOTE",
    "KIND_REPLY",
    "KIND_REQUEST",
    "REMOTE",
    "StepTable",
    "TransitionSpec",
    "build_step_table",
]

#: Role markers (which process template owns the output guard).
HOME = "home"
REMOTE = "remote"

#: A request for rendezvous: gets the full transient-state machinery.
KIND_REQUEST = "request"
#: A fused reply (section 3.3): emitted without a handshake of its own.
KIND_REPLY = "reply"
#: A fire-and-forget notification: sent and forgotten, no transient.
KIND_NOTE = "note"


@dataclass(frozen=True)
class TransitionSpec:
    """Control data of one refined output guard (one Tables 1/2 row set).

    ``rewind_to`` is the communication state a nack / implicit nack
    returns the sender to (rule schema: the state the request was sent
    from), ``forward_to`` the state an ack fast-forwards it to (the
    guard's target state).  For a fused request, ``fused_reply`` names
    the reply message type that doubles as the ack and ``reply_to`` the
    intermediate state whose input guard consumes it; both are ``None``
    otherwise.
    """

    role: str
    state: str
    out_index: int
    msg: str
    kind: str
    rewind_to: str
    forward_to: str
    fused_reply: Optional[str] = None
    reply_to: Optional[str] = None

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.role, self.state, self.out_index)

    def describe(self) -> str:
        base = (f"{self.role}.{self.state}[{self.out_index}] !{self.msg} "
                f"({self.kind}): nack→{self.rewind_to} ack→{self.forward_to}")
        if self.fused_reply is not None:
            base += f" reply {self.fused_reply}@{self.reply_to}"
        return base


class StepTable:
    """All :class:`TransitionSpec` rows of one refined protocol, indexed."""

    def __init__(self, specs: tuple[TransitionSpec, ...]) -> None:
        self.specs = tuple(specs)
        self._index: dict[tuple[str, str, int], TransitionSpec] = {}
        for spec in self.specs:
            if spec.key in self._index:
                raise RefinementError(
                    f"duplicate transition spec for {spec.key!r}")
            self._index[spec.key] = spec
        # Derived lookups, precomputed once: the table is immutable
        # (``mutate`` builds a fresh table through this constructor), so
        # rebuilding these collections per property access was pure
        # allocation churn for every consumer.
        self.reply_of: dict[str, str] = {
            s.msg: s.fused_reply for s in self.specs
            if s.fused_reply is not None}
        self.reply_msgs: frozenset[str] = frozenset(
            s.msg for s in self.specs if s.kind == KIND_REPLY)
        self.notes: frozenset[str] = frozenset(
            s.msg for s in self.specs if s.kind == KIND_NOTE)
        self._fused_requests: dict[str, frozenset[str]] = {
            role: frozenset(s.msg for s in self.specs
                            if s.role == role and s.kind == KIND_REQUEST
                            and s.fused_reply is not None)
            for role in (HOME, REMOTE)}

    def __iter__(self) -> Iterator[TransitionSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def spec(self, role: str, state: str, out_index: int) -> TransitionSpec:
        try:
            return self._index[(role, state, out_index)]
        except KeyError:
            raise SemanticsError(
                f"no transition spec for {role}.{state}[{out_index}]; the "
                "step table does not cover this output guard") from None

    def get(self, role: str, state: str,
            out_index: int) -> Optional[TransitionSpec]:
        return self._index.get((role, state, out_index))

    # -- derived lookups (what AsyncSystem consults) -------------------------

    def fused_requests(self, role: str) -> frozenset[str]:
        """Request message types of ``role`` that a reply acknowledges."""
        return self._fused_requests.get(role, frozenset())

    # -- mutation hook (differential testing) --------------------------------

    def mutate(self, role: str, state: str, out_index: int,
               **changes: Any) -> "StepTable":
        """A copy of the table with one spec's fields replaced.

        This is the fault-injection hook of the differential harness:
        corrupting ``rewind_to``/``forward_to`` or fabricating a
        ``fused_reply`` yields a mutant semantics that the certificate
        checker must flag and explicit-state exploration must confirm.
        """
        target = self.spec(role, state, out_index)
        mutated = replace(target, **changes)
        return StepTable(tuple(mutated if s.key == target.key else s
                               for s in self.specs))


def build_step_table(refined: RefinedProtocol) -> StepTable:
    """Derive the Tables 1/2 control data for every output guard."""
    plan = refined.plan
    protocol = refined.protocol
    specs: list[TransitionSpec] = []
    for role, process in ((HOME, protocol.home), (REMOTE, protocol.remote)):
        for state in process.states.values():
            for idx, guard in enumerate(state.outputs):
                if guard.msg in plan.fire_and_forget:
                    kind, reply = KIND_NOTE, None
                elif guard.msg in plan.reply_msgs:
                    kind, reply = KIND_REPLY, None
                elif plan.is_fused_request(guard.msg,
                                           sender_is_home=(role == HOME)):
                    kind, reply = KIND_REQUEST, plan.reply_of[guard.msg]
                else:
                    kind, reply = KIND_REQUEST, None
                specs.append(TransitionSpec(
                    role=role, state=state.name, out_index=idx,
                    msg=guard.msg, kind=kind,
                    rewind_to=state.name, forward_to=guard.to,
                    fused_reply=reply,
                    reply_to=guard.to if reply is not None else None))
    return StepTable(tuple(specs))
