"""Static detection of request/reply pairs (paper section 3.3).

The generic refinement turns each rendezvous into two messages (request +
ack).  When two rendezvous ``m1``; ``m2`` form a request/reply exchange, the
acks of *both* can be elided, so the pair costs 2 messages instead of 4:

* the reply doubles as the ack of the request, and
* the requester is guaranteed to be waiting when the reply arrives, so the
  reply itself needs no ack.

The paper states the applicability condition syntactically: "If statements
``h!req(e)`` and ``h?repl(v)`` always appear together as ``h!req(e);
h?repl(v)`` in the remote node, and ``ri!repl`` always appears after
``ri?req`` in the home node, then the acks can be dropped" — and dually for
home-initiated pairs (``inv``/``ID``), where the responder must perform
"local actions only" between receiving the request and sending the reply.

This module implements that check conservatively:

**Remote-initiated pair (m1, m2)** — e.g. ``req``/``gr``:

* remote side: *every* ``Output(m1)`` guard's successor state consists of
  exactly one guard, an ``Input(m2)``;
* home side: for *every* ``Input(m1)`` guard (which must bind the sender to
  a variable ``v``), every path from its successor state reaches an
  ``Output(m2)`` targeting ``VarTarget(v)`` before: any other output to
  ``v``, any input restricted to ``v``, any rebinding of ``v``, or any
  cycle.  Rendezvous with *other* remotes in between are fine — that is
  exactly the migratory home's ``E -> I1 -> I3 -> gr`` path, which talks to
  the old owner before replying to the requester.

**Home-initiated pair (m1, m2)** — e.g. ``inv``/``ID``:

* home side: every ``Output(m1)`` guard targeting ``VarTarget(v)`` has a
  successor state containing an ``Input(m2)`` from ``VarSender(v)``
  (other guards may coexist there — they handle races via implicit nack);
* remote side: every ``Input(m1)`` guard's successor chain performs local
  actions only (internal states with a single tau) and ends in a state
  with exactly one guard, an ``Output(m2)``.

``detect_fusable_pairs`` returns all pairs passing these checks;
``check_pair`` validates one explicitly requested pair and explains any
failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..csp.ast import (
    Input,
    Output,
    ProcessDef,
    Protocol,
    StateDef,
    VarSender,
    VarTarget,
)
from ..errors import RefinementError
from .plan import HOME_SIDE, REMOTE, FusedPair

__all__ = [
    "ConditionResult",
    "PairReport",
    "candidate_pairs",
    "check_pair",
    "choose_pairs",
    "detect_fusable_pairs",
    "explain_pair",
    "fusability_report",
]


@dataclass(frozen=True)
class ConditionResult:
    """Outcome of one section 3.3 applicability condition for one pair."""

    condition: str  # short name, e.g. "requester-adjacency"
    ok: bool
    reason: Optional[str] = None  # failure explanation when not ok

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL ({self.reason})"
        return f"{self.condition}: {status}"


@dataclass(frozen=True)
class PairReport:
    """Per-condition fusability verdict for one candidate pair.

    This is the structured form of :func:`check_pair`: instead of the
    first failure only, every section 3.3 condition is evaluated and
    named, so authors can see exactly *which* requirement their protocol
    misses (the ``repro lint`` fusability report renders these).
    """

    pair: FusedPair
    conditions: tuple[ConditionResult, ...]

    @property
    def fusable(self) -> bool:
        return all(c.ok for c in self.conditions)

    @property
    def failures(self) -> tuple[ConditionResult, ...]:
        return tuple(c for c in self.conditions if not c.ok)

    def describe(self) -> str:
        verdict = "fusable" if self.fusable else "NOT fusable"
        body = "; ".join(c.describe() for c in self.conditions)
        return f"{self.pair.describe()}: {verdict} [{body}]"


def explain_pair(protocol: Protocol, pair: FusedPair,
                 strict_cycles: bool = False) -> PairReport:
    """Evaluate every section 3.3 condition for ``pair`` independently.

    Unlike :func:`check_pair` (which stops at the first failure), all
    conditions are checked so the report names each one that fails.
    """
    conditions: list[ConditionResult] = []

    def run(name: str, reason: Optional[str]) -> None:
        conditions.append(ConditionResult(condition=name, ok=reason is None,
                                          reason=reason))

    if pair.requester == REMOTE:
        run("requester-adjacency (remote h!req; h?repl)",
            _check_requester_adjacency(protocol.remote, pair,
                                       remote_side=True))
        run("home-responder reply path (ri!repl after ri?req)",
            _check_home_responder(protocol.home, pair, strict_cycles))
        run("reply domination (no unsolicited repl)",
            _check_reply_domination(protocol.home, pair))
    elif pair.requester == HOME_SIDE:
        run("requester-adjacency (home ri!req; ri?repl)",
            _check_requester_adjacency(protocol.home, pair,
                                       remote_side=False))
        run("remote-responder local actions only",
            _check_remote_responder(protocol.remote, pair))
    else:
        run("requester side", f"unknown requester side {pair.requester!r}")
    return PairReport(pair=pair, conditions=tuple(conditions))


def fusability_report(protocol: Protocol,
                      strict_cycles: bool = False) -> tuple[PairReport, ...]:
    """Section 3.3 report over every candidate request/reply pair.

    Candidates come from requester-side adjacency in both directions (the
    same generation :func:`detect_fusable_pairs` uses), so a pair appears
    here exactly when the protocol *syntactically suggests* it; each is
    then explained condition by condition.
    """
    return tuple(explain_pair(protocol, pair, strict_cycles=strict_cycles)
                 for pair in candidate_pairs(protocol))


def detect_fusable_pairs(protocol: Protocol,
                         strict_cycles: bool = False) -> tuple[FusedPair, ...]:
    """A maximal set of request/reply pairs the section 3.3 optimization
    applies to.

    Fusable pairs can *chain* — in a lock protocol ``acq``/``ok`` and
    ``ok``/``rel`` may both pass the static checks, with ``ok`` playing
    reply in one and request in the other.  Chained fusions are not
    supported by the message model (a single wire message cannot be both a
    ``REPL`` and an ack-eliding ``REQ``), so detection picks a maximal
    non-overlapping subset greedily, in a deterministic order:
    remote-initiated pairs first (the paper's primary ``req``/``repl``
    shape), then home-initiated, alphabetically within each group.
    Explicitly requested overlapping pairs (``refine(fused_pairs=...)``)
    are an error instead — the user should choose.

    ``strict_cycles=True`` additionally rejects pairs whose home-side reply
    path passes through a cycle (see :func:`check_pair`).
    """
    return choose_pairs(fusability_report(protocol,
                                          strict_cycles=strict_cycles))


def choose_pairs(reports: tuple[PairReport, ...]) -> tuple[FusedPair, ...]:
    """The maximal non-overlapping fused subset of explained candidates.

    This is the selection half of :func:`detect_fusable_pairs`, split out
    so callers holding the (expensive) per-pair reports — the analysis
    pass manager caches one set per protocol — can pick the fused pairs
    without re-running :func:`explain_pair`.  The greedy order is the
    engine's: remote-initiated first, then alphabetical.
    """
    candidates = [report.pair for report in reports if report.fusable]
    candidates.sort(key=lambda p: (p.requester != REMOTE,
                                   p.request_msg, p.reply_msg))
    pairs: list[FusedPair] = []
    used: set[str] = set()
    for pair in candidates:
        if pair.request_msg in used or pair.reply_msg in used:
            continue
        used.update((pair.request_msg, pair.reply_msg))
        pairs.append(pair)
    return tuple(pairs)


def check_pair(protocol: Protocol, pair: FusedPair,
               strict_cycles: bool = False) -> Optional[str]:
    """Return ``None`` if ``pair`` is fusable, else a reason string.

    ``strict_cycles`` controls how home-side reply paths through *cycles*
    are treated.  A cycle before the reply (e.g. the invalidate protocol's
    "invalidate one sharer at a time" loop between consuming ``reqW`` and
    replying ``grW``) means the *syntactic* check cannot bound when the
    reply happens.  The paper's condition ("``ri!repl`` always appears
    after ``ri?req``") is about ordering, not termination, so by default
    such cycles are accepted — every loop a correct protocol contains
    terminates (here: the sharer set strictly shrinks), and a protocol
    whose loop did not terminate would fail the *dynamic* progress check
    (:func:`repro.check.properties.check_progress`) regardless of fusion.
    Pass ``strict_cycles=True`` to refuse the optimization in that case and
    fall back to the always-safe plain request/ack refinement.
    """
    if pair.requester == REMOTE:
        reason = _check_requester_adjacency(
            protocol.remote, pair, remote_side=True)
        reason = reason or _check_home_responder(protocol.home, pair,
                                                 strict_cycles)
        return reason or _check_reply_domination(protocol.home, pair)
    if pair.requester == HOME_SIDE:
        reason = _check_requester_adjacency(
            protocol.home, pair, remote_side=False)
        return reason or _check_remote_responder(protocol.remote, pair)
    return f"unknown requester side {pair.requester!r}"


# ---------------------------------------------------------------------------
# candidate generation
# ---------------------------------------------------------------------------


def candidate_pairs(protocol: Protocol) -> Iterator[FusedPair]:
    """Guess (m1, m2) pairs from requester-side adjacency, both directions."""
    seen: set[tuple[str, str, str]] = set()
    for requester, process in ((REMOTE, protocol.remote),
                               (HOME_SIDE, protocol.home)):
        for state in process.states.values():
            for guard in state.outputs:
                for reply in _adjacent_reply_msgs(
                        process, guard, remote_side=requester == REMOTE):
                    key = (guard.msg, reply, requester)
                    if key not in seen:
                        seen.add(key)
                        yield FusedPair(request_msg=guard.msg,
                                        reply_msg=reply, requester=requester)


def _adjacent_reply_msgs(process: ProcessDef, guard: Output,
                         remote_side: bool) -> tuple[str, ...]:
    """Message types of inputs immediately following ``guard``."""
    succ = process.state(guard.to)
    if remote_side:
        if len(succ.guards) == 1 and isinstance(succ.guards[0], Input):
            return (succ.guards[0].msg,)
        return ()
    # home side: the reply input must come from the same remote the request
    # went to; other guards may coexist (they resolve races, e.g. the
    # migratory home's LR-vs-ID race after sending inv).
    if not isinstance(guard.target, VarTarget):
        return ()
    return tuple(candidate.msg for candidate in succ.inputs
                 if isinstance(candidate.sender, VarSender)
                 and candidate.sender.var == guard.target.var)


def _reject_overlaps(pairs: list[FusedPair]) -> None:
    """A message type may play only one role across all fused pairs."""
    roles: dict[str, str] = {}
    for pair in pairs:
        for msg, role in ((pair.request_msg, "request"),
                          (pair.reply_msg, "reply")):
            if roles.setdefault(msg, role) != role:
                raise RefinementError(
                    f"message {msg!r} would be both a fused request and a "
                    "fused reply; such chained fusions are not supported"
                )


# ---------------------------------------------------------------------------
# requester-side checks
# ---------------------------------------------------------------------------


def _check_requester_adjacency(process: ProcessDef, pair: FusedPair,
                               remote_side: bool) -> Optional[str]:
    """Every Output(m1) must be immediately followed by the Input(m2)."""
    found = False
    for state in process.states.values():
        for guard in state.outputs:
            if guard.msg != pair.request_msg:
                continue
            found = True
            replies = _adjacent_reply_msgs(process, guard, remote_side)
            if pair.reply_msg not in replies:
                return (f"{process.name}.{state.name}: output "
                        f"{pair.request_msg!r} is not immediately followed "
                        f"by input {pair.reply_msg!r}")
            if remote_side:
                continue
            # home requester: target must be a VarTarget so we can match the
            # reply input to the same remote
            if not isinstance(guard.target, VarTarget):
                return (f"{process.name}.{state.name}: fused home request "
                        f"{pair.request_msg!r} needs a variable target")
    if not found:
        return f"{process.name} never sends {pair.request_msg!r}"
    return None


# ---------------------------------------------------------------------------
# responder-side checks
# ---------------------------------------------------------------------------


def _check_remote_responder(remote: ProcessDef, pair: FusedPair) -> Optional[str]:
    """Remote consumes m1, does local work only, then its sole guard is m2."""
    found = False
    for state in remote.states.values():
        for guard in state.inputs:
            if guard.msg != pair.request_msg:
                continue
            found = True
            cursor = remote.state(guard.to)
            hops = 0
            while cursor.is_internal and len(cursor.guards) == 1:
                cursor = remote.state(cursor.guards[0].to)
                hops += 1
                if hops > len(remote.states):
                    return (f"{remote.name}: internal loop after consuming "
                            f"{pair.request_msg!r}")
            if not (len(cursor.guards) == 1
                    and isinstance(cursor.guards[0], Output)
                    and cursor.guards[0].msg == pair.reply_msg):
                return (f"{remote.name}.{state.name}: consuming "
                        f"{pair.request_msg!r} does not lead (via local "
                        f"actions only) to a sole output {pair.reply_msg!r}")
    if not found:
        return f"{remote.name} never receives {pair.request_msg!r}"
    return None


def _check_home_responder(home: ProcessDef, pair: FusedPair,
                          strict_cycles: bool) -> Optional[str]:
    """Every home path from consuming m1(j) reaches Output(m2 -> j) safely."""
    found = False
    for state in home.states.values():
        for guard in state.inputs:
            if guard.msg != pair.request_msg:
                continue
            found = True
            if guard.bind_sender is None:
                return (f"{home.name}.{state.name}: input "
                        f"{pair.request_msg!r} does not bind its sender, so "
                        "the reply target cannot be tracked")
            reason = _all_paths_reply(home, home.state(guard.to),
                                      guard.bind_sender, pair, strict_cycles)
            if reason is not None:
                return reason
    if not found:
        return f"{home.name} never receives {pair.request_msg!r}"
    return None


def _check_reply_domination(home: ProcessDef, pair: FusedPair) -> Optional[str]:
    """Every emission of the reply must answer a pending fused request.

    This is the other half of the paper's condition "``ri!repl`` always
    appears *after* ``ri?req``": if the home can reach an ``Output(m2)``
    along a path on which no un-answered ``m1`` consumption is pending, it
    would emit an unsolicited ``REPL`` at a remote that is not waiting —
    the asynchronous semantics would (rightly) fault.  Found by
    property-based testing on random protocols.

    We track the number of pending (consumed-but-unanswered) requests per
    reachable ``(state, count)`` pair, saturating counts at 2; a reply
    emitted at count 0 rejects the pair.
    """
    from collections import deque

    initial = (home.initial_state, 0)
    seen = {initial}
    queue = deque([initial])
    while queue:
        state_name, count = queue.popleft()
        for guard in home.state(state_name).guards:
            nxt = count
            if isinstance(guard, Input) and guard.msg == pair.request_msg:
                nxt = min(2, count + 1)
            elif isinstance(guard, Output) and guard.msg == pair.reply_msg:
                if count == 0:
                    return (f"{home.name}.{state_name}: reply "
                            f"{pair.reply_msg!r} can be emitted with no "
                            f"pending {pair.request_msg!r} consumption")
                nxt = count - 1
            successor = (guard.to, nxt)
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return None


def _all_paths_reply(home: ProcessDef, start: StateDef, var: str,
                     pair: FusedPair, strict_cycles: bool) -> Optional[str]:
    """DFS: every path from ``start`` replies to ``var`` before touching it.

    "Touching" means another output to the same remote, an input restricted
    to it, or rebinding the variable — any of which would break the
    requester's silent wait.  Cycles before the reply are rejected only
    under ``strict_cycles`` (see :func:`check_pair`); otherwise a revisited
    state simply closes that path (the loop is assumed to terminate).
    """
    seen: set[str] = set()

    def visit(state: StateDef) -> Optional[str]:
        if state.name in seen:
            if strict_cycles:
                return (f"{home.name}.{state.name}: cycle reachable before "
                        f"replying {pair.reply_msg!r} to the requester")
            return None
        seen.add(state.name)
        try:
            if state.is_terminal:
                return (f"{home.name}.{state.name}: dead end before replying "
                        f"{pair.reply_msg!r}")
            for guard in state.guards:
                if isinstance(guard, Output):
                    targets_var = (isinstance(guard.target, VarTarget)
                                   and guard.target.var == var)
                    if targets_var and guard.msg == pair.reply_msg:
                        continue  # this branch replied; done
                    if targets_var:
                        return (f"{home.name}.{state.name}: sends "
                                f"{guard.msg!r} to the requester before the "
                                f"{pair.reply_msg!r} reply")
                elif isinstance(guard, Input):
                    if (isinstance(guard.sender, VarSender)
                            and guard.sender.var == var):
                        return (f"{home.name}.{state.name}: waits on the "
                                "silently-blocked requester before replying")
                    if guard.bind_sender == var:
                        return (f"{home.name}.{state.name}: rebinds "
                                f"{var!r} before replying")
                reason = visit(home.state(guard.to))
                if reason is not None:
                    return reason
            return None
        finally:
            seen.discard(state.name)

    return visit(start)
