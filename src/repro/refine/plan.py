"""Refinement configuration and plan records.

:class:`RefinementConfig` collects every knob the paper's refinement
procedure exposes (plus ablation switches used by the benchmark suite to
demonstrate *why* each mechanism exists):

* ``home_buffer_capacity`` — the paper's ``k >= 2`` home message buffer.
* ``use_reqreply`` — apply the section 3.3 request/reply (ack elision)
  optimization where statically applicable.
* ``reserve_progress_buffer`` — keep the last buffer slot for requests that
  can complete a rendezvous in the home's current state (section 3.2;
  switching this off reintroduces the livelock the paper describes).
* ``reserve_ack_buffer`` — reserve a slot for the awaited remote's message
  while the home is in a transient state (rows T4-T6; switching this off
  can deadlock the implicit-nack path).
* ``fire_and_forget`` — message types sent without any ack/nack handshake,
  modelling the hand-designed Avalanche protocol whose only difference from
  the refined protocol is an unacknowledged ``LR`` (the "dotted lines" of
  the paper's Figures 4-5).

:class:`RefinementPlan` is the engine's *output* metadata: which message
types travel as fused requests, which as replies, plus the config.  The
asynchronous semantics interprets the original rendezvous AST under this
plan; the visualization layer materializes the transient states explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..csp.ast import Protocol
from ..errors import RefinementError

__all__ = ["RefinementConfig", "FusedPair", "RefinementPlan", "RefinedProtocol",
           "REMOTE", "HOME_SIDE"]

#: Requester-side markers for :class:`FusedPair`.
REMOTE = "remote"
HOME_SIDE = "home"


@dataclass(frozen=True)
class RefinementConfig:
    """Tunable parameters of the refinement procedure."""

    home_buffer_capacity: int = 2
    use_reqreply: bool = True
    #: refuse request/reply fusion when the home's reply path contains a
    #: loop (see :func:`repro.refine.reqreply.check_pair`)
    strict_reqreply_cycles: bool = False
    reserve_progress_buffer: bool = True
    reserve_ack_buffer: bool = True
    fire_and_forget: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.home_buffer_capacity < 2:
            raise RefinementError(
                "the home node needs a buffer of capacity k >= 2 "
                f"(got {self.home_buffer_capacity}); see paper section 3.2"
            )


@dataclass(frozen=True)
class FusedPair:
    """One request/reply pair fused by the section 3.3 optimization.

    ``requester`` names the side that sends ``request_msg`` (and therefore
    receives ``reply_msg``): :data:`REMOTE` for ``req``/``gr``-style pairs,
    :data:`HOME_SIDE` for ``inv``/``ID``-style pairs.
    """

    request_msg: str
    reply_msg: str
    requester: str

    def describe(self) -> str:
        return f"{self.request_msg}/{self.reply_msg} ({self.requester}-initiated)"


@dataclass(frozen=True)
class RefinementPlan:
    """Everything the asynchronous semantics needs beyond the rendezvous AST."""

    config: RefinementConfig = field(default_factory=RefinementConfig)
    fused: tuple[FusedPair, ...] = ()

    # -- derived lookups -----------------------------------------------------

    @property
    def reply_of(self) -> Mapping[str, str]:
        """request message type -> reply message type, both directions."""
        return {pair.request_msg: pair.reply_msg for pair in self.fused}

    @property
    def remote_fused_requests(self) -> frozenset[str]:
        return frozenset(p.request_msg for p in self.fused if p.requester == REMOTE)

    @property
    def home_fused_requests(self) -> frozenset[str]:
        return frozenset(p.request_msg for p in self.fused
                         if p.requester == HOME_SIDE)

    @property
    def reply_msgs(self) -> frozenset[str]:
        return frozenset(p.reply_msg for p in self.fused)

    @property
    def fire_and_forget(self) -> frozenset[str]:
        return self.config.fire_and_forget

    def is_fused_request(self, msg: str, sender_is_home: bool) -> bool:
        if sender_is_home:
            return msg in self.home_fused_requests
        return msg in self.remote_fused_requests

    def describe(self) -> str:
        parts = [f"k={self.config.home_buffer_capacity}"]
        if self.fused:
            parts.append("fused: " + ", ".join(p.describe() for p in self.fused))
        if self.fire_and_forget:
            parts.append("fire-and-forget: " + ", ".join(sorted(self.fire_and_forget)))
        if not self.config.reserve_progress_buffer:
            parts.append("NO progress buffer (ablation)")
        if not self.config.reserve_ack_buffer:
            parts.append("NO ack buffer (ablation)")
        return "; ".join(parts)


@dataclass(frozen=True)
class RefinedProtocol:
    """A rendezvous protocol together with its refinement plan.

    This is the executable artifact the paper's procedure produces: feed it
    to :class:`~repro.semantics.asynchronous.AsyncSystem` to run/verify the
    asynchronous protocol, or to :mod:`repro.viz` to draw the refined state
    machines of Figures 4-5.
    """

    protocol: Protocol
    plan: RefinementPlan = field(default_factory=RefinementPlan)

    @property
    def name(self) -> str:
        return f"{self.protocol.name}-async"

    def describe(self) -> str:
        return f"{self.name} [{self.plan.describe()}]"
