"""Command-line interface: ``python -m repro <command>`` or ``repro <command>``.

Commands:

* ``verify``   — model-check a library protocol at a given level/node count
  (``--symmetry`` explores one representative per remote-permutation orbit).
* ``check``    — the raw reachability sweep with the performance knobs:
  ``--store fingerprint`` for SPIN-style hash compaction (~16 bytes/state,
  collision-counted), ``--engine compiled`` for the protocol-specialized
  step engine (identical counts, several times faster on async spaces),
  ``--parallel``/``--workers`` for multi-process frontier expansion,
  ``--levels`` for per-level progress lines, and ``--profile out.json``
  for a machine-readable run profile.
* ``lint``     — run the static-analysis suite (section 2.4 restrictions,
  reachability, guard overlap, fusability, buffer demand, transients,
  the P44xx simulation certificate, the P45xx parameterized flow
  analysis) and print structured diagnostics (``--json`` for machines,
  ``--format sarif`` for code-scanning upload, ``--strict`` to fail on
  warnings, ``--select CODE`` / ``--ignore CODE`` to filter — both
  accept family prefixes such as ``P45``).
* ``flows``    — derive the message-flow graph and print the
  parameterized deadlock-freedom verdict (``--json`` for machines,
  ``--dot`` for Graphviz, ``--strict`` to fail unless discharged).
* ``paramverify`` — the parameterized coherence verdict (P46xx):
  discharge single-writer/SWMR for every node count through the
  flow-strengthened environment abstraction, or show the concrete
  two-node refutation witness as an MSC.
* ``refine``   — print the refinement plan and the refined state machines.
* ``simulate`` — run the discrete-event simulator and print metrics
  (``--msc N`` renders a message-sequence chart of the first N events).
* ``soundness``— check Equation 1 (weak simulation) exhaustively.
* ``table3``   — regenerate the paper's Table 3 (states/time, both levels).
* ``pool``     — the section 6 multi-line shared-buffer-pool study.

Examples::

    repro verify migratory --level rendezvous -n 8 --progress
    repro verify invalidate -n 6 --symmetry
    repro check migratory --level async -n 3 --store fingerprint --levels
    repro check invalidate --level async -n 3 --engine compiled --levels
    repro check migratory --level async -n 4 --parallel --profile out.json
    repro lint migratory --json
    repro lint all -n 8 --strict
    repro lint msi --select P45
    repro lint all --format sarif > lint.sarif
    repro flows invalidate
    repro flows all --json
    repro paramverify mesi
    repro paramverify all --json --strict
    repro refine invalidate --figures
    repro simulate migratory -n 8 --workload hot --until 50000
    repro simulate migratory -n 3 --until 500 --msc 12
    repro soundness msi -n 2
    repro table3 --budget 200000
    repro pool migratory --lines 64
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from . import __version__
from .check.explorer import explore
from .check.properties import check_progress
from .check.store import STORE_NAMES
from .check.simulation import check_simulation
from .protocols.handwritten import handwritten_migratory
from .protocols.invalidate import invalidate_protocol
from .protocols.invariants import (
    COHERENCE_SPECS,
    async_structural_invariants,
    coherence_invariants,
)
from .protocols.mesi import mesi_protocol
from .protocols.migratory import migratory_protocol
from .protocols.msi import msi_protocol
from .refine.engine import refine
from .refine.plan import RefinementConfig
from .semantics.asynchronous import ENGINE_NAMES, AsyncSystem
from .semantics.rendezvous import RendezvousSystem
from .sim.engine import Simulator
from .sim.workload import HotLineWorkload, SyntheticWorkload
from .viz.ascii import process_ascii, protocol_summary, refined_ascii
from .viz.dot import refined_dot

PROTOCOLS: dict[str, Callable] = {
    "mesi": mesi_protocol,
    "migratory": migratory_protocol,
    "invalidate": invalidate_protocol,
    "msi": msi_protocol,
}

def _build(name: str):
    try:
        return PROTOCOLS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown protocol {name!r}; choose from "
            f"{', '.join(sorted(PROTOCOLS))}") from None


def _config(args) -> RefinementConfig:
    return RefinementConfig(
        home_buffer_capacity=args.buffer,
        use_reqreply=not args.no_reqreply,
        reserve_progress_buffer=not args.no_progress_buffer,
        fire_and_forget=(frozenset({"LR"}) if getattr(args, "hand", False)
                         else frozenset()),
    )


def cmd_verify(args) -> int:
    _reject_rendezvous_por(args)
    _reject_rendezvous_engine(args)
    protocol = _build(args.protocol)
    invariants = list(coherence_invariants(COHERENCE_SPECS[args.protocol]))
    if args.level == "rendezvous":
        system = RendezvousSystem(protocol, args.nodes)
    else:
        refined = refine(protocol, _config(args))
        invariants += async_structural_invariants(args.buffer)
        system = AsyncSystem(refined, args.nodes, engine=args.engine)
    base_system = system
    reductions = []
    if args.por:
        from .check.por import PRESERVE_INVARIANTS, PORSystem
        system = PORSystem(system, preserve=PRESERVE_INVARIANTS)
        reductions.append("por")
    if args.symmetry:
        from .check.symmetry import SymmetricSystem
        from .protocols.symmetry import symmetry_spec_for
        system = SymmetricSystem(system, symmetry_spec_for(args.protocol))
        reductions.append("symmetry")
    result = explore(system, name=f"{args.protocol}-{args.level}-{args.nodes}",
                     invariants=invariants, max_states=args.budget,
                     max_seconds=args.timeout,
                     reductions=tuple(reductions))
    print(result.describe())
    for violation in result.violations:
        print(violation.describe())
    for deadlock in result.deadlocks[:1]:
        print(deadlock.describe())
    if args.progress:
        # SCC-based progress distinguishes remote identities in its edge
        # labels, so it always runs on the unreduced system.
        print(check_progress(base_system, max_states=args.budget).describe())
    return 0 if result.ok else 1


def _reject_rendezvous_por(args) -> None:
    if args.por and args.level == "rendezvous":
        raise SystemExit(
            "--por prunes asynchronous message interleavings; the "
            "rendezvous level has none (use --level async, or drop --por)")


def _reject_rendezvous_engine(args) -> None:
    if args.engine == "compiled" and args.level == "rendezvous":
        raise SystemExit(
            "--engine compiled specializes the asynchronous transition "
            "table; the rendezvous level has only the interpreted engine "
            "(use --level async, or drop --engine)")


_SIZE_UNITS = {"": 1, "B": 1,
               "K": 1 << 10, "KB": 1 << 10, "KIB": 1 << 10,
               "M": 1 << 20, "MB": 1 << 20, "MIB": 1 << 20,
               "G": 1 << 30, "GB": 1 << 30, "GIB": 1 << 30}


def parse_bytes(text: str) -> int:
    """Parse a human byte size: ``64MiB``, ``512K``, ``2G``, ``4096``.

    Units are binary (K = KiB = 1024) — this knob emulates the paper's
    64 MB memory allotment, where nobody means decimal megabytes.
    """
    cleaned = text.strip().upper()
    split = len(cleaned)
    while split and not cleaned[split - 1].isdigit():
        split -= 1
    digits, unit = cleaned[:split], cleaned[split:].strip()
    if not digits or unit not in _SIZE_UNITS:
        raise SystemExit(
            f"unparseable size {text!r}; use e.g. 64MiB, 512K, 2G, 4096")
    return int(digits) * _SIZE_UNITS[unit]


def cmd_check(args) -> int:
    from .check.observe import JsonProfileWriter, MultiObserver, ProgressRenderer
    from .check.parallel import SystemSpec, build_system, explore_parallel
    from .check.partitioned import explore_partitioned
    from .check.store import make_partitioned_store

    _reject_rendezvous_por(args)
    _reject_rendezvous_engine(args)
    if args.spill_dir is not None and args.partitions is None:
        raise SystemExit("--spill-dir needs --partitions (only partitioned "
                         "stores have a disk tier)")
    if args.spill_dir is not None and args.store != "fingerprint":
        raise SystemExit("--spill-dir applies to --store fingerprint; the "
                         "delta-compressed exact store keeps keys resident")
    max_bytes = (parse_bytes(args.memory_limit)
                 if args.memory_limit is not None else None)

    observers = []
    if args.levels:
        observers.append(ProgressRenderer())
    if args.profile:
        observers.append(JsonProfileWriter(args.profile))
    observer = MultiObserver(*observers) if observers else None

    config = (
        ("home_buffer_capacity", args.buffer),
        ("use_reqreply", not args.no_reqreply),
        ("reserve_progress_buffer", not args.no_progress_buffer),
    )
    spec = SystemSpec(protocol=args.protocol, level=args.level,
                      n_remotes=args.nodes,
                      config=config if args.level == "async" else (),
                      symmetry=args.symmetry, por=args.por,
                      engine=args.engine)
    parallel = args.parallel or args.workers is not None
    if args.partitions is not None and parallel:
        # owner-computes: one worker process owns each partition
        result = explore_partitioned(
            spec, partitions=args.partitions, max_states=args.budget,
            max_seconds=args.timeout, max_bytes=max_bytes,
            store=args.store, spill_dir=args.spill_dir,
            spill_threshold=args.spill_threshold, observer=observer)
    elif args.partitions is not None:
        # in-process sharding: one store, P fingerprint ranges
        result = explore(
            build_system(spec),
            name=f"{args.protocol}-{args.level}-{args.nodes}",
            max_states=args.budget, max_seconds=args.timeout,
            max_bytes=max_bytes,
            store=make_partitioned_store(
                args.store, args.partitions, spill_dir=args.spill_dir,
                spill_threshold=args.spill_threshold),
            observer=observer, reductions=spec.reductions())
    elif parallel:
        result = explore_parallel(spec, workers=args.workers,
                                  max_states=args.budget,
                                  max_seconds=args.timeout,
                                  max_bytes=max_bytes,
                                  store=args.store, observer=observer)
    else:
        result = explore(build_system(spec),
                         name=f"{args.protocol}-{args.level}-{args.nodes}",
                         max_states=args.budget, max_seconds=args.timeout,
                         max_bytes=max_bytes,
                         store=args.store, observer=observer,
                         reductions=spec.reductions())
    print(result.describe())
    if args.profile:
        print(f"[profile written to {args.profile}]")
    return 0 if result.completed else 1


def cmd_lint(args) -> int:
    from .analysis import Severity, analyze_protocol, analyze_refined
    from .analysis.diagnostics import expand_codes
    from .errors import RefinementError, ValidationError

    try:
        selected = expand_codes(args.select)
        ignored = expand_codes(args.ignore)
    except KeyError as exc:
        raise SystemExit(
            f"{exc.args[0]}; see docs/ANALYSIS.md for the catalogue"
        ) from None
    overlap = sorted(selected & ignored)
    if overlap:
        raise SystemExit(
            f"code(s) both selected and ignored: {', '.join(overlap)}")
    names = sorted(PROTOCOLS) if args.protocol == "all" else [args.protocol]
    try:
        config = _config(args)
    except RefinementError as exc:
        raise SystemExit(str(exc)) from None
    fmt = args.format if args.format != "text" or not args.json else "json"
    worst: Optional[Severity] = None
    reports = []
    for name in names:
        protocol = _build(name)
        try:
            # analyze the *refined* protocol so the transient-state pass
            # runs too; refinement is purely static and cheap.
            report = analyze_refined(refine(protocol, config),
                                     nodes=args.nodes)
        except ValidationError:
            # unrefinable: report the protocol-level diagnostics instead
            report = analyze_protocol(protocol, config=config,
                                      nodes=args.nodes)
        if selected:
            report = report.select(selected)
        if ignored:
            report = report.ignore(ignored)
        severity = report.max_severity
        if severity is not None and (worst is None or severity > worst):
            worst = severity
        reports.append(report)
    if fmt == "sarif":
        from .analysis.sarif import render_sarif
        print(render_sarif(reports))
    elif fmt == "json":
        outputs = [report.render_json() for report in reports]
        if len(outputs) > 1:
            # one parseable document, not concatenated ones (CI consumes this)
            print("[" + ",\n".join(outputs) + "]")
        else:
            print("\n\n".join(outputs))
    else:
        print("\n\n".join(report.render_text() for report in reports))
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if worst is not None and worst >= threshold else 0


def cmd_flows(args) -> int:
    import json

    from .analysis.flows import derive_flows
    from .analysis.paramcheck import check_parameterized
    from .errors import RefinementError

    names = sorted(PROTOCOLS) if args.protocol == "all" else [args.protocol]
    try:
        config = _config(args)
    except RefinementError as exc:
        raise SystemExit(str(exc)) from None
    all_discharged = True
    outputs = []
    for name in names:
        protocol = _build(name)
        graph = derive_flows(protocol, config=config)
        if args.dot:
            from .viz.dot import flow_dot
            outputs.append(flow_dot(graph))
            all_discharged = all_discharged and graph.complete
            continue
        verdict = check_parameterized(protocol, graph=graph, config=config,
                                      witness_nodes=args.witness_nodes)
        all_discharged = all_discharged and verdict.discharged
        if args.json:
            doc = graph.as_dict()
            doc["paramcheck"] = verdict.as_dict()
            outputs.append(json.dumps(doc, indent=2))
        else:
            lines = [graph.describe(),
                     f"parameterized verdict: {verdict.verdict} "
                     f"({len(verdict.invariants)} invariant(s) on the "
                     f"n={verdict.witness_nodes} witness, "
                     f"{verdict.witness_states} state(s))"]
            lines.extend(f"  {d.render()}" for d in verdict.obligations)
            outputs.append("\n".join(lines))
    if args.json and len(outputs) > 1:
        # one parseable document, not concatenated ones (CI consumes this)
        print("[" + ",\n".join(outputs) + "]")
    else:
        print("\n\n".join(outputs))
    return 0 if all_discharged or not args.strict else 1


def cmd_paramverify(args) -> int:
    import json

    if args.engine == "compiled":
        raise SystemExit(
            "--engine compiled specializes the asynchronous transition "
            "table; paramverify explores the environment abstraction at "
            "the rendezvous level, where only the interpreted engine "
            "exists (use 'repro check --level async --engine compiled' "
            "for concrete sweeps)")

    from .analysis.coherencecheck import check_coherence
    from .analysis.flows import derive_flows
    from .errors import RefinementError
    from .viz.msc import render_counterexample_msc

    names = sorted(PROTOCOLS) if args.protocol == "all" else [args.protocol]
    try:
        config = _config(args)
    except RefinementError as exc:
        raise SystemExit(str(exc)) from None
    all_discharged = True
    outputs = []
    for name in names:
        protocol = _build(name)
        graph = derive_flows(protocol, config=config)
        verdict = check_coherence(protocol, COHERENCE_SPECS[name],
                                  graph=graph, config=config,
                                  max_states=args.budget)
        all_discharged = all_discharged and verdict.discharged
        if args.json:
            outputs.append(json.dumps(verdict.as_dict(), indent=2))
            continue
        lines = [
            f"parameterized coherence for {name}: {verdict.status}",
            f"  properties: {'; '.join(verdict.properties)}",
            f"  abstraction: 2 concrete remotes + Other, "
            f"{verdict.abstract_states} abstract state(s), "
            f"{verdict.iterations} iteration(s)",
            f"  lemmas: {verdict.candidates} candidate(s), "
            f"{verdict.validated} validated, "
            f"{len(verdict.lemmas)} promoted",
        ]
        lines.extend(f"  {d.render()}" for d in verdict.obligations)
        if verdict.witness is not None:
            lines.append("")
            lines.append(f"refutation witness "
                         f"({len(verdict.witness.steps)} steps):")
            lines.append(render_counterexample_msc(verdict.witness, 2))
        outputs.append("\n".join(lines))
    if args.json and len(outputs) > 1:
        # one parseable document, not concatenated ones (CI consumes this)
        print("[" + ",\n".join(outputs) + "]")
    else:
        print("\n\n".join(outputs))
    return 0 if all_discharged or not args.strict else 1


def cmd_refine(args) -> int:
    protocol = _build(args.protocol)
    refined = refine(protocol, _config(args))
    print(protocol_summary(refined))
    print()
    if args.dot:
        print(refined_dot(refined, "home"))
        print(refined_dot(refined, "remote"))
        return 0
    if args.figures:
        print("--- rendezvous home (cf. paper Figure 2) ---")
        print(process_ascii(protocol.home))
        print("\n--- rendezvous remote (cf. paper Figure 3) ---")
        print(process_ascii(protocol.remote))
        print()
    print("--- refined home (cf. paper Figure 4) ---")
    print(refined_ascii(refined, "home"))
    print("\n--- refined remote (cf. paper Figure 5) ---")
    print(refined_ascii(refined, "remote"))
    return 0


def cmd_simulate(args) -> int:
    protocol = _build(args.protocol)
    if getattr(args, "hand", False) and args.protocol != "migratory":
        raise SystemExit("--hand applies to the migratory protocol only")
    refined = (handwritten_migratory(home_buffer_capacity=args.buffer)
               if getattr(args, "hand", False)
               else refine(protocol, _config(args)))
    if args.workload == "hot":
        workload = HotLineWorkload(seed=args.seed)
    else:
        workload = SyntheticWorkload(seed=args.seed,
                                     write_fraction=args.write_fraction)
    simulator = Simulator(refined, args.nodes, workload, seed=args.seed,
                          latency=args.latency,
                          record_trace=args.msc is not None)
    metrics = simulator.run(until=args.until)
    print(metrics.describe())
    if args.msc is not None:
        from .viz.msc import render_msc
        print()
        print(render_msc(simulator.trace, args.nodes, max_events=args.msc))
    return 0


def cmd_soundness(args) -> int:
    protocol = _build(args.protocol)
    refined = refine(protocol, _config(args))
    report = check_simulation(AsyncSystem(refined, args.nodes),
                              max_states=args.budget,
                              max_seconds=args.timeout)
    print(report.describe())
    return 0 if report.ok else 1


def cmd_table3(args) -> int:
    from .bench.table3 import render_table3  # lazy: imports the harness
    print(render_table3(budget=args.budget, time_budget=args.timeout))
    return 0


def cmd_pool(args) -> int:
    from .sim.pool import simulate_pool
    protocol = _build(args.protocol)
    refined = refine(protocol, _config(args))

    def workload(line: int):
        return SyntheticWorkload(seed=args.seed + line,
                                 think_time=args.think_time,
                                 write_fraction=args.write_fraction)

    report = simulate_pool(refined, args.nodes, args.lines, workload,
                           until=args.until, seed=args.seed)
    print(report.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__.split("\n\n")[0],
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, default_nodes=2):
        p.add_argument("protocol", choices=sorted(PROTOCOLS))
        p.add_argument("-n", "--nodes", type=int, default=default_nodes)
        p.add_argument("--buffer", type=int, default=2,
                       help="home buffer capacity k (default 2)")
        p.add_argument("--no-reqreply", action="store_true",
                       help="disable the section 3.3 optimization")
        p.add_argument("--no-progress-buffer", action="store_true",
                       help="ablation: drop the progress-buffer reservation")
        p.add_argument("--budget", type=int, default=None,
                       help="state budget (emulates a memory cap)")
        p.add_argument("--timeout", type=float, default=None,
                       help="wall-clock budget in seconds")

    p = sub.add_parser("verify", help="model-check a protocol")
    common(p)
    p.add_argument("--level", choices=["rendezvous", "async"],
                   default="rendezvous")
    p.add_argument("--engine", choices=list(ENGINE_NAMES),
                   default="interpreted",
                   help="step engine for the async level: interpreted "
                        "(guard-AST interpreter, the differential ground "
                        "truth) or compiled (protocol-specialized module; "
                        "identical counts, several times faster)")
    p.add_argument("--progress", action="store_true",
                   help="also run the weak-fairness progress check")
    p.add_argument("--symmetry", action="store_true",
                   help="explore one representative per remote-permutation "
                        "orbit (identical-remote symmetry reduction)")
    p.add_argument("--por", action="store_true",
                   help="ample-set partial-order reduction (async level "
                        "only; invariant-preserving preset)")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "check", help="raw reachability sweep with performance knobs",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro check migratory --level async -n 3 --levels\n"
               "      per-level progress lines on stderr\n"
               "  repro check migratory --level async -n 4 "
               "--store fingerprint\n"
               "      hash-compacted visited set (collision-counted)\n"
               "  repro check invalidate --level async -n 3 --parallel "
               "--profile out.json\n"
               "      multi-process sweep + JSON run profile")
    common(p)
    p.add_argument("--level", choices=["rendezvous", "async"],
                   default="rendezvous")
    p.add_argument("--engine", choices=list(ENGINE_NAMES),
                   default="interpreted",
                   help="step engine for the async level: interpreted "
                        "(ground truth) or compiled (specialized module, "
                        "identical counts, several times faster); spawn "
                        "workers rebuild the compiled module from the "
                        "spec")
    p.add_argument("--store", choices=list(STORE_NAMES), default="exact",
                   help="visited-state store: exact (traces, default) or "
                        "fingerprint (SPIN-style hash compaction)")
    p.add_argument("--profile", metavar="PATH", default=None,
                   help="write a per-level JSON run profile "
                        "(schema repro.profile/4; records active "
                        "reductions, reduction ratios, and per-partition "
                        "rows)")
    p.add_argument("--levels", action="store_true",
                   help="print one progress line per BFS level")
    p.add_argument("--parallel", action="store_true",
                   help="expand frontiers across a process pool")
    p.add_argument("--workers", type=int, default=None,
                   help="worker process count (implies --parallel; "
                        "default: cpu count - 1)")
    p.add_argument("--partitions", type=int, default=None, metavar="P",
                   help="shard the visited set into P fingerprint-range "
                        "partitions; with --parallel, each partition is "
                        "OWNED by a dedicated worker process "
                        "(owner-computes), otherwise one in-process "
                        "partitioned store (counts are byte-identical to "
                        "the unsharded drivers either way)")
    p.add_argument("--spill-dir", metavar="DIR", default=None,
                   help="spill cold partitions to mmap-backed sorted "
                        "fingerprint files under DIR (fingerprint store "
                        "+ --partitions only)")
    p.add_argument("--spill-threshold", type=int, default=1 << 20,
                   metavar="N",
                   help="hot-tier entries per partition before a merge "
                        "to the spill file (default: %(default)s)")
    p.add_argument("--memory-limit", metavar="SIZE", default=None,
                   help="end the run as a well-formed Unfinished result "
                        "when the visited store's footprint estimate "
                        "crosses SIZE (e.g. 64MiB, 512K, 2G) — the "
                        "paper's memory allotment without the OOM kill")
    p.add_argument("--symmetry", action="store_true",
                   help="explore one representative per remote-permutation "
                        "orbit")
    p.add_argument("--por", action="store_true",
                   help="ample-set partial-order reduction (async level "
                        "only)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "lint", help="run the static-analysis suite",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro lint migratory --select P3301 --select P3302\n"
               "      show only the fusability report\n"
               "  repro lint all --ignore P3403 --ignore P4405\n"
               "      hide the inventory notes\n"
               "  repro lint msi --select P45\n"
               "      the whole parameterized-flow family by prefix\n"
               "  repro lint all --strict\n"
               "      exit 1 on warnings too (CI gate)\n"
               "  repro lint msi --json > msi-lint.json\n"
               "      machine-readable report")
    p.add_argument("protocol", choices=sorted(PROTOCOLS) + ["all"],
                   help="library protocol to lint, or 'all'")
    p.add_argument("-n", "--nodes", type=int, default=4,
                   help="remote node count assumed by the buffer-demand "
                        "bound (default 4)")
    p.add_argument("--buffer", type=int, default=2,
                   help="home buffer capacity k (default 2)")
    p.add_argument("--no-reqreply", action="store_true",
                   help="disable the section 3.3 optimization")
    p.add_argument("--no-progress-buffer", action="store_true",
                   help=argparse.SUPPRESS)  # accepted for _config() parity
    p.add_argument("--json", action="store_true",
                   help="emit one JSON report per protocol "
                        "(alias for --format json)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="output format; sarif emits one SARIF 2.1.0 "
                        "document for code-scanning upload")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings, not just errors")
    p.add_argument("--select", action="append", metavar="CODE", default=[],
                   help="only report these diagnostic codes (repeatable; "
                        "exact code or family prefix, e.g. --select P4401 "
                        "or --select P45)")
    p.add_argument("--ignore", action="append", metavar="CODE", default=[],
                   help="drop these diagnostic codes from the report "
                        "(repeatable; the complement of --select, same "
                        "prefix syntax)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "flows", help="derive message flows; parameterized verdict",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro flows invalidate\n"
               "      flow inventory + arbitrary-N deadlock verdict\n"
               "  repro flows all --json > flows.json\n"
               "      machine-readable flow graphs (CI artifact)\n"
               "  repro flows msi --dot | dot -Tpng > msi-flows.png\n"
               "      Graphviz rendering of the flow clusters")
    p.add_argument("protocol", choices=sorted(PROTOCOLS) + ["all"],
                   help="library protocol to analyze, or 'all'")
    p.add_argument("--buffer", type=int, default=2,
                   help="home buffer capacity k (default 2)")
    p.add_argument("--no-reqreply", action="store_true",
                   help="disable the section 3.3 optimization")
    p.add_argument("--no-progress-buffer", action="store_true",
                   help=argparse.SUPPRESS)  # accepted for _config() parity
    p.add_argument("--witness-nodes", type=int, default=2, metavar="N",
                   help="witness instance size for invariant checking "
                        "(default 2; the verdict lifts to arbitrary N)")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON flow-graph document per protocol")
    p.add_argument("--dot", action="store_true",
                   help="emit Graphviz DOT of the flow graph (skips the "
                        "witness check)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero unless deadlock freedom is "
                        "discharged for arbitrary N")
    p.set_defaults(func=cmd_flows)

    p = sub.add_parser(
        "paramverify",
        help="parameterized coherence verdict (single-writer/SWMR, any N)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="examples:\n"
               "  repro paramverify mesi\n"
               "      discharge single-writer/SWMR for every node count\n"
               "  repro paramverify all --json > paramverify-report.json\n"
               "      machine-readable verdicts (CI artifact)\n"
               "  repro paramverify all --strict\n"
               "      exit 1 unless every protocol discharges (CI gate)")
    p.add_argument("protocol", choices=sorted(PROTOCOLS) + ["all"],
                   help="library protocol to verify, or 'all'")
    p.add_argument("--buffer", type=int, default=2,
                   help="home buffer capacity k (default 2)")
    p.add_argument("--no-reqreply", action="store_true",
                   help="disable the section 3.3 optimization")
    p.add_argument("--no-progress-buffer", action="store_true",
                   help=argparse.SUPPRESS)  # accepted for _config() parity
    p.add_argument("--budget", type=int, default=50_000,
                   help="state budget per abstract exploration "
                        "(default 50000)")
    p.add_argument("--engine", choices=list(ENGINE_NAMES),
                   default="interpreted",
                   help="accepted for CLI uniformity; the abstraction "
                        "runs at the rendezvous level, so 'compiled' is "
                        "rejected with a pointer to 'repro check'")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON verdict per protocol")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero unless coherence is discharged "
                        "for arbitrary N")
    p.set_defaults(func=cmd_paramverify)

    p = sub.add_parser("refine", help="show the refinement result")
    common(p)
    p.add_argument("--figures", action="store_true",
                   help="also print the rendezvous machines (Figures 2-3)")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(func=cmd_refine)

    p = sub.add_parser("simulate", help="run the discrete-event simulator")
    common(p, default_nodes=8)
    p.add_argument("--workload", choices=["synthetic", "hot"],
                   default="synthetic")
    p.add_argument("--until", type=float, default=50_000.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--latency", type=float, default=5.0)
    p.add_argument("--write-fraction", type=float, default=0.5)
    p.add_argument("--hand", action="store_true",
                   help="use the hand-designed (unacked LR) variant")
    p.add_argument("--msc", type=int, metavar="N", default=None,
                   help="print a message-sequence chart of the first N "
                        "delivery/completion events")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("soundness", help="check Equation 1 exhaustively")
    common(p)
    p.set_defaults(func=cmd_soundness)

    p = sub.add_parser("table3", help="regenerate the paper's Table 3")
    p.add_argument("--budget", type=int, default=100_000,
                   help="state budget standing in for the 64 MB cap")
    p.add_argument("--timeout", type=float, default=120.0)
    p.set_defaults(func=cmd_table3)

    p = sub.add_parser("pool", help="multi-line shared-buffer-pool study "
                                    "(paper section 6)")
    common(p, default_nodes=8)
    p.add_argument("--lines", type=int, default=32,
                   help="number of concurrently simulated lines")
    p.add_argument("--until", type=float, default=10_000.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--think-time", type=float, default=120.0)
    p.add_argument("--write-fraction", type=float, default=1.0)
    p.set_defaults(func=cmd_pool)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
