"""Fluent builder API for rendezvous protocol specifications.

The AST in :mod:`repro.csp.ast` is deliberately plain; this module is the
ergonomic front door protocol authors use::

    from repro.csp.builder import ProcessBuilder, out, inp, tau
    from repro.csp.ast import AnySender, VarSender, VarTarget, DATA

    home = ProcessBuilder.home("migratory-home", o=None)
    home.state("F", inp("req", sender=AnySender(), bind_sender="i", to="F1"))
    home.state("F1", out("gr", target=VarTarget("i"),
                         payload=lambda env: DATA,
                         update=lambda env: env.set("o", env["i"]),
                         to="E"))
    ...
    process = home.build()

Guard helper functions (:func:`out`, :func:`inp`, :func:`tau`) mirror the
paper's ``P!m(e)`` / ``P?m(v)`` / autonomous-decision notation.
"""

from __future__ import annotations

from typing import Callable, Optional

from .ast import (
    Guard,
    Input,
    Output,
    ProcessDef,
    ProcessKind,
    Protocol,
    SenderPat,
    StateDef,
    Target,
    Tau,
)
from .env import Env, Value
from ..errors import SpecError

__all__ = ["ProcessBuilder", "out", "inp", "tau", "protocol"]


def out(
    msg: str,
    to: str,
    *,
    target: Optional[Target] = None,
    payload: Optional[Callable[[Env], Value]] = None,
    update: Optional[Callable[[Env], Env]] = None,
    cond: Optional[Callable[[Env], bool]] = None,
) -> Output:
    """Active rendezvous offer ``peer!msg(payload)`` moving to state ``to``.

    On the remote side leave ``target`` as ``None`` (the peer is always the
    home node); on the home side pass a :class:`~repro.csp.ast.Target`.
    """
    return Output(msg=msg, to=to, target=target, payload=payload,
                  update=update, cond=cond)


def inp(
    msg: str,
    to: str,
    *,
    sender: Optional[SenderPat] = None,
    bind_sender: Optional[str] = None,
    bind_value: Optional[str] = None,
    cond: Optional[Callable[[Env, int, Value], bool]] = None,
    update: Optional[Callable[[Env], Env]] = None,
) -> Input:
    """Passive rendezvous offer ``peer?msg(bind_value)`` moving to ``to``."""
    return Input(msg=msg, to=to, sender=sender, bind_sender=bind_sender,
                 bind_value=bind_value, cond=cond, update=update)


def tau(
    label: str,
    to: str,
    *,
    cond: Optional[Callable[[Env], bool]] = None,
    update: Optional[Callable[[Env], Env]] = None,
) -> Tau:
    """Autonomous internal decision (e.g. ``evict``) moving to ``to``."""
    return Tau(label=label, to=to, cond=cond, update=update)


class ProcessBuilder:
    """Accumulates states for one process, then :meth:`build`\\ s it.

    Use the :meth:`home` / :meth:`remote` constructors so the process kind
    (and hence which addressing fields guards must fill in) is explicit.
    Variable declarations are keyword arguments giving initial values.
    """

    def __init__(self, name: str, kind: str, **variables: Value) -> None:
        self._name = name
        self._kind = kind
        self._env = Env(dict(variables))
        self._states: dict[str, StateDef] = {}
        self._initial: Optional[str] = None

    @classmethod
    def home(cls, name: str, **variables: Value) -> "ProcessBuilder":
        return cls(name, ProcessKind.HOME, **variables)

    @classmethod
    def remote(cls, name: str, **variables: Value) -> "ProcessBuilder":
        return cls(name, ProcessKind.REMOTE, **variables)

    def state(self, name: str, *guards: Guard, initial: bool = False) -> "ProcessBuilder":
        """Declare state ``name`` with its (ordered) guards.

        The first declared state is the initial state unless another is
        explicitly marked ``initial=True``.
        """
        if name in self._states:
            raise SpecError(f"state {name!r} declared twice in {self._name!r}")
        self._check_guard_addressing(name, guards)
        self._states[name] = StateDef(name=name, guards=tuple(guards))
        if initial or self._initial is None:
            self._initial = name
        return self

    def _check_guard_addressing(self, state: str, guards: tuple[Guard, ...]) -> None:
        for guard in guards:
            where = f"{self._name}.{state}: {guard.describe()}"
            if self._kind == ProcessKind.HOME:
                if isinstance(guard, Output) and guard.target is None:
                    raise SpecError(f"{where}: home outputs need a target")
                if isinstance(guard, Input) and guard.sender is None:
                    raise SpecError(f"{where}: home inputs need a sender pattern")
            else:
                if isinstance(guard, Output) and guard.target is not None:
                    raise SpecError(f"{where}: remote outputs go to home; "
                                    "no target allowed")
                if isinstance(guard, Input) and guard.sender is not None:
                    raise SpecError(f"{where}: remote inputs come from home; "
                                    "no sender pattern allowed")
                if isinstance(guard, Input) and guard.bind_sender is not None:
                    raise SpecError(f"{where}: remote inputs cannot bind a "
                                    "sender (it is always home)")

    def build(self) -> ProcessDef:
        if not self._states:
            raise SpecError(f"process {self._name!r} has no states")
        assert self._initial is not None
        return ProcessDef(
            name=self._name,
            kind=self._kind,
            states=dict(self._states),
            initial_state=self._initial,
            initial_env=self._env,
        )


def protocol(name: str, home: ProcessBuilder | ProcessDef,
             remote: ProcessBuilder | ProcessDef) -> Protocol:
    """Assemble a :class:`~repro.csp.ast.Protocol` from builders or processes."""
    home_def = home.build() if isinstance(home, ProcessBuilder) else home
    remote_def = remote.build() if isinstance(remote, ProcessBuilder) else remote
    return Protocol(name=name, home=home_def, remote=remote_def)
