"""Immutable, hashable variable environments for protocol processes.

Every process in a protocol owns a set of local variables (the paper's
processes have, e.g., an owner variable ``o`` in the migratory home node and
a sharers set in the invalidate home node).  Because global protocol states
are enumerated and hashed by the model checker, environments must be
immutable and hashable; :class:`Env` provides a tiny persistent-map
implementation tuned for the very small variable counts (0-4) protocols use.

Values stored in an :class:`Env` must themselves be hashable (ints, strings,
``None``, ``frozenset``, tuples).  Mutating operations return a new
environment, sharing nothing mutable with the original.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Mapping

Value = Hashable

__all__ = ["Env", "Value"]


class Env(Mapping[str, Value]):
    """A persistent (immutable) string-keyed map with structural hashing.

    >>> e = Env({"o": None, "S": frozenset()})
    >>> e2 = e.set("o", 3)
    >>> e["o"] is None and e2["o"] == 3
    True
    >>> e.set("o", None) == e
    True
    """

    __slots__ = ("_items", "_hash")

    _items: tuple[tuple[str, Value], ...]
    _hash: int

    def __init__(self, mapping: Mapping[str, Value] | None = None) -> None:
        items = tuple(sorted((mapping or {}).items()))
        for key, value in items:
            if not isinstance(key, str):
                raise TypeError(f"Env keys must be str, got {key!r}")
            hash(value)  # raises TypeError for unhashable values, up front
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash(items))

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, key: str) -> Value:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: object) -> bool:
        return any(name == key for name, _ in self._items)

    # -- persistent updates ------------------------------------------------

    def set(self, key: str, value: Value) -> "Env":
        """Return a new environment with ``key`` bound to ``value``.

        ``key`` must already be declared in this environment: protocols
        declare their full variable set up front, and a typo'd update should
        fail loudly rather than silently grow the state vector.
        """
        # Hot path of every guard update: splice into the already-sorted
        # item tuple instead of rebuilding through __init__'s sort.
        items = self._items
        for i, (name, old) in enumerate(items):
            if name == key:
                if old is value or old == value:
                    return self
                new_items = items[:i] + ((key, value),) + items[i + 1:]
                env = Env.__new__(Env)
                object.__setattr__(env, "_items", new_items)
                # hash() raises TypeError for unhashable values, like the
                # up-front check in __init__
                object.__setattr__(env, "_hash", hash(new_items))
                return env
        raise KeyError(f"variable {key!r} not declared in this Env")

    def update(self, changes: Mapping[str, Value]) -> "Env":
        """Return a new environment applying all ``changes`` at once."""
        pending = dict(changes)
        changed = False
        out = []
        for name, old in self._items:
            if name in pending:
                new = pending.pop(name)
                out.append((name, new))
                if not (new is old or new == old):
                    changed = True
            else:
                out.append((name, old))
        if pending:
            raise KeyError(
                f"variables not declared in this Env: {list(pending)}")
        if not changed:
            return self
        new_items = tuple(out)
        env = Env.__new__(Env)
        object.__setattr__(env, "_items", new_items)
        object.__setattr__(env, "_hash", hash(new_items))
        return env

    # -- identity ------------------------------------------------------------

    def canonical_key(self) -> tuple[tuple[str, Value], ...]:
        """The sorted item tuple: the env's canonical structural encoding.

        Used by the model checker's fingerprint store
        (:mod:`repro.check.store`); values that are themselves unordered
        (frozensets) are canonicalised by the store, not here.
        """
        return self._items

    def __getstate__(self) -> tuple[tuple[tuple[str, Value], ...]]:
        # Pickle the items only: the cached hash is seeded per process
        # (PYTHONHASHSEED), so shipping it to a worker started with the
        # ``spawn`` method would poison every dict/set lookup there.  The
        # items ride in a 1-tuple because pickle skips __setstate__ for
        # falsy state, and an empty Env's item tuple is falsy.
        return (self._items,)

    def __setstate__(
            self, state: tuple[tuple[tuple[str, Value], ...]]) -> None:
        items = state[0]
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash(items))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Env):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"Env({body})"

    def as_dict(self) -> dict[str, Any]:
        """A plain mutable copy, for display and debugging."""
        return dict(self._items)


EMPTY_ENV = Env()
