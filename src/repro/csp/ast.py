"""Abstract syntax for rendezvous (CSP-style) protocol specifications.

This module defines the high-level language of the paper (section 2.3/2.4):
a protocol is a *home* process plus a *remote* process template, each a
finite state machine whose states carry *guards*:

* :class:`Output` — ``P!m(e)``: offer to be the *active* party of a
  rendezvous, sending message type ``m`` with payload ``e``.
* :class:`Input` — ``P?m(v)``: offer to be the *passive* party, receiving
  ``m`` and binding its payload.
* :class:`Tau` — an autonomous internal decision (the paper's example is a
  cache eviction), taken without communicating.

States containing at least one Input/Output are *communication* states;
states with only Tau guards are *internal* states (paper section 2.4).  The
communication topology is a star: remotes only ever talk to the home node,
so remote-side guards do not name a peer, and home-side guards name remotes
through :class:`SenderPat` / :class:`Target` addressing patterns.

Guards carry small Python callables for payload expressions, acceptance
conditions and variable updates; the refinement procedure never inspects
these (it is purely structural), so arbitrary finite-domain computations are
allowed as long as environments stay hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Union

from .env import Env, Value
from ..errors import SpecError

__all__ = [
    "DATA",
    "HOME",
    "AnySender",
    "VarSender",
    "SetSender",
    "PredSender",
    "SenderPat",
    "VarTarget",
    "ConstTarget",
    "ExprTarget",
    "Target",
    "Output",
    "Input",
    "Tau",
    "Guard",
    "StateDef",
    "ProcessDef",
    "Protocol",
    "ProcessKind",
]

#: Abstract data token used when the protocol's payload values do not matter
#: for the property being checked (the common case in protocol verification).
DATA: Value = "DATA"

#: Symbolic identity of the home node (remote ids are ints ``0..n-1``).
HOME = "home"


# ---------------------------------------------------------------------------
# Addressing patterns (home-side guards name remotes through these)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnySender:
    """``r(i)?m`` — accept the message from *any* remote node."""

    def matches(self, env: Env, sender: int) -> bool:
        return True

    def describe(self) -> str:
        return "r(i)"


@dataclass(frozen=True)
class VarSender:
    """``r(o)?m`` — accept only from the remote currently stored in ``var``."""

    var: str

    def matches(self, env: Env, sender: int) -> bool:
        return env[self.var] == sender

    def describe(self) -> str:
        return f"r({self.var})"


@dataclass(frozen=True)
class SetSender:
    """``r(s in S)?m`` — accept from any member of the set variable ``var``."""

    var: str

    def matches(self, env: Env, sender: int) -> bool:
        members = env[self.var]
        return isinstance(members, frozenset) and sender in members

    def describe(self) -> str:
        return f"r(s∈{self.var})"


@dataclass(frozen=True)
class PredSender:
    """Accept from senders satisfying an arbitrary predicate on (env, id)."""

    pred: Callable[[Env, int], bool]
    name: str = "pred"

    def matches(self, env: Env, sender: int) -> bool:
        return bool(self.pred(env, sender))

    def describe(self) -> str:
        return f"r({self.name})"


SenderPat = Union[AnySender, VarSender, SetSender, PredSender]


@dataclass(frozen=True)
class VarTarget:
    """``r(o)!m`` — send to the remote id held in variable ``var``."""

    var: str

    def eval(self, env: Env) -> int:
        value = env[self.var]
        if not isinstance(value, int):
            raise SpecError(
                f"output target variable {self.var!r} holds {value!r}, "
                "expected a remote id (int)"
            )
        return value

    def describe(self) -> str:
        return f"r({self.var})"


@dataclass(frozen=True)
class ConstTarget:
    """Send to a fixed remote id (mostly useful in tests)."""

    remote: int

    def eval(self, env: Env) -> int:
        return self.remote

    def describe(self) -> str:
        return f"r({self.remote})"


@dataclass(frozen=True)
class ExprTarget:
    """Send to the remote id computed by ``expr(env)``."""

    expr: Callable[[Env], int]
    name: str = "expr"

    def eval(self, env: Env) -> int:
        return int(self.expr(env))

    def describe(self) -> str:
        return f"r({self.name})"


Target = Union[VarTarget, ConstTarget, ExprTarget]


# ---------------------------------------------------------------------------
# Guards
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Output:
    """Active rendezvous offer ``target!msg(payload)``.

    ``update`` is applied to the sender's environment when (and only when)
    the rendezvous *completes* — in the asynchronous refinement that is on
    receipt of the ack, never on sending the request.

    ``cond`` (optional) gates whether this offer is enabled at all in the
    current environment; the invalidate protocol uses it to guard its
    "invalidate next sharer" output on the sharers set being non-empty.
    """

    msg: str
    to: str
    target: Optional[Target] = None  # None on the remote side (peer is HOME)
    payload: Optional[Callable[[Env], Value]] = None
    update: Optional[Callable[[Env], Env]] = None
    cond: Optional[Callable[[Env], bool]] = None

    def enabled(self, env: Env) -> bool:
        return self.cond is None or bool(self.cond(env))

    def eval_payload(self, env: Env) -> Value:
        return self.payload(env) if self.payload is not None else None

    def apply_update(self, env: Env) -> Env:
        return self.update(env) if self.update is not None else env

    def describe(self) -> str:
        peer = self.target.describe() if self.target is not None else "h"
        return f"{peer}!{self.msg}"


@dataclass(frozen=True)
class Input:
    """Passive rendezvous offer ``sender?msg(bind_value)``.

    On completion the semantics (both levels) performs, in order:

    1. bind ``bind_sender`` to the id of the sending remote (home side only),
    2. bind ``bind_value`` to the received payload,
    3. apply ``update`` to the resulting environment.

    ``cond(env, sender, value)`` further restricts acceptance beyond the
    ``sender`` addressing pattern; it sees the *pre-binding* environment.
    """

    msg: str
    to: str
    sender: Optional[SenderPat] = None  # None on the remote side (peer is HOME)
    bind_sender: Optional[str] = None
    bind_value: Optional[str] = None
    cond: Optional[Callable[[Env, int, Value], bool]] = None
    update: Optional[Callable[[Env], Env]] = None

    def accepts(self, env: Env, sender: int, value: Value) -> bool:
        """Does this guard accept ``msg`` from ``sender`` carrying ``value``?"""
        if self.sender is not None and not self.sender.matches(env, sender):
            return False
        if self.cond is not None and not self.cond(env, sender, value):
            return False
        return True

    def complete(self, env: Env, sender: int, value: Value) -> Env:
        """Environment after the rendezvous on this guard completes."""
        if self.bind_sender is not None:
            env = env.set(self.bind_sender, sender)
        if self.bind_value is not None:
            env = env.set(self.bind_value, value)
        if self.update is not None:
            env = self.update(env)
        return env

    def describe(self) -> str:
        peer = self.sender.describe() if self.sender is not None else "h"
        binding = f"({self.bind_value})" if self.bind_value else ""
        return f"{peer}?{self.msg}{binding}"


@dataclass(frozen=True)
class Tau:
    """Autonomous internal step (eviction decisions, CPU read/write intents)."""

    label: str
    to: str
    cond: Optional[Callable[[Env], bool]] = None
    update: Optional[Callable[[Env], Env]] = None

    def enabled(self, env: Env) -> bool:
        return self.cond is None or bool(self.cond(env))

    def apply_update(self, env: Env) -> Env:
        return self.update(env) if self.update is not None else env

    def describe(self) -> str:
        return f"τ:{self.label}"


Guard = Union[Output, Input, Tau]


# ---------------------------------------------------------------------------
# States, processes, protocols
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StateDef:
    """One named state of a process, with its ordered guard list.

    Guard order is significant for the home node: the refinement's T2 rule
    cycles through output guards in declaration order when a rendezvous
    attempt is nacked (paper Table 2).
    """

    name: str
    guards: tuple[Guard, ...] = ()

    @property
    def outputs(self) -> tuple[Output, ...]:
        return tuple(g for g in self.guards if isinstance(g, Output))

    @property
    def inputs(self) -> tuple[Input, ...]:
        return tuple(g for g in self.guards if isinstance(g, Input))

    @property
    def taus(self) -> tuple[Tau, ...]:
        return tuple(g for g in self.guards if isinstance(g, Tau))

    @property
    def is_communication(self) -> bool:
        """A state offering at least one rendezvous (paper section 2.4)."""
        return bool(self.outputs) or bool(self.inputs)

    @property
    def is_internal(self) -> bool:
        """A state with only autonomous (tau) behaviour."""
        return bool(self.guards) and not self.is_communication

    @property
    def is_terminal(self) -> bool:
        """A state with no behaviour at all (normally a spec bug)."""
        return not self.guards


class ProcessKind:
    """Role of a process in the star topology."""

    HOME = "home"
    REMOTE = "remote"


@dataclass(frozen=True)
class ProcessDef:
    """A process: named states, an initial state and initial variable values."""

    name: str
    kind: str  # ProcessKind.HOME or ProcessKind.REMOTE
    states: Mapping[str, StateDef]
    initial_state: str
    initial_env: Env = field(default_factory=Env)

    def __post_init__(self) -> None:
        if self.kind not in (ProcessKind.HOME, ProcessKind.REMOTE):
            raise SpecError(f"unknown process kind {self.kind!r}")
        if self.initial_state not in self.states:
            raise SpecError(
                f"process {self.name!r}: initial state "
                f"{self.initial_state!r} is not defined"
            )
        for state in self.states.values():
            for guard in state.guards:
                if guard.to not in self.states:
                    raise SpecError(
                        f"process {self.name!r}: guard {guard.describe()} in "
                        f"state {state.name!r} targets undefined state "
                        f"{guard.to!r}"
                    )

    def state(self, name: str) -> StateDef:
        try:
            return self.states[name]
        except KeyError:
            raise SpecError(
                f"process {self.name!r} has no state {name!r}"
            ) from None

    @property
    def message_types(self) -> frozenset[str]:
        """All rendezvous message types this process sends or receives."""
        out: set[str] = set()
        for state in self.states.values():
            for guard in state.guards:
                if isinstance(guard, (Output, Input)):
                    out.add(guard.msg)
        return frozenset(out)


@dataclass(frozen=True)
class Protocol:
    """A rendezvous protocol: a home process and a remote process template.

    All remote nodes run the same template (paper section 2.4: "we assume
    that all the remote nodes follow the same protocol").  Instantiation
    with a concrete node count happens in the semantics layers.
    """

    name: str
    home: ProcessDef
    remote: ProcessDef

    def __post_init__(self) -> None:
        if self.home.kind != ProcessKind.HOME:
            raise SpecError("Protocol.home must have kind HOME")
        if self.remote.kind != ProcessKind.REMOTE:
            raise SpecError("Protocol.remote must have kind REMOTE")

    @property
    def message_types(self) -> frozenset[str]:
        return self.home.message_types | self.remote.message_types
