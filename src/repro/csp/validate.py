"""Syntactic restriction checks from paper section 2.4 (string façade).

The actual checks live in :mod:`repro.analysis.restrictions`, where they
produce structured :class:`~repro.analysis.diagnostics.Diagnostic`
records with stable codes (``P2401``-``P2409``), severities and fix
hints; this module keeps the original flat-string API as thin wrappers
so existing callers — and everything scripted against their exact output
— keep working unchanged:

* :func:`collect_violations` returns the historical human-readable
  strings (byte-identical to the pre-diagnostics implementation);
* :func:`validate_protocol` / :func:`validate_process` raise
  :class:`~repro.errors.ValidationError` listing *all* violations found
  (not just the first), so authors can fix a spec in one round trip.

See :mod:`repro.analysis` for the full pass suite (reachability, guard
overlap, fusability, buffer demand) and ``python -m repro lint`` for the
command-line front end.
"""

from __future__ import annotations

from ..analysis.restrictions import process_restrictions, restriction_pass
from ..errors import ValidationError
from .ast import ProcessDef, Protocol

__all__ = ["validate_protocol", "validate_process", "collect_violations"]


def collect_violations(proto: Protocol) -> list[str]:
    """Return human-readable descriptions of every restriction violation."""
    return [d.legacy_text for d in restriction_pass(proto)]


def validate_protocol(proto: Protocol) -> Protocol:
    """Raise :class:`ValidationError` unless ``proto`` is refinable.

    Returns the protocol unchanged on success so calls can be chained.
    """
    problems = collect_violations(proto)
    if problems:
        raise ValidationError(
            f"protocol {proto.name!r} violates the paper's syntactic "
            "restrictions:\n  - " + "\n  - ".join(problems)
        )
    return proto


def validate_process(process: ProcessDef) -> ProcessDef:
    """Validate a single process in isolation (same rules, one side)."""
    problems = [d.legacy_text for d in process_restrictions(process)]
    if problems:
        raise ValidationError(
            f"process {process.name!r} violates the paper's syntactic "
            "restrictions:\n  - " + "\n  - ".join(problems)
        )
    return process
