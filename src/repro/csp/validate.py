"""Syntactic restriction checks from paper section 2.4.

The refinement procedure is only defined (and only proven sound) for
protocols obeying these structural rules:

* **Star topology** — enforced by construction in our AST: remote guards
  never name a peer, home guards address remotes.  Checked here anyway for
  hand-constructed ASTs.

* **Remote node restrictions** — a remote communication state either
  (a) offers to be the *active* participant of a *single* rendezvous
  (exactly one Output guard, nothing else), or (b) offers to be a *passive*
  participant on any number of Input guards, optionally together with Tau
  guards modelling autonomous decisions such as evictions.  "We restrict
  the remote nodes to contain only input non-determinism."

* **Home node generality** — the home may mix Input and Output guards
  freely ("generalized input/output guards"), but autonomous Tau guards in
  *communication* states are not part of the paper's home-node language
  (internal states cover home-local computation).

* **Eventual exit from internal states** — "we assume that such a process
  will eventually enter a communication state where rendezvous actions are
  offered (this assumption can be syntactically checked)": every cycle in
  the state graph must contain at least one communication state, and no
  state may be terminal (guard-less).

* **Forward-progress prerequisite** — paper section 2.5 derives progress
  "assuming that there are no loops in the home node and remote nodes"
  made of internal states alone; the cycle check above is exactly that.

:func:`validate_protocol` raises :class:`~repro.errors.ValidationError`
describing *all* violations found (not just the first), so authors can fix
a spec in one round trip.
"""

from __future__ import annotations

from .ast import (
    Input,
    Output,
    ProcessDef,
    ProcessKind,
    Protocol,
    StateDef,
)
from ..errors import ValidationError

__all__ = ["validate_protocol", "validate_process", "collect_violations"]


def collect_violations(proto: Protocol) -> list[str]:
    """Return human-readable descriptions of every restriction violation."""
    problems: list[str] = []
    problems += _process_violations(proto.home)
    problems += _process_violations(proto.remote)
    return problems


def validate_protocol(proto: Protocol) -> Protocol:
    """Raise :class:`ValidationError` unless ``proto`` is refinable.

    Returns the protocol unchanged on success so calls can be chained.
    """
    problems = collect_violations(proto)
    if problems:
        raise ValidationError(
            f"protocol {proto.name!r} violates the paper's syntactic "
            "restrictions:\n  - " + "\n  - ".join(problems)
        )
    return proto


def validate_process(process: ProcessDef) -> ProcessDef:
    """Validate a single process in isolation (same rules, one side)."""
    problems = _process_violations(process)
    if problems:
        raise ValidationError(
            f"process {process.name!r} violates the paper's syntactic "
            "restrictions:\n  - " + "\n  - ".join(problems)
        )
    return process


# ---------------------------------------------------------------------------


def _process_violations(process: ProcessDef) -> list[str]:
    problems: list[str] = []
    for state in process.states.values():
        where = f"{process.name}.{state.name}"
        if state.is_terminal:
            problems.append(
                f"{where}: terminal state (no guards); processes must always "
                "eventually offer a rendezvous"
            )
            continue
        problems += _addressing_violations(process, state, where)
        if process.kind == ProcessKind.REMOTE:
            problems += _remote_shape_violations(state, where)
        else:
            problems += _home_shape_violations(state, where)
    problems += _internal_cycle_violations(process)
    return problems


def _addressing_violations(process: ProcessDef, state: StateDef,
                           where: str) -> list[str]:
    problems = []
    for guard in state.guards:
        if process.kind == ProcessKind.HOME:
            if isinstance(guard, Output) and guard.target is None:
                problems.append(f"{where}: home output {guard.describe()} "
                                "lacks a remote target")
            if isinstance(guard, Input) and guard.sender is None:
                problems.append(f"{where}: home input {guard.describe()} "
                                "lacks a sender pattern")
        else:
            if isinstance(guard, Output) and guard.target is not None:
                problems.append(f"{where}: remote output names a peer; star "
                                "topology forbids remote-to-remote messages")
            if isinstance(guard, Input) and guard.sender is not None:
                problems.append(f"{where}: remote input names a peer; star "
                                "topology forbids remote-to-remote messages")
    return problems


def _remote_shape_violations(state: StateDef, where: str) -> list[str]:
    """Paper 2.4: remote states are single-active-output or passive."""
    problems = []
    n_out = len(state.outputs)
    if n_out > 1:
        problems.append(
            f"{where}: remote state offers {n_out} output guards; a remote "
            "may be the active participant of only a single rendezvous"
        )
    if n_out == 1 and (state.inputs or state.taus):
        problems.append(
            f"{where}: remote active state mixes its output with "
            "input/tau guards; output non-determinism is not allowed "
            "in remote nodes"
        )
    return problems


def _home_shape_violations(state: StateDef, where: str) -> list[str]:
    problems = []
    if state.is_communication and state.taus:
        problems.append(
            f"{where}: home communication state carries tau guards; home "
            "autonomous work belongs in internal states"
        )
    return problems


def _internal_cycle_violations(process: ProcessDef) -> list[str]:
    """Reject cycles through internal states only (could spin forever).

    Depth-first search over the subgraph induced by internal states: if a
    cycle exists there, the process can stay in internal states forever,
    violating the paper's eventual-communication assumption.
    """
    internal = {s.name for s in process.states.values() if s.is_internal}
    succ = {
        name: [g.to for g in process.states[name].guards if g.to in internal]
        for name in internal
    }
    WHITE, GREY, BLACK = 0, 1, 2
    colour = dict.fromkeys(internal, WHITE)
    problems: list[str] = []

    def visit(node: str, stack: list[str]) -> None:
        colour[node] = GREY
        stack.append(node)
        for nxt in succ[node]:
            if colour[nxt] == GREY:
                cycle = stack[stack.index(nxt):] + [nxt]
                problems.append(
                    f"{process.name}: internal-state cycle "
                    f"{' -> '.join(cycle)}; the process could avoid "
                    "communication forever"
                )
            elif colour[nxt] == WHITE:
                visit(nxt, stack)
        stack.pop()
        colour[node] = BLACK

    for node in internal:
        if colour[node] == WHITE:
            visit(node, [])
    return problems
