"""Harness regenerating the paper's Table 3.

The paper reports, for the migratory (N = 2, 4, 8) and invalidate
(N = 2, 4, 6) protocols, the number of states visited and the time taken
by SPIN's reachability analysis of the rendezvous and asynchronous
versions, under a 64 MB memory limit that renders the larger asynchronous
runs "Unfinished"::

    Protocol    N   Asynchronous protocol   Rendezvous protocol
    Migratory   2   23163/2.84              54/0.1
                4   Unfinished              235/0.4
                8   Unfinished              965/0.5
    Invalidate  2   193389/19.23            546/0.6
                4   Unfinished              18686/2.3
                6   Unfinished              228334/18.4

We regenerate the same table with our own explicit-state engine and a
state *budget* standing in for the memory cap.  Absolute counts differ from
SPIN's (the Promela encodings are unpublished and SPIN counts
statement-level interleavings), but the paper's claims are about *shape*:

* the rendezvous protocol is verified in orders of magnitude fewer states
  than the asynchronous one at equal node count;
* asynchronous verification becomes infeasible ("Unfinished") at node
  counts where rendezvous verification remains trivial;
* the invalidate protocol is far costlier than migratory at both levels.

:func:`table3_rows` returns structured results; :func:`render_table3`
formats them in the paper's layout.  Shared by the pytest-benchmark suite
and the ``repro table3`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..check.explorer import explore
from ..check.stats import ExplorationResult
from ..protocols.invalidate import invalidate_protocol
from ..protocols.migratory import migratory_protocol
from ..refine.engine import refine
from ..semantics.asynchronous import AsyncSystem
from ..semantics.rendezvous import RendezvousSystem

__all__ = ["Table3Row", "PAPER_TABLE3", "table3_rows", "render_table3"]

#: the paper's published numbers, cell-formatted, for side-by-side display
PAPER_TABLE3 = {
    ("Migratory", 2): ("23163/2.84", "54/0.1"),
    ("Migratory", 4): ("Unfinished", "235/0.4"),
    ("Migratory", 8): ("Unfinished", "965/0.5"),
    ("Invalidate", 2): ("193389/19.23", "546/0.6"),
    ("Invalidate", 4): ("Unfinished", "18686/2.3"),
    ("Invalidate", 6): ("Unfinished", "228334/18.4"),
}


@dataclass
class Table3Row:
    protocol: str
    n: int
    asynchronous: ExplorationResult
    rendezvous: ExplorationResult

    @property
    def paper_cells(self) -> tuple[str, str]:
        return PAPER_TABLE3.get((self.protocol, self.n), ("?", "?"))


def table3_rows(budget: int = 200_000,
                time_budget: Optional[float] = 120.0) -> list[Table3Row]:
    """Run all twelve reachability analyses of Table 3."""
    configs = [
        ("Migratory", migratory_protocol(), (2, 4, 8)),
        ("Invalidate", invalidate_protocol(), (2, 4, 6)),
    ]
    rows = []
    for name, protocol, node_counts in configs:
        refined = refine(protocol)
        for n in node_counts:
            asynchronous = explore(
                AsyncSystem(refined, n), name=f"{name}-async-{n}",
                max_states=budget, max_seconds=time_budget,
                allow_deadlock=False)
            rendezvous = explore(
                RendezvousSystem(protocol, n), name=f"{name}-rv-{n}",
                max_states=budget, max_seconds=time_budget)
            rows.append(Table3Row(protocol=name, n=n,
                                  asynchronous=asynchronous,
                                  rendezvous=rendezvous))
    return rows


def render_table3(budget: int = 200_000,
                  time_budget: Optional[float] = 120.0,
                  rows: Optional[list[Table3Row]] = None) -> str:
    """Format Table 3, measured next to the paper's published values."""
    rows = rows if rows is not None else table3_rows(budget, time_budget)
    header = (
        f"{'Protocol':<11} {'N':>2}   "
        f"{'Async (measured)':<18} {'Async (paper)':<14} "
        f"{'Rendezvous (measured)':<22} {'Rendezvous (paper)':<18}")
    lines = [
        "Table 3: states visited / seconds for reachability analysis",
        f"(state budget {budget} standing in for the paper's 64 MB cap)",
        "",
        header,
        "-" * len(header),
    ]
    for row in rows:
        paper_async, paper_rv = row.paper_cells
        lines.append(
            f"{row.protocol:<11} {row.n:>2}   "
            f"{row.asynchronous.cell():<18} {paper_async:<14} "
            f"{row.rendezvous.cell():<22} {paper_rv:<18}")
    return "\n".join(lines)
