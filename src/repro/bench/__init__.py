"""Shared benchmark harnesses (used by benchmarks/ and the CLI)."""

from .table3 import PAPER_TABLE3, Table3Row, render_table3, table3_rows

__all__ = ["PAPER_TABLE3", "Table3Row", "render_table3", "table3_rows"]
