"""Random protocol generation for property-based testing."""

from .random_protocol import GeneratorParams, random_protocol

__all__ = ["GeneratorParams", "random_protocol"]
