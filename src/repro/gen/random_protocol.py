"""Random well-formed rendezvous protocols, for property-based testing.

The paper claims its procedure "can be applied to derive a large class of
DSM cache protocols".  We test that claim mechanically: generate random
protocols *within the restricted specification class* (star topology,
remote-node input-only nondeterminism, no internal-only cycles), refine
them, and check that the soundness theorem (weak simulation, deadlock
behaviour, structural invariants) holds for every one.

Construction guarantees (so every output passes
:func:`repro.csp.validate.validate_protocol` by design):

* remote states are active (exactly one output), passive (1..3 inputs plus
  optional taus) or internal (taus only), with every tau targeting a
  communication state (hence no internal-only cycles);
* the home mixes inputs (on remote-sent messages) and outputs (on
  home-sent messages) freely; its target variable ``j`` starts at remote 0
  and is rebound by sender-binding inputs, so targets always evaluate;
* every state has at least one guard (no terminal states).

Generated protocols are *not* guaranteed deadlock-free at the rendezvous
level — that is a per-protocol property the paper expects users to model
check first.  The soundness property we test (Equation 1) holds for the
whole class regardless.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..csp.ast import AnySender, Protocol, VarTarget
from ..csp.builder import ProcessBuilder, inp, out, protocol, tau
from ..csp.validate import validate_protocol

__all__ = ["GeneratorParams", "random_protocol"]


@dataclass(frozen=True)
class GeneratorParams:
    """Shape parameters for :func:`random_protocol`."""

    n_remote_states: int = 4
    n_home_states: int = 4
    n_remote_msgs: int = 2   # message types the remote can send
    n_home_msgs: int = 2     # message types the home can send
    p_remote_active: float = 0.45
    p_remote_tau: float = 0.4
    max_guards: int = 3

    def __post_init__(self) -> None:
        if self.n_remote_states < 2 or self.n_home_states < 1:
            raise ValueError("need at least 2 remote / 1 home states")
        if self.n_remote_msgs < 1 or self.n_home_msgs < 1:
            raise ValueError("need at least one message each way")


def random_protocol(seed: int,
                    params: Optional[GeneratorParams] = None) -> Protocol:
    """Generate a random validated protocol from ``seed``."""
    params = params if params is not None else GeneratorParams()
    rng = random.Random(seed)
    remote_msgs = [f"up{i}" for i in range(params.n_remote_msgs)]
    home_msgs = [f"dn{i}" for i in range(params.n_home_msgs)]

    remote_states = [f"r{i}" for i in range(params.n_remote_states)]
    home_states = [f"h{i}" for i in range(params.n_home_states)]

    # -- remote: decide state kinds first so taus can target comm states
    kinds: dict[str, str] = {}
    for name in remote_states:
        roll = rng.random()
        if roll < params.p_remote_active:
            kinds[name] = "active"
        elif roll < 0.9:
            kinds[name] = "passive"
        else:
            kinds[name] = "internal"
    # at least one communication state must exist for taus to target
    if all(kind == "internal" for kind in kinds.values()):
        kinds[remote_states[0]] = "active"
    comm_states = [s for s in remote_states if kinds[s] != "internal"]

    remote = ProcessBuilder.remote("gen-remote")
    for name in remote_states:
        if kinds[name] == "active":
            remote.state(name, out(rng.choice(remote_msgs),
                                   to=rng.choice(remote_states)))
            continue
        guards = []
        if kinds[name] == "passive":
            for msg in rng.sample(home_msgs,
                                  rng.randint(1, min(params.max_guards,
                                                     len(home_msgs)))):
                guards.append(inp(msg, to=rng.choice(remote_states)))
            if rng.random() < params.p_remote_tau:
                guards.append(tau(f"t{name}", to=rng.choice(comm_states)))
        else:  # internal
            guards.append(tau(f"t{name}", to=rng.choice(comm_states)))
        remote.state(name, *guards)

    # -- home: generalized guards
    home = ProcessBuilder.home("gen-home", j=0)
    for name in home_states:
        guards = []
        n_guards = rng.randint(1, params.max_guards)
        for _ in range(n_guards):
            if rng.random() < 0.55:
                guards.append(inp(
                    rng.choice(remote_msgs),
                    sender=AnySender(),
                    bind_sender="j" if rng.random() < 0.7 else None,
                    to=rng.choice(home_states)))
            else:
                guards.append(out(rng.choice(home_msgs),
                                  target=VarTarget("j"),
                                  to=rng.choice(home_states)))
        if not any(True for _ in guards):  # pragma: no cover - n_guards >= 1
            guards.append(inp(remote_msgs[0], sender=AnySender(),
                              to=rng.choice(home_states)))
        home.state(name, *guards)

    return validate_protocol(
        protocol(f"gen-{seed}", home, remote))
