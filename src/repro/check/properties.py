"""Safety and progress property checking.

**Safety** (invariants, deadlock freedom) rides on the explorer: invariants
are checked on every reachable state and deadlocks recorded with shortest
traces; :func:`assert_safe` converts a bad
:class:`~repro.check.stats.ExplorationResult` into a raised
:class:`~repro.errors.PropertyViolation`.

**Progress** is the paper's section 2.5 criterion: "the refinement process
guarantees that at least one of the refined remote nodes makes forward
progress, if forward progress is possible in the rendezvous protocol" —
i.e. *some* rendezvous keeps completing (weak fairness), though any
individual remote may starve.  We check the standard finite-state
formulation: in the reachable transition graph,

* there is no deadlock state, and
* every **terminal** strongly-connected component (one with no edges
  leaving it) contains at least one *progress edge* — a transition that
  completes a rendezvous.

A terminal SCC without a progress edge is a **livelock**: the system can
run forever without ever completing another rendezvous.  This is exactly
the failure mode the paper's progress-buffer reservation exists to prevent
(section 3.2: "If no such reservation is made, a livelock can result"),
and the ablation benchmark reproduces it by switching the reservation off.

The SCC computation is an iterative Tarjan (explicit stack, so deep graphs
cannot hit Python's recursion limit).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from ..errors import BudgetExceeded, PropertyViolation
from .stats import ExplorationResult

__all__ = ["assert_safe", "ProgressReport", "check_progress", "tarjan_sccs"]


def assert_safe(result: ExplorationResult) -> ExplorationResult:
    """Raise on violations/deadlocks/incompleteness; return ``result`` if ok.

    Violations are reported before incompleteness: a run stopped *by* a
    violation is incomplete too, and the violation is the interesting fact.
    A run that is merely incomplete (budget exhausted with nothing bad
    found) raises :class:`~repro.errors.BudgetExceeded` instead — a
    different failure class, because "no verdict" is not "unsafe".
    """
    if result.violations:
        first = result.violations[0]
        raise PropertyViolation(
            f"{result.system_name}: invariant {first.property_name!r} "
            f"violated\n{first.describe()}", witness=first)
    if result.deadlock_count:
        if result.deadlocks:
            first = result.deadlocks[0]
            raise PropertyViolation(
                f"{result.system_name}: deadlock reachable\n"
                f"{first.describe()}", witness=first)
        raise PropertyViolation(
            f"{result.system_name}: {result.deadlock_count} deadlock "
            "state(s) reachable (no witness trace; re-run the sequential "
            "explorer for one)")
    if not result.completed:
        raise BudgetExceeded(
            f"{result.system_name}: exploration incomplete "
            f"({result.stop_reason}); no safety verdict", stats=result)
    return result


# ---------------------------------------------------------------------------
# progress / livelock
# ---------------------------------------------------------------------------


@dataclass
class ProgressReport:
    """Outcome of the weak-fairness progress check."""

    ok: bool
    n_states: int
    n_sccs: int
    n_terminal_sccs: int
    deadlocks: list[Any] = field(default_factory=list)
    #: one representative state per livelocked terminal SCC, with its size
    livelocks: list[tuple[int, Any]] = field(default_factory=list)
    completed: bool = True
    stop_reason: Optional[str] = None

    def describe(self) -> str:
        if not self.completed:
            return f"progress check incomplete: {self.stop_reason}"
        verdict = "PROGRESS GUARANTEED" if self.ok else "PROGRESS FAILS"
        extra = ""
        if self.deadlocks:
            extra += f"; {len(self.deadlocks)} deadlock(s)"
        if self.livelocks:
            sizes = ", ".join(str(n) for n, _s in self.livelocks[:5])
            extra += f"; livelocked terminal SCC size(s): {sizes}"
        return (f"{verdict}: {self.n_states} states, {self.n_sccs} SCCs "
                f"({self.n_terminal_sccs} terminal){extra}")


def check_progress(
    system: Any,
    *,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
) -> ProgressReport:
    """Check weak-fairness progress (no deadlock, no livelocked terminal SCC).

    Works on any system exposing ``initial_state`` and either ``steps``
    (asynchronous level — progress edges are those completing a rendezvous)
    or ``successors`` + ``is_progress`` (rendezvous level).
    """
    t0 = time.perf_counter()
    states: dict[Hashable, int] = {}
    adjacency: list[list[tuple[int, bool]]] = []
    expand = _expander(system)

    init = system.initial_state()
    states[init] = 0
    adjacency.append([])
    order: list[Hashable] = [init]
    frontier: deque[int] = deque([0])
    deadlocks: list[Any] = []
    completed, stop_reason = True, None

    while frontier:
        if max_states is not None and len(states) > max_states:
            completed, stop_reason = False, f"state budget {max_states} exceeded"
            break
        if max_seconds is not None and time.perf_counter() - t0 > max_seconds:
            completed, stop_reason = False, f"time budget {max_seconds}s exceeded"
            break
        idx = frontier.popleft()
        succs = expand(order[idx])
        if not succs:
            deadlocks.append(order[idx])
        edges: list[tuple[int, bool]] = []
        for nxt, progress in succs:
            j = states.get(nxt)
            if j is None:
                j = len(order)
                states[nxt] = j
                order.append(nxt)
                adjacency.append([])
                frontier.append(j)
            edges.append((j, progress))
        adjacency[idx] = edges

    if not completed:
        return ProgressReport(ok=False, n_states=len(states), n_sccs=0,
                              n_terminal_sccs=0, completed=False,
                              stop_reason=stop_reason)

    sccs = tarjan_sccs([[j for j, _p in edges] for edges in adjacency])
    comp_of = [0] * len(order)
    for comp_idx, comp in enumerate(sccs):
        for node in comp:
            comp_of[node] = comp_idx

    terminal = [True] * len(sccs)
    has_progress = [False] * len(sccs)
    has_internal_edge = [False] * len(sccs)
    for src, edges in enumerate(adjacency):
        for dst, progress in edges:
            if comp_of[src] != comp_of[dst]:
                terminal[comp_of[src]] = False
            else:
                has_internal_edge[comp_of[src]] = True
                if progress:
                    has_progress[comp_of[src]] = True

    livelocks: list[tuple[int, Any]] = []
    for comp_idx, comp in enumerate(sccs):
        if not terminal[comp_idx]:
            continue
        if not has_internal_edge[comp_idx]:
            continue  # a terminal singleton without self-loop is a deadlock,
            # already recorded above
        if not has_progress[comp_idx]:
            livelocks.append((len(comp), order[comp[0]]))

    return ProgressReport(
        ok=not deadlocks and not livelocks,
        n_states=len(states),
        n_sccs=len(sccs),
        n_terminal_sccs=sum(terminal),
        deadlocks=deadlocks,
        livelocks=livelocks,
    )


def _expander(system: Any) -> Callable[[Hashable], list[tuple[Hashable, bool]]]:
    if hasattr(system, "steps"):
        def expand(state: Hashable) -> list[tuple[Hashable, bool]]:
            return [(s.state, bool(s.completes)) for s in system.steps(state)]
        return expand
    if hasattr(system, "is_progress"):
        def expand(state: Hashable) -> list[tuple[Hashable, bool]]:
            return [(nxt, system.is_progress(action))
                    for action, nxt in system.successors(state)]
        return expand
    raise TypeError("system supports neither steps() nor "
                    "successors()+is_progress()")


def tarjan_sccs(adjacency: list[list[int]]) -> list[list[int]]:
    """Strongly connected components of a graph given as adjacency lists.

    Iterative Tarjan: returns SCCs in reverse topological order (every edge
    between components goes from a later-listed SCC to an earlier one).
    """
    n = len(adjacency)
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            for pos in range(edge_pos, len(adjacency[node])):
                succ = adjacency[node][pos]
                if index[succ] == -1:
                    work[-1] = (node, pos + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack[succ]:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                comp: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
