"""Checking Equation 1 of the paper: the refinement is a weak simulation.

For every reachable asynchronous state ``q`` and transition ``q ->l q'``::

    abs(q) = abs(q')  or  abs(q) ->h abs(q')          (Equation 1)

i.e. every asynchronous step is either a *stutter* (invisible at the
rendezvous level) or maps to a rendezvous-level transition.  The paper
argues this on paper for the rule schema; here we *machine-check* it
exhaustively for any concrete protocol and node count by exploring the full
asynchronous state space and testing each edge.

One refinement of the statement discovered by machine-checking it: for a
*home-initiated* fused pair (section 3.3, e.g. ``inv``/``ID``), the
responder's C3 action consumes the un-acked request, performs its local
actions, and emits the reply *atomically* — there is no intermediate
asynchronous state, so that single edge maps to **two consecutive**
rendezvous transitions (``inv`` completes, then ``ID`` completes).  The
paper folds this into "a repl message is treated as an ack", which is sound
but makes Equation 1 hold only in the bounded multi-step form::

    abs(q) = abs(q')  or  abs(q) ->h ... ->h abs(q')   (at most 2 steps)

The checker therefore allows a configurable ``max_depth`` defaulting to 2
when the plan fuses any pair and 1 otherwise (the paper's literal claim is
verified exactly for un-fused refinements).  Remote-initiated pairs
(``req``/``gr``) do not need depth 2: between the home consuming the
request and sending the reply the requester is observably *half-forwarded*
(see :mod:`repro.refine.abstraction`), giving a witness intermediate state.

We additionally check the base case (the abstractions of the two initial
states agree), which the simulation argument needs but Equation 1 alone
does not state.

This check is the workhorse of the property-based test-suite: random
protocols within the paper's syntactic restrictions are refined and
verified to weakly simulate, supporting the paper's claim that the
procedure "applies to large classes of DSM protocols".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..refine.abstraction import abstract_state
from ..semantics.asynchronous import AsyncSystem
from ..semantics.rendezvous import RendezvousSystem
from ..semantics.state import RvState
from .explorer import explore
from .stats import ExplorationResult

__all__ = ["SimulationReport", "check_simulation"]


@dataclass
class SimulationReport:
    """Outcome of a weak-simulation check."""

    ok: bool
    n_async_states: int
    n_edges_checked: int
    n_stutters: int
    n_mapped: int
    #: edges needing the two-step form (home-initiated fused responses)
    n_mapped_deep: int
    #: rendezvous states that are the image of some asynchronous state
    n_abstract_states: int
    exploration: Optional[ExplorationResult] = None
    failures: list[str] = field(default_factory=list)

    def describe(self) -> str:
        verdict = "WEAK SIMULATION HOLDS" if self.ok else "SIMULATION FAILS"
        lines = [
            f"{verdict}: {self.n_edges_checked} async edges over "
            f"{self.n_async_states} states "
            f"({self.n_stutters} stutters, {self.n_mapped} single-step, "
            f"{self.n_mapped_deep} two-step fused; image has "
            f"{self.n_abstract_states} rendezvous states)"
        ]
        lines += [f"  FAIL: {f}" for f in self.failures[:10]]
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        return "\n".join(lines)


def check_simulation(
    async_system: AsyncSystem,
    *,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    max_failures: int = 25,
    max_depth: Optional[int] = None,
) -> SimulationReport:
    """Exhaustively verify Equation 1 for ``async_system``.

    Explores the full asynchronous state space (subject to the budgets),
    abstracts every state, and checks each edge is a stutter or maps to at
    most ``max_depth`` consecutive rendezvous transitions (see the module
    docstring for why fused pairs need depth 2).  Rendezvous successor sets
    are memoized per abstract state, so the rendezvous side is only
    expanded on demand.
    """
    rv_system = RendezvousSystem(async_system.protocol,
                                 async_system.n_remotes)
    if max_depth is None:
        max_depth = 2 if async_system.plan.fused else 1
    exploration = explore(async_system,
                          name=f"{async_system.refined.name}-simcheck",
                          max_states=max_states, max_seconds=max_seconds,
                          keep_graph=True, allow_deadlock=True)
    graph = exploration.graph or {}

    abs_cache: dict[object, RvState] = {}
    rv_succ_cache: dict[RvState, frozenset[RvState]] = {}

    def abstraction(state: object) -> RvState:
        cached = abs_cache.get(state)
        if cached is None:
            cached = abstract_state(async_system, state)  # type: ignore[arg-type]
            abs_cache[state] = cached
        return cached

    def rv_successors(state: RvState) -> frozenset[RvState]:
        cached = rv_succ_cache.get(state)
        if cached is None:
            cached = frozenset(s for _a, s in rv_system.successors(state))
            rv_succ_cache[state] = cached
        return cached

    failures: list[str] = []
    n_edges = n_stutters = n_mapped = n_deep = 0

    # base case: initial abstractions agree
    init_abs = abstraction(async_system.initial_state())
    rv_init = rv_system.initial_state()
    if init_abs != rv_init:
        failures.append(
            f"initial abstraction mismatch: abs(q0) = {init_abs.describe()} "
            f"but rendezvous initial state is {rv_init.describe()}")

    def reachable_within(src: RvState, dst: RvState, depth: int) -> int:
        """Smallest number of rendezvous steps (1..depth) from src to dst,
        or 0 if unreachable within the bound."""
        frontier = {src}
        for hops in range(1, depth + 1):
            nxt: set[RvState] = set()
            for state in frontier:
                succ = rv_successors(state)
                if dst in succ:
                    return hops
                nxt.update(succ)
            frontier = nxt
        return 0

    for state, successors in graph.items():
        if len(failures) >= max_failures:
            break
        src_abs = abstraction(state)
        for action, nxt in successors:
            n_edges += 1
            dst_abs = abstraction(nxt)
            if dst_abs == src_abs:
                n_stutters += 1
                continue
            hops = reachable_within(src_abs, dst_abs, max_depth)
            if hops == 1:
                n_mapped += 1
            elif hops > 1:
                n_deep += 1
            else:
                failures.append(
                    f"edge {action.describe()} maps "
                    f"{src_abs.describe()} -> {dst_abs.describe()}, not "
                    f"reachable in <= {max_depth} rendezvous steps"
                )
                if len(failures) >= max_failures:
                    break

    return SimulationReport(
        ok=not failures and exploration.completed,
        n_async_states=exploration.n_states,
        n_edges_checked=n_edges,
        n_stutters=n_stutters,
        n_mapped=n_mapped,
        n_mapped_deep=n_deep,
        n_abstract_states=len(set(abs_cache.values())),
        exploration=exploration,
        failures=failures if failures else (
            [] if exploration.completed
            else [f"exploration incomplete: {exploration.stop_reason}"]),
    )
