"""Parallel explicit-state reachability (multi-process frontier expansion).

Explicit-state exploration is embarrassingly parallel per BFS level: every
frontier state's successor computation is independent.  This module runs a
level-synchronous BFS where frontier chunks are expanded by a pool of
worker processes, and the master deduplicates against the visited set —
the classic distributed-model-checking work split, in miniature.

Two Python realities shape the design (profiled, per the optimisation
adage "no optimisation without measuring"):

* protocol objects carry lambdas and cannot be pickled, so workers
  *reconstruct* the transition system from a picklable
  :class:`SystemSpec` (library protocols by name + refinement-config
  kwargs) in a pool initializer — user protocols can participate by
  registering a module-level factory;
* per-state work is microseconds, so shipping states to workers only pays
  off once frontiers are large.  The driver therefore expands small
  frontiers inline and only fans out above ``fanout_threshold``; expect
  useful speedups on the *asynchronous* spaces (big states, big frontiers)
  and none on rendezvous-size graphs — the benchmark records both, and the
  honest summary is that Python process-pool overheads eat most of the
  gain unless states are expensive.  The module is as much a demonstration
  of the technique (and of measuring before trusting it) as a speedup.

Results are byte-identical to the sequential explorer (state and
transition counts, deadlock count); invariant checking and trace
reconstruction stay sequential-only features.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from .explorer import explore
from .stats import ExplorationResult

__all__ = ["SystemSpec", "build_system", "explore_parallel"]


@dataclass(frozen=True)
class SystemSpec:
    """Picklable description of a transition system to reconstruct.

    ``protocol`` is a library protocol name (``migratory``, ``invalidate``,
    ``msi``, ``mesi``) or a name registered via :func:`register_factory`.
    ``config`` holds :class:`~repro.refine.plan.RefinementConfig` kwargs as
    a tuple of items (hashable/picklable).
    """

    protocol: str
    level: str  # "rendezvous" | "async"
    n_remotes: int
    config: tuple[tuple[str, Any], ...] = ()
    symmetry: bool = False

    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)


_EXTRA_FACTORIES: dict[str, Callable[[], Any]] = {}


def register_factory(name: str, factory: Callable[[], Any]) -> None:
    """Register a module-level protocol factory for worker processes.

    ``factory`` must be importable by name from a module (a plain function,
    not a lambda/closure), or registration defeats its purpose.
    """
    _EXTRA_FACTORIES[name] = factory


def build_system(spec: SystemSpec) -> Any:
    """Construct the transition system described by ``spec`` (worker side)."""
    from ..protocols.invalidate import invalidate_protocol
    from ..protocols.mesi import mesi_protocol
    from ..protocols.migratory import migratory_protocol
    from ..protocols.msi import msi_protocol
    from ..refine.engine import refine
    from ..refine.plan import RefinementConfig
    from ..semantics.asynchronous import AsyncSystem
    from ..semantics.rendezvous import RendezvousSystem

    factories: dict[str, Callable[[], Any]] = {
        "migratory": migratory_protocol,
        "invalidate": invalidate_protocol,
        "msi": msi_protocol,
        "mesi": mesi_protocol,
        **_EXTRA_FACTORIES,
    }
    try:
        protocol = factories[spec.protocol]()
    except KeyError:
        raise KeyError(f"unknown protocol {spec.protocol!r}; register a "
                       "factory with register_factory()") from None
    system: Any
    if spec.level == "rendezvous":
        system = RendezvousSystem(protocol, spec.n_remotes)
    elif spec.level == "async":
        refined = refine(protocol, RefinementConfig(**spec.config_dict()))
        system = AsyncSystem(refined, spec.n_remotes)
    else:
        raise ValueError(f"unknown level {spec.level!r}")
    if spec.symmetry:
        from ..protocols.symmetry import symmetry_spec_for
        from .symmetry import SymmetricSystem
        system = SymmetricSystem(system, symmetry_spec_for(spec.protocol))
    return system


# -- worker side ---------------------------------------------------------------

_WORKER_SYSTEM: Any = None


def _init_worker(spec: SystemSpec) -> None:
    global _WORKER_SYSTEM
    _WORKER_SYSTEM = build_system(spec)


def _expand_chunk(states: list[Hashable]) -> list[tuple[int, list[Hashable]]]:
    """Expand a chunk: per state, (n_transitions, successor states)."""
    system = _WORKER_SYSTEM
    out: list[tuple[int, list[Hashable]]] = []
    for state in states:
        successors = system.successors(state)
        out.append((len(successors), [nxt for _a, nxt in successors]))
    return out


# -- driver ----------------------------------------------------------------------


def explore_parallel(
    spec: SystemSpec,
    *,
    workers: Optional[int] = None,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    fanout_threshold: int = 256,
    chunk_size: int = 128,
    allow_deadlock: bool = False,
) -> ExplorationResult:
    """Level-synchronous parallel BFS over the system described by ``spec``.

    Falls back to the sequential explorer for ``workers == 1``.  Counts are
    identical to :func:`repro.check.explorer.explore` (BFS order differs,
    reachable sets do not).
    """
    workers = workers or max(1, (os.cpu_count() or 2) - 1)
    local_system = build_system(spec)
    name = f"{spec.protocol}-{spec.level}-{spec.n_remotes}-parallel"
    if workers == 1:
        return explore(local_system, name=name, max_states=max_states,
                       max_seconds=max_seconds,
                       allow_deadlock=allow_deadlock)

    t0 = time.perf_counter()
    init = local_system.initial_state()
    visited: set[Hashable] = {init}
    frontier: list[Hashable] = [init]
    n_transitions = 0
    n_deadlocks = 0
    completed = True
    stop_reason = None

    with ProcessPoolExecutor(max_workers=workers, initializer=_init_worker,
                             initargs=(spec,)) as pool:
        while frontier:
            if max_states is not None and len(visited) > max_states:
                completed, stop_reason = \
                    False, f"state budget {max_states} exceeded"
                break
            if max_seconds is not None and \
                    time.perf_counter() - t0 > max_seconds:
                completed, stop_reason = False, "time budget exceeded"
                break

            expanded: list[tuple[int, list[Hashable]]]
            if len(frontier) < fanout_threshold:
                expanded = [_expand_locally(local_system, s)
                            for s in frontier]
            else:
                chunks = [frontier[i:i + chunk_size]
                          for i in range(0, len(frontier), chunk_size)]
                expanded = []
                for result in pool.map(_expand_chunk, chunks):
                    expanded.extend(result)

            next_frontier: list[Hashable] = []
            for n_succ, successors in expanded:
                n_transitions += n_succ
                if n_succ == 0 and not allow_deadlock:
                    n_deadlocks += 1
                for state in successors:
                    if state not in visited:
                        visited.add(state)
                        next_frontier.append(state)
            frontier = next_frontier

    result = ExplorationResult(
        system_name=name,
        n_states=len(visited),
        n_transitions=n_transitions,
        seconds=time.perf_counter() - t0,
        completed=completed,
        stop_reason=stop_reason,
        # counts only; building witness traces needs the sequential
        # explorer's parent pointers
        deadlock_count=n_deadlocks,
    )
    return result


def _expand_locally(system: Any, state: Hashable) -> tuple[int, list[Hashable]]:
    successors = system.successors(state)
    return len(successors), [nxt for _a, nxt in successors]
