"""Parallel explicit-state reachability (multi-process frontier expansion).

Explicit-state exploration is embarrassingly parallel per BFS level: every
frontier state's successor computation is independent.  This module runs a
level-synchronous BFS where frontier chunks are expanded by a persistent
pool of worker processes (one pool for the whole run — spawning and
re-initialising per level would drown the gain), and the master *replays*
the expansion results in frontier order through the same
:class:`~repro.check.explorer.ExplorationCore` the sequential explorer
uses — the classic distributed-model-checking work split, in miniature.

Three Python realities shape the design (profiled, per the optimisation
adage "no optimisation without measuring"):

* protocol objects carry lambdas and cannot be pickled, so workers
  *reconstruct* the transition system from a picklable
  :class:`SystemSpec` (library protocols by name + refinement-config
  kwargs) in a pool initializer.  User protocols participate by
  registering a module-level factory with :func:`register_factory`; its
  ``module:function`` path rides inside the spec, so workers resolve it
  by import — which works under every multiprocessing start method,
  including ``spawn``, where workers inherit nothing from the parent;
* shipping states costs pickling; workers therefore deduplicate the
  successors of each chunk before shipping them back (any successor equal
  to a chunk input or to an earlier successor of the same chunk is
  already known to the master, so dropping it cannot change counts);
* per-state work is microseconds, so fan-out only pays once frontiers are
  large.  The driver expands small frontiers inline and only ships chunks
  above ``fanout_threshold``; expect useful speedups on the
  *asynchronous* spaces (big states, big frontiers) and none on
  rendezvous-size graphs — the benchmark records both, and the honest
  summary is that Python process-pool overheads eat most of the gain
  unless states are expensive.

Counts are **identical** to the sequential explorer — including runs
truncated by ``max_states``/``max_seconds``.  The master consumes
expansion results one source state at a time, in frontier order, and
consults the shared core's budget checks before *each* state's results
are admitted — exactly where the sequential loop consults them — so a
budget can no longer slide to the end of a level (the historical
divergence this module shipped with).  Workers may expand a few states
speculatively past the stop point; their results are discarded, never
counted.  Invariant checking and trace reconstruction stay
sequential-only features.

The master-replay split keeps one visited store in the master process —
its dict insertions and its RAM bound every run.  The *owner-computes*
driver in :mod:`repro.check.partitioned` removes that ceiling: workers
own fingerprint-range partitions of the visited set outright and
exchange cross-partition successors in batches at this same
level-synchronous barrier, with the master reduced to replaying integer
counts.  This module remains the right tool when states are cheap to
ship and one machine-sized store suffices; both drivers share
:class:`~repro.check.explorer.ExplorationCore`, :class:`SystemSpec`,
and :func:`build_system`.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Hashable, Iterator, Optional

from .explorer import ExplorationCore, expand_state, explore
from .observe import RunObserver
from .stats import ExplorationResult
from .store import StoreSpec

__all__ = ["SystemSpec", "build_system", "explore_parallel",
           "register_factory", "resolve_factory"]


@dataclass(frozen=True)
class SystemSpec:
    """Picklable description of a transition system to reconstruct.

    ``protocol`` is a library protocol name (``migratory``, ``invalidate``,
    ``msi``, ``mesi``) or a name registered via :func:`register_factory`.
    ``config`` holds :class:`~repro.refine.plan.RefinementConfig` kwargs as
    a tuple of items (hashable/picklable).  ``factory`` optionally pins a
    ``module:function`` protocol factory path, which worker processes
    resolve by import — the only registration that survives the ``spawn``
    start method; :func:`explore_parallel` fills it in automatically for
    registered factories.
    """

    protocol: str
    level: str  # "rendezvous" | "async"
    n_remotes: int
    config: tuple[tuple[str, Any], ...] = ()
    symmetry: bool = False
    factory: Optional[str] = None
    #: ample-set partial-order reduction (async level only; counts-preset
    #: — ``repro check`` sweeps verify no state predicates)
    por: bool = False
    #: step engine for the async level ("interpreted" or "compiled").
    #: Only the *name* ships to workers: each spawn worker regenerates
    #: and compiles the specialized module itself in :func:`build_system`
    #: (generation is deterministic, so every worker runs bit-identical
    #: step functions; the shared on-disk source cache makes rebuilds a
    #: file read).
    engine: str = "interpreted"

    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)

    def reductions(self) -> tuple[str, ...]:
        """Active reduction names, in wrapping order (inner first)."""
        return tuple(name for name, active in
                     (("por", self.por), ("symmetry", self.symmetry))
                     if active)


#: name -> (callable for this process, importable path for workers)
_EXTRA_FACTORIES: dict[str, tuple[Callable[[], Any], Optional[str]]] = {}


def _factory_path(factory: Callable[[], Any]) -> Optional[str]:
    """The ``module:function`` path of ``factory``, if import resolves
    back to the same object; None for lambdas/closures/instance cruft."""
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", "")
    if not module or not qualname or "<" in qualname or "." in qualname:
        return None
    try:
        imported = importlib.import_module(module)
    except ImportError:
        return None
    if getattr(imported, qualname, None) is not factory:
        return None
    return f"{module}:{qualname}"


def resolve_factory(path: str) -> Callable[[], Any]:
    """Import a ``module:function`` factory path (worker side)."""
    module, _, attr = path.partition(":")
    if not module or not attr:
        raise ValueError(f"factory path {path!r} is not 'module:function'")
    factory = getattr(importlib.import_module(module), attr, None)
    if not callable(factory):
        raise ValueError(f"factory path {path!r} does not name a callable")
    return factory


def register_factory(name: str, factory: Callable[[], Any]) -> None:
    """Register a protocol factory under ``name`` for :func:`build_system`.

    A *module-level* function (importable as ``module:function``) also
    works in worker processes under any start method — its path is
    shipped inside the :class:`SystemSpec`.  A lambda/closure still works
    in this process and in ``fork`` workers (which inherit the registry),
    but cannot be shipped to ``spawn`` workers.
    """
    _EXTRA_FACTORIES[name] = (factory, _factory_path(factory))


def shippable_spec(spec: SystemSpec) -> SystemSpec:
    """Attach the registered factory path, so workers can rebuild it."""
    if spec.factory is not None:
        return spec
    entry = _EXTRA_FACTORIES.get(spec.protocol)
    if entry is None or entry[1] is None:
        return spec
    return replace(spec, factory=entry[1])


def build_system(spec: SystemSpec) -> Any:
    """Construct the transition system described by ``spec`` (worker side)."""
    from ..protocols.invalidate import invalidate_protocol
    from ..protocols.mesi import mesi_protocol
    from ..protocols.migratory import migratory_protocol
    from ..protocols.msi import msi_protocol
    from ..refine.engine import refine
    from ..refine.plan import RefinementConfig
    from ..semantics.asynchronous import AsyncSystem
    from ..semantics.rendezvous import RendezvousSystem

    factories: dict[str, Callable[[], Any]] = {
        "migratory": migratory_protocol,
        "invalidate": invalidate_protocol,
        "msi": msi_protocol,
        "mesi": mesi_protocol,
    }
    entry = _EXTRA_FACTORIES.get(spec.protocol)
    if entry is not None:
        protocol = entry[0]()
    elif spec.factory is not None:
        protocol = resolve_factory(spec.factory)()
    else:
        try:
            protocol = factories[spec.protocol]()
        except KeyError:
            raise KeyError(
                f"unknown protocol {spec.protocol!r}; register a "
                "module-level factory with register_factory()") from None
    system: Any
    if spec.level == "rendezvous":
        if spec.por:
            raise ValueError(
                "--por prunes asynchronous message interleavings; the "
                "rendezvous level has none (use --level async)")
        if spec.engine != "interpreted":
            raise ValueError(
                "the compiled step engine specializes the asynchronous "
                "transition table; the rendezvous level has only the "
                "interpreted engine (use --level async)")
        system = RendezvousSystem(protocol, spec.n_remotes)
    elif spec.level == "async":
        refined = refine(protocol, RefinementConfig(**spec.config_dict()))
        system = AsyncSystem(refined, spec.n_remotes, engine=spec.engine)
    else:
        raise ValueError(f"unknown level {spec.level!r}")
    if spec.por:
        from .por import PRESERVE_COUNTS, PORSystem
        system = PORSystem(system, preserve=PRESERVE_COUNTS)
    if spec.symmetry:
        from ..protocols.symmetry import symmetry_spec_for
        from .symmetry import SymmetricSystem
        system = SymmetricSystem(system, symmetry_spec_for(spec.protocol))
    return system


# -- worker side ---------------------------------------------------------------

_WORKER_SYSTEM: Any = None


def _init_worker(spec: SystemSpec) -> None:
    global _WORKER_SYSTEM
    _WORKER_SYSTEM = build_system(spec)


def _expand_chunk(states: list[Hashable],
                  ) -> list[tuple[int, int, list[Hashable]]]:
    """Expand a chunk: per state, (enabled count, taken count, fresh).

    Successors are deduplicated *within the chunk* before pickling them
    back: every chunk input is already in the master's visited set (that
    is how it became frontier), and an earlier occurrence in the same
    chunk reaches the master first, so a duplicate could never be
    admitted anyway.  The raw taken count per source state is preserved —
    the master's transition/deadlock accounting needs it — next to the
    enabled-before-reduction count feeding the reduction-ratio metric.
    """
    system = _WORKER_SYSTEM
    seen: set[Hashable] = set(states)
    out: list[tuple[int, int, list[Hashable]]] = []
    for state in states:
        successors, enabled = expand_state(system, state)
        fresh: list[Hashable] = []
        for _action, nxt in successors:
            if nxt not in seen:
                seen.add(nxt)
                fresh.append(nxt)
        out.append((enabled, len(successors), fresh))
    return out


# -- driver ----------------------------------------------------------------------


def explore_parallel(
    spec: SystemSpec,
    *,
    workers: Optional[int] = None,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    max_bytes: Optional[int] = None,
    fanout_threshold: int = 256,
    chunk_size: int = 128,
    allow_deadlock: bool = False,
    store: StoreSpec = "exact",
    observer: Optional[RunObserver] = None,
    start_method: Optional[str] = None,
) -> ExplorationResult:
    """Level-synchronous parallel BFS over the system described by ``spec``.

    Falls back to the sequential explorer for ``workers == 1``.  Counts
    (``n_states``, ``n_transitions``, ``deadlock_count``) and
    ``stop_reason`` are identical to
    :func:`repro.check.explorer.explore`, including budget-truncated
    runs; BFS order differs, reachable sets do not.  ``store``,
    ``observer`` and budget semantics are shared with the sequential
    driver through :class:`~repro.check.explorer.ExplorationCore`.

    :param start_method: multiprocessing start method for the pool
        (``"fork"``/``"spawn"``/``"forkserver"``); None uses the
        platform default.
    """
    workers = workers or max(1, (os.cpu_count() or 2) - 1)
    local_system = build_system(spec)
    name = f"{spec.protocol}-{spec.level}-{spec.n_remotes}-parallel"
    if workers == 1:
        return explore(local_system, name=name, max_states=max_states,
                       max_seconds=max_seconds, max_bytes=max_bytes,
                       allow_deadlock=allow_deadlock,
                       store=store, observer=observer,
                       reductions=spec.reductions())

    core = ExplorationCore(name=name, store=store, observer=observer,
                           max_states=max_states, max_seconds=max_seconds,
                           max_bytes=max_bytes,
                           workers=workers, reductions=spec.reductions(),
                           engine=spec.engine)
    core.start()
    visited = core.store
    init = local_system.initial_state()
    visited.add(init)

    mp_context = (multiprocessing.get_context(start_method)
                  if start_method is not None else None)
    pool = ProcessPoolExecutor(max_workers=workers,
                               initializer=_init_worker,
                               initargs=(shippable_spec(spec),),
                               mp_context=mp_context)
    stopped = False
    try:
        level: list[Hashable] = [init]
        level_index = 0
        while level:
            next_level: list[Hashable] = []
            expanded = candidates = new_states = enabled = 0
            for n_enabled, n_succ, successors in _expansions(
                    pool, local_system, level, fanout_threshold, chunk_size):
                # The replay point: this is where the sequential loop
                # stands immediately before expanding the same state, so
                # the budget verdict — and every count — matches it.
                if core.should_stop():
                    stopped = True
                    break
                expanded += 1
                core.n_transitions += n_succ
                core.n_enabled += n_enabled
                candidates += n_succ
                enabled += n_enabled
                if n_succ == 0 and not allow_deadlock:
                    core.deadlock_count += 1
                for state in successors:
                    if visited.add(state):
                        new_states += 1
                        next_level.append(state)
            core.level_done(level_index, len(level), expanded, candidates,
                            new_states, enabled)
            level_index += 1
            level = [] if stopped else next_level
    finally:
        # one persistent pool for the whole run; on truncation, abandon
        # whatever speculative chunks are still in flight
        pool.shutdown(wait=False, cancel_futures=True)

    # counts only; building witness traces needs the sequential
    # explorer's parent pointers
    return core.result()


def _expansions(
    pool: ProcessPoolExecutor,
    local_system: Any,
    level: list[Hashable],
    fanout_threshold: int,
    chunk_size: int,
) -> Iterator[tuple[int, int, list[Hashable]]]:
    """Per-state ``(enabled, taken, successors)`` for one level, in
    frontier order.

    Small frontiers are expanded inline (pool overhead would dominate);
    large ones are chunked across the pool.  All chunks are submitted up
    front so workers stay busy while the master replays results; if the
    consumer stops early (budget trip), pending chunks are cancelled.
    """
    if len(level) < fanout_threshold:
        for state in level:
            successors, enabled = expand_state(local_system, state)
            yield enabled, len(successors), [nxt for _action, nxt
                                             in successors]
        return
    chunks = [level[i:i + chunk_size]
              for i in range(0, len(level), chunk_size)]
    futures = [pool.submit(_expand_chunk, chunk) for chunk in chunks]
    try:
        for future in futures:
            yield from future.result()
    finally:
        for future in futures:
            future.cancel()
