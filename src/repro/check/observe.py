"""Run observability for the explicit-state explorers.

Long reachability sweeps — the paper's Table 3 runs took SPIN minutes to
hours — are miserable to babysit blind.  This module defines the
:class:`RunObserver` protocol both explorers emit to, plus the two
consumers the CLI and benchmarks use:

* :class:`ProgressRenderer` prints one line per BFS level (frontier
  size, cumulative states, states/sec, dedup ratio, approximate bytes),
  the model checker's analogue of a progress bar;
* :class:`JsonProfileWriter` records the same events as a JSON document
  (schema ``repro.profile/4``) for offline analysis and for the CI
  benchmark artifact.

Profile JSON schema (``repro.profile/4``)::

    {
      "schema": "repro.profile/4",
      "run": {"name": ..., "store": "exact"|"fingerprint",
              "workers": int, "max_states": int|null,
              "max_seconds": float|null, "max_bytes": int|null,
              "partitions": int,
              "reductions": ["symmetry"?, "por"?],
              "engine": "interpreted"|"compiled"},
      "levels": [ {"level": int, "frontier": int, "expanded": int,
                   "candidates": int, "enabled": int,
                   "new_states": int,
                   "n_states": int, "n_transitions": int,
                   "deadlocks": int, "collisions": int,
                   "approx_bytes": int, "spill_bytes": int,
                   "seconds": float,
                   "dedup_ratio": float, "states_per_sec": float,
                   "reduction_ratio": float}, ... ],
      "partitions": [ {"partition": int, "owned": int, "probes": int,
                       "collisions": int, "approx_bytes": int,
                       "spill_bytes": int, "spill_merges": int,
                       "dedup_ratio": float,
                       ("exchanged_batches": int,
                        "exchanged_states": int,
                        "received_candidates": int)?}, ... ],
      "result": {"system": str, "store": str, "n_states": int,
                 "n_transitions": int, "n_enabled": int,
                 "reductions": [str, ...], "deadlocks": int,
                 "fingerprint_collisions": int, "seconds": float,
                 "completed": bool, "stop_reason": str|null,
                 "approx_bytes": int, "spill_bytes": int,
                 "approx_bytes_detail": {"entries": int,
                                         "state_caches": int}|null}
    }

``/2`` is a strict superset of ``/1``: it *adds* the reduction
provenance (``run.reductions``, ``result.reductions``), the
enabled-before-reduction transition counts (``levels[].enabled``,
``result.n_enabled`` — equal to the taken counts when no reduction is
active) and the derived ``levels[].reduction_ratio``.  ``/3`` adds only
``run.engine`` — which step engine produced the successors
(``"interpreted"``, the guard-AST interpreter, or ``"compiled"``, the
protocol-specialized module from :mod:`repro.refine.compiled`).  Counts
are engine-independent by construction; the field exists so throughput
numbers are never compared across engines by accident.  ``/4`` adds the
partitioned-exploration observability: ``run.partitions`` and
``run.max_bytes``, per-level ``spill_bytes``, the top-level
``partitions`` list (one row per visited-set partition: states owned,
membership probes, detected collisions, resident and spilled bytes,
merge count, dedup ratio — plus the batch-exchange counters when the
owner-computes driver produced the row; empty for unpartitioned runs),
and the result's ``spill_bytes``/``approx_bytes_detail`` (the exact
store's entries-vs-memo-cache split; null for stores without one).
Readers of older schemas keep working unchanged.

``levels`` includes the partial level in flight when a budget truncates
the run, so profiles of "Unfinished" cells show exactly where the wall
was hit.  Every event carries *cumulative* totals (``n_states`` etc.)
next to the per-level deltas (``frontier``/``candidates``/``new_states``)
so consumers need no reduction pass.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Optional, Protocol, Union

from .stats import ExplorationResult, _fmt_bytes

__all__ = [
    "RunInfo",
    "LevelEvent",
    "RunObserver",
    "NullObserver",
    "MultiObserver",
    "ProgressRenderer",
    "JsonProfileWriter",
    "PROFILE_SCHEMA",
]

PROFILE_SCHEMA = "repro.profile/4"


@dataclass(frozen=True)
class RunInfo:
    """Static facts about one exploration run, emitted before level 0."""

    name: str
    store: str
    workers: int = 1
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    #: active state-space reductions, inner wrapper first (e.g.
    #: ``("por", "symmetry")``); empty for full exploration
    reductions: tuple[str, ...] = ()
    #: step engine that produced the successors ("interpreted" or
    #: "compiled"); counts never depend on it, throughput does
    engine: str = "interpreted"
    #: visited-set partitions (1 = classic unsharded store); either
    #: in-process ranges or one owner process per partition
    partitions: int = 1
    #: memory budget on the store footprint estimate, None = unbounded
    max_bytes: Optional[int] = None


@dataclass(frozen=True)
class LevelEvent:
    """Statistics for one completed (or budget-truncated) BFS level."""

    #: 0-based level index (level 0 is the initial state alone)
    level: int
    #: states scheduled for expansion at this level
    frontier: int
    #: states actually expanded (< ``frontier`` only when truncated)
    expanded: int
    #: successor states examined (transitions taken) at this level
    candidates: int
    #: states first discovered at this level
    new_states: int
    #: cumulative distinct states in the store
    n_states: int
    #: cumulative transitions examined
    n_transitions: int
    #: cumulative deadlocked states
    deadlocks: int
    #: cumulative detected fingerprint collisions (0 for exact stores)
    collisions: int
    #: store footprint estimate after this level
    approx_bytes: int
    #: wall-clock seconds since the run started
    seconds: float
    #: transitions enabled at this level before any reduction pruned
    #: them (== ``candidates`` when no reduction is active; 0 from
    #: pre-/2 producers that never measured it)
    enabled: int = 0
    #: bytes spilled to disk across all partitions after this level
    #: (0 for stores without a disk tier)
    spill_bytes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of examined successors that were already visited."""
        if self.candidates == 0:
            return 0.0
        return 1.0 - self.new_states / self.candidates

    @property
    def reduction_ratio(self) -> float:
        """Fraction of enabled transitions pruned by reduction."""
        if self.enabled <= 0 or self.candidates >= self.enabled:
            return 0.0
        return 1.0 - self.candidates / self.enabled

    @property
    def states_per_sec(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.n_states / self.seconds


class RunObserver(Protocol):
    """What an exploration driver reports to.  All methods are optional
    work for the consumer; drivers call every one exactly as documented:
    ``on_start`` once, ``on_level`` per (possibly partial) level in
    order, ``on_finish`` once with the final result."""

    def on_start(self, run: RunInfo) -> None: ...

    def on_level(self, event: LevelEvent) -> None: ...

    def on_finish(self, result: ExplorationResult) -> None: ...


class NullObserver:
    """The do-nothing default."""

    def on_start(self, run: RunInfo) -> None:
        pass

    def on_level(self, event: LevelEvent) -> None:
        pass

    def on_finish(self, result: ExplorationResult) -> None:
        pass


class MultiObserver:
    """Fan one event stream out to several observers (CLI: progress
    lines *and* a profile file)."""

    def __init__(self, *observers: RunObserver) -> None:
        self.observers = tuple(observers)

    def on_start(self, run: RunInfo) -> None:
        for obs in self.observers:
            obs.on_start(run)

    def on_level(self, event: LevelEvent) -> None:
        for obs in self.observers:
            obs.on_level(event)

    def on_finish(self, result: ExplorationResult) -> None:
        for obs in self.observers:
            obs.on_finish(result)


class ProgressRenderer:
    """One human-readable line per level, SPIN-progress style."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def on_start(self, run: RunInfo) -> None:
        budget = []
        if run.max_states is not None:
            budget.append(f"max_states={run.max_states}")
        if run.max_seconds is not None:
            budget.append(f"max_seconds={run.max_seconds}")
        if run.max_bytes is not None:
            budget.append(f"max_bytes={_fmt_bytes(run.max_bytes)}")
        suffix = f" [{', '.join(budget)}]" if budget else ""
        if run.reductions:
            suffix += f" [reductions: {'+'.join(run.reductions)}]"
        sharding = (f", partitions={run.partitions}"
                    if run.partitions > 1 else "")
        print(f"exploring {run.name} (store={run.store}, "
              f"workers={run.workers}{sharding}, "
              f"engine={run.engine}){suffix}",
              file=self.stream)

    def on_level(self, event: LevelEvent) -> None:
        line = (f"  level {event.level:3d}: frontier {event.frontier:7d}  "
                f"states {event.n_states:8d}  "
                f"{event.states_per_sec:8.0f} st/s  "
                f"dedup {event.dedup_ratio:5.1%}  "
                f"mem {_fmt_bytes(event.approx_bytes)}")
        if event.spill_bytes:
            line += f"  spill {_fmt_bytes(event.spill_bytes)}"
        if event.reduction_ratio > 0:
            line += f"  reduced {event.reduction_ratio:5.1%}"
        if event.collisions:
            line += f"  collisions {event.collisions}"
        if event.expanded < event.frontier:
            line += f"  (truncated after {event.expanded})"
        print(line, file=self.stream)

    def on_finish(self, result: ExplorationResult) -> None:
        print(f"  done: {result.describe()}", file=self.stream)
        if result.fingerprint_collisions:
            print(f"  fingerprint collisions detected: "
                  f"{result.fingerprint_collisions} (lower bound on "
                  f"states hash compaction may have merged)",
                  file=self.stream)
        for row in result.partition_stats:
            line = (f"  partition {row['partition']}: "
                    f"owned {row['owned']}  probes {row['probes']}  "
                    f"dedup {float(row['dedup_ratio']):5.1%}  "
                    f"mem {_fmt_bytes(row['approx_bytes'])}")
            if row.get("spill_bytes"):
                line += (f"  spill {_fmt_bytes(row['spill_bytes'])} "
                         f"({row.get('spill_merges', 0)} merges)")
            if row.get("collisions"):
                line += f"  collisions {row['collisions']}"
            print(line, file=self.stream)


class JsonProfileWriter:
    """Accumulate level events; write the profile JSON on finish."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._run: Optional[RunInfo] = None
        self._levels: list[LevelEvent] = []

    def on_start(self, run: RunInfo) -> None:
        self._run = run
        self._levels = []

    def on_level(self, event: LevelEvent) -> None:
        self._levels.append(event)

    def on_finish(self, result: ExplorationResult) -> None:
        self.path.write_text(json.dumps(self.profile(result), indent=2)
                             + "\n")

    def profile(self, result: ExplorationResult) -> dict[str, object]:
        """The profile document as a plain dict (what gets written)."""
        levels = []
        for event in self._levels:
            record = asdict(event)
            record["dedup_ratio"] = event.dedup_ratio
            record["states_per_sec"] = event.states_per_sec
            record["reduction_ratio"] = event.reduction_ratio
            levels.append(record)
        run: Optional[dict[str, object]] = None
        if self._run is not None:
            run = asdict(self._run)
            run["reductions"] = list(self._run.reductions)
        return {
            "schema": PROFILE_SCHEMA,
            "run": run,
            "levels": levels,
            "partitions": [dict(row) for row in result.partition_stats],
            "result": {
                "system": result.system_name,
                "store": result.store,
                "n_states": result.n_states,
                "n_transitions": result.n_transitions,
                "n_enabled": result.n_enabled,
                "reductions": list(result.reductions),
                "deadlocks": result.deadlock_count,
                "fingerprint_collisions": result.fingerprint_collisions,
                "seconds": result.seconds,
                "completed": result.completed,
                "stop_reason": result.stop_reason,
                "approx_bytes": result.approx_bytes,
                "spill_bytes": result.spill_bytes,
                "approx_bytes_detail": result.approx_bytes_detail,
            },
        }
