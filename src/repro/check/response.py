"""Response (request-leads-to-response) property checking.

The paper's progress criterion (section 2.5) is system-wide: *some* remote
keeps completing rendezvous.  Protocol designers usually also want the
per-transaction temporal property "whenever P requests, P is eventually
answered" — which, as the paper notes, holds per-remote only with enough
buffering (strong fairness), and holds in the weak some-remote form with
k = 2.  This module checks such properties on the reachable graph:

    REQUEST leads-to RESPONSE   (LTL: G (request -> F response))

under the standard finite-state reading with transition weak-fairness:
the property *fails* iff some state satisfying ``request`` can reach a
strongly-connected component that it can never leave... more precisely,
iff there is a reachable ``request``-state from which some maximal path
never hits a ``response``-labelled transition.  We check the dual: from
every reachable request-state, *every* terminal SCC reachable without
crossing a response edge still contains a response edge, and no
response-free finite path ends in a deadlock.

``request`` is a state predicate; ``response`` is an *edge* predicate over
``(state, action, completes, next_state)`` so callers can match completed
rendezvous (e.g. "a grant to remote 3 completes").

This is exactly strong enough to distinguish the paper's two fairness
levels on real protocols: the some-remote progress property passes at
k = 2, while "remote 0's request is always eventually granted" fails
(remote 0 can starve) — see the tests and the fairness benchmark.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from .properties import tarjan_sccs

__all__ = ["ResponseReport", "check_response", "grant_edge", "remote_in_state"]


@dataclass
class ResponseReport:
    """Outcome of a leads-to check."""

    ok: bool
    n_states: int
    n_request_states: int
    #: a state from which the response can be dodged forever (or None)
    witness: Optional[Any] = None
    #: why the witness fails: "deadlock" or "livelock"
    failure_kind: Optional[str] = None
    completed: bool = True
    stop_reason: Optional[str] = None

    def describe(self) -> str:
        if not self.completed:
            return f"response check incomplete: {self.stop_reason}"
        if self.ok:
            return (f"RESPONSE GUARANTEED: every one of "
                    f"{self.n_request_states} request states (of "
                    f"{self.n_states}) is eventually answered")
        where = getattr(self.witness, "describe", lambda: repr(self.witness))()
        return (f"RESPONSE CAN BE DODGED ({self.failure_kind}): from "
                f"request state {where}")


def check_response(
    system: Any,
    request: Callable[[Any], bool],
    response: Callable[[Any, Any, tuple[Any, ...], Any], bool],
    *,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
) -> ResponseReport:
    """Check ``request leads-to response`` over the reachable graph.

    ``system`` must expose ``steps`` (asynchronous level) or ``successors``
    plus rendezvous actions (rendezvous level); completes default to the
    action itself at the rendezvous level.
    """
    t0 = time.perf_counter()
    expand = _expander(system)

    index: dict[Hashable, int] = {}
    order: list[Hashable] = []
    adjacency: list[list[tuple[int, bool]]] = []

    init = system.initial_state()
    index[init] = 0
    order.append(init)
    adjacency.append([])
    frontier = deque([0])
    completed, stop_reason = True, None

    while frontier:
        if max_states is not None and len(order) > max_states:
            completed, stop_reason = False, f"budget {max_states} exceeded"
            break
        if max_seconds is not None and time.perf_counter() - t0 > max_seconds:
            completed, stop_reason = False, "time budget exceeded"
            break
        current = frontier.popleft()
        edges: list[tuple[int, bool]] = []
        for action, completes, nxt in expand(order[current]):
            j = index.get(nxt)
            if j is None:
                j = len(order)
                index[nxt] = j
                order.append(nxt)
                adjacency.append([])
                frontier.append(j)
            edges.append((j, response(order[current], action,
                                      completes, nxt)))
        adjacency[current] = edges

    if not completed:
        return ResponseReport(ok=False, n_states=len(order),
                              n_request_states=0, completed=False,
                              stop_reason=stop_reason)

    # "can dodge" set: states from which some maximal path avoids every
    # response edge.  Computed as a greatest fixpoint:  dodge(s) iff
    #   s is a deadlock, or
    #   exists a non-response edge s -> t with dodge(t), or
    #   s lies on a response-free cycle (an SCC with an internal
    #   non-response edge and no escape obligation).
    # Implement by building the "response-free" subgraph and finding
    # states that can reach either a deadlock or a cycle inside it.
    n = len(order)
    free_adjacency: list[list[int]] = [
        [dst for dst, is_resp in edges if not is_resp]
        for edges in adjacency
    ]
    deadlock = [not edges for edges in adjacency]

    sccs = tarjan_sccs(free_adjacency)
    comp_of = [0] * n
    for comp_index, comp in enumerate(sccs):
        for node in comp:
            comp_of[node] = comp_index
    cyclic = [False] * len(sccs)
    for comp_index, comp in enumerate(sccs):
        if len(comp) > 1:
            cyclic[comp_index] = True
    for src in range(n):
        for dst in free_adjacency[src]:
            if dst == src:
                cyclic[comp_of[src]] = True

    # bad = can reach (in the response-free subgraph) a deadlock or a
    # response-free cycle; propagate each flavour backwards separately so
    # the report can say *how* the response gets dodged
    reverse: list[list[int]] = [[] for _ in range(n)]
    for src in range(n):
        for dst in free_adjacency[src]:
            reverse[dst].append(src)

    def backward_closure(seed: list[bool]) -> list[bool]:
        closed = list(seed)
        queue = deque(i for i in range(n) if closed[i])
        while queue:
            node = queue.popleft()
            for back in reverse[node]:
                if not closed[back]:
                    closed[back] = True
                    queue.append(back)
        return closed

    bad_dead = backward_closure([deadlock[i] for i in range(n)])
    bad_cycle = backward_closure([cyclic[comp_of[i]] for i in range(n)])

    witness = None
    witness_kind = None
    n_requests = 0
    for i in range(n):
        if request(order[i]):
            n_requests += 1
            if witness is None and (bad_dead[i] or bad_cycle[i]):
                witness = order[i]
                witness_kind = "deadlock" if bad_dead[i] else "livelock"

    return ResponseReport(
        ok=witness is None,
        n_states=n,
        n_request_states=n_requests,
        witness=witness,
        failure_kind=witness_kind,
    )


def _expander(system: Any) -> Callable[[Any], list[tuple[Any, Any, Any]]]:
    if hasattr(system, "steps"):
        def expand_async(state: Any) -> list[tuple[Any, Any, Any]]:
            return [(s.action, s.completes, s.state)
                    for s in system.steps(state)]
        return expand_async

    def expand_rv(state: Any) -> list[tuple[Any, Any, Any]]:
        return [(action, (action,), nxt)
                for action, nxt in system.successors(state)]
    return expand_rv


# -- convenience predicates ---------------------------------------------------


def remote_in_state(remote: int,
                    names: frozenset[str] | set[str]) -> Callable[[Any], bool]:
    """State predicate: remote ``i``'s control state is one of ``names``."""
    names = frozenset(names)

    def predicate(state: Any) -> bool:
        return state.remotes[remote].state in names

    return predicate


def grant_edge(remote: int, msgs: frozenset[str] | set[str],
               ) -> Callable[[Any, Any, Any, Any], bool]:
    """Edge predicate: a rendezvous in ``msgs`` completes for ``remote``."""
    msgs = frozenset(msgs)

    def predicate(_state: Any, _action: Any, completes: Any,
                  _next: Any) -> bool:
        return any(c.msg in msgs and c.remote == remote for c in completes)

    return predicate
