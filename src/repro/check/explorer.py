"""Explicit-state reachability exploration (the SPIN role in the paper).

The explorer is generic over a *system* object exposing::

    initial_state() -> S          # S hashable, immutable
    successors(S) -> list[(action, S)]

which both :class:`~repro.semantics.rendezvous.RendezvousSystem` and
:class:`~repro.semantics.asynchronous.AsyncSystem` provide.  It performs a
breadth-first sweep of the reachable state space, checking invariants as
states are discovered and recording deadlocks, and stops early when the
state or time budget runs out — our stand-in for the paper's 64 MB memory
cap that produced the "Unfinished" cells of Table 3.

The sweep is level-synchronous (the visit order of a FIFO queue, made
explicit), which buys two things shared with the parallel driver in
:mod:`repro.check.parallel`:

* a per-level :class:`~repro.check.observe.LevelEvent` stream for
  progress rendering and JSON profiles (``observer=``);
* one :class:`ExplorationCore` holding the budget/count bookkeeping, so
  the sequential and parallel engines *cannot* drift: both consult the
  same budget checks before every single state expansion, and truncated
  runs report identical counts.

The visited set is pluggable (``store=``): the default exact store keeps
full states plus BFS parent pointers, so every reported violation comes
with a *shortest* witnessing run; the ``"fingerprint"`` store trades the
traces (and a detectable sliver of soundness) for ~16 bytes per state —
see :mod:`repro.check.store`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Hashable, Optional, Protocol, Sequence

from .observe import LevelEvent, NullObserver, RunInfo, RunObserver
from .stats import Counterexample, ExplorationResult, _fmt_bytes
from .store import StateStore, StoreSpec, make_store

__all__ = ["System", "Invariant", "ExplorationCore", "expand_state",
           "explore", "system_engine", "replay_actions"]


def _store_spill_bytes(store: StateStore) -> int:
    spill = getattr(store, "spill_bytes", None)
    return int(spill()) if callable(spill) else 0


class System(Protocol):
    """Structural interface the explorer needs (duck-typed)."""

    def initial_state(self) -> Hashable: ...

    def successors(self, state: Hashable) -> list[tuple[Any, Hashable]]: ...


#: An invariant is a named predicate over single states.
Invariant = tuple[str, Callable[[Any], bool]]


def system_engine(system: System) -> str:
    """The step-engine name of ``system``, for run provenance.

    Unwraps reduction wrappers (:class:`~repro.check.por.PORSystem`,
    :class:`~repro.check.symmetry.SymmetricSystem`) through their
    ``inner`` attribute; systems without an engine notion (rendezvous,
    toy test systems) report ``"interpreted"``.
    """
    obj: Any = system
    for _ in range(8):  # defensive bound on wrapper depth
        engine = getattr(obj, "engine", None)
        if isinstance(engine, str):
            return engine
        obj = getattr(obj, "inner", None)
        if obj is None:
            break
    return "interpreted"


def expand_state(system: System,
                 state: Hashable) -> tuple[list[tuple[Any, Hashable]], int]:
    """One state's successors plus its full enabled-transition count.

    Reducing systems (:class:`~repro.check.por.PORSystem`, possibly under
    a :class:`~repro.check.symmetry.SymmetricSystem`) expose ``expand``,
    returning the pruned successor list next to how many transitions were
    enabled before pruning; plain systems report ``len(successors)`` for
    both.  Every driver expands through this helper so the
    enabled-vs-taken accounting (the per-level reduction ratio) cannot
    drift between them.
    """
    expand = getattr(system, "expand", None)
    if expand is not None:
        succs, enabled = expand(state)
        return succs, int(enabled)
    succs = system.successors(state)
    return succs, len(succs)


class ExplorationCore:
    """Budget, count, and event bookkeeping shared by every driver.

    One instance per run.  Drivers call :meth:`should_stop` before each
    state expansion (that ordering *is* the budget semantics: a run may
    overshoot ``max_states`` by at most the successors of the expansion
    in flight, identically in every driver), feed counts through the
    public attributes, close each level with :meth:`level_done`, and
    finish with :meth:`result` — which also emits the observer's
    ``on_finish``.
    """

    def __init__(self, *, name: str, store: StoreSpec = "exact",
                 observer: Optional[RunObserver] = None,
                 max_states: Optional[int] = None,
                 max_seconds: Optional[float] = None,
                 max_bytes: Optional[int] = None,
                 workers: int = 1,
                 reductions: tuple[str, ...] = (),
                 engine: str = "interpreted") -> None:
        self.name = name
        self.store: StateStore = make_store(store)
        self.observer: RunObserver = (observer if observer is not None
                                      else NullObserver())
        self.max_states = max_states
        self.max_seconds = max_seconds
        self.max_bytes = max_bytes
        self.workers = workers
        self.reductions = reductions
        self.engine = engine
        self.t0 = time.perf_counter()
        self.n_transitions = 0
        #: transitions enabled before reduction (== n_transitions when no
        #: reduction is active)
        self.n_enabled = 0
        self.deadlock_count = 0
        self.completed = True
        self.stop_reason: Optional[str] = None

    def start(self) -> None:
        self.observer.on_start(RunInfo(
            name=self.name, store=self.store.name, workers=self.workers,
            max_states=self.max_states, max_seconds=self.max_seconds,
            reductions=self.reductions, engine=self.engine,
            partitions=int(getattr(self.store, "partitions", 1)),
            max_bytes=self.max_bytes))

    def elapsed(self) -> float:
        return time.perf_counter() - self.t0

    def should_stop(self) -> bool:
        """Check every budget; record the stop reason on the first trip.

        The state budget is exact and driver-independent; the memory
        budget compares the store's own footprint estimate (Python
        object sizes, so machine/version-dependent — a *graceful* stand-
        in for the paper's 64 MB memory allotment, which killed SPIN
        outright); the time budget is wall clock.
        """
        if (self.max_states is not None
                and len(self.store) > self.max_states):
            self.completed = False
            self.stop_reason = f"state budget {self.max_states} exceeded"
            return True
        if (self.max_bytes is not None
                and self.store.approx_bytes() > self.max_bytes):
            self.completed = False
            self.stop_reason = (f"memory budget "
                                f"{_fmt_bytes(self.max_bytes)} exceeded")
            return True
        if (self.max_seconds is not None
                and self.elapsed() > self.max_seconds):
            self.completed = False
            self.stop_reason = f"time budget {self.max_seconds}s exceeded"
            return True
        return False

    def stop(self, reason: str) -> None:
        self.completed = False
        self.stop_reason = reason

    def level_done(self, level: int, frontier: int, expanded: int,
                   candidates: int, new_states: int,
                   enabled: Optional[int] = None) -> None:
        self.observer.on_level(LevelEvent(
            level=level, frontier=frontier, expanded=expanded,
            candidates=candidates, new_states=new_states,
            n_states=len(self.store), n_transitions=self.n_transitions,
            deadlocks=self.deadlock_count, collisions=self.store.collisions,
            approx_bytes=self.store.approx_bytes(), seconds=self.elapsed(),
            enabled=candidates if enabled is None else enabled,
            spill_bytes=_store_spill_bytes(self.store)))

    def result(self, *, deadlocks: Optional[list[Counterexample]] = None,
               violations: Optional[list[Counterexample]] = None,
               graph: Optional[dict[Any, list[tuple[Any, Any]]]] = None,
               ) -> ExplorationResult:
        rows = getattr(self.store, "partition_rows", None)
        detail = getattr(self.store, "approx_bytes_detail", None)
        outcome = ExplorationResult(
            system_name=self.name,
            n_states=len(self.store),
            n_transitions=self.n_transitions,
            seconds=self.elapsed(),
            completed=self.completed,
            stop_reason=self.stop_reason,
            deadlocks=deadlocks or [],
            deadlock_count=self.deadlock_count,
            violations=violations or [],
            graph=graph,
            approx_bytes=self.store.approx_bytes(),
            store=self.store.name,
            fingerprint_collisions=self.store.collisions,
            n_enabled=self.n_enabled or self.n_transitions,
            reductions=self.reductions,
            partition_stats=tuple(rows()) if callable(rows) else (),
            spill_bytes=_store_spill_bytes(self.store),
            approx_bytes_detail=(dict(detail()) if callable(detail)
                                 else None),
        )
        self.observer.on_finish(outcome)
        return outcome


def explore(
    system: System,
    *,
    name: str = "system",
    invariants: Sequence[Invariant] = (),
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    max_bytes: Optional[int] = None,
    keep_graph: bool = False,
    stop_on_violation: bool = True,
    allow_deadlock: bool = False,
    store: StoreSpec = "exact",
    observer: Optional[RunObserver] = None,
    reductions: tuple[str, ...] = (),
    engine: Optional[str] = None,
) -> ExplorationResult:
    """Breadth-first reachability analysis of ``system``.

    :param invariants: ``(name, predicate)`` pairs checked on every state.
    :param max_states: emulate a memory cap; exceeding it stops the run with
        ``completed=False`` (a Table 3 "Unfinished" cell).
    :param max_seconds: wall-clock cap with the same early-stop behaviour.
    :param max_bytes: memory cap on the visited store's own footprint
        estimate; crossing it ends the run as a well-formed "Unfinished"
        result (the paper's 64 MB allotment, minus the OOM kill).  The
        estimate is Python-object sizes, so unlike ``max_states`` the
        truncation point is machine-dependent.
    :param keep_graph: retain full adjacency for SCC/progress analysis
        (memory-heavy; only for small systems or livelock checks).
    :param stop_on_violation: stop at the first invariant violation instead
        of cataloguing all of them.
    :param allow_deadlock: when False, states without successors are
        recorded as deadlocks (with traces); when True they are treated as
        legitimate final states.
    :param store: visited-state store — ``"exact"`` (default),
        ``"fingerprint"`` (SPIN-style hash compaction: ~16 bytes/state, no
        traces, collisions detected and counted), or a ready
        :class:`~repro.check.store.StateStore`.  With a trace-free store,
        deadlocks are counted (not witnessed) and violation
        counterexamples carry only the violating state.
    :param observer: a :class:`~repro.check.observe.RunObserver` receiving
        per-level progress events (see :mod:`repro.check.observe`).
    :param reductions: names of the state-space reductions baked into
        ``system`` (e.g. ``("symmetry", "por")``), recorded in the run
        info and the result for profile provenance.
    :param engine: step-engine name for run provenance
        (``"interpreted"``/``"compiled"``); defaults to what
        :func:`system_engine` detects on ``system``.  Engine selection
        itself happens at system construction
        (``AsyncSystem(..., engine=...)``) — this only records it.
    :returns: an :class:`~repro.check.stats.ExplorationResult`; never raises
        for budget exhaustion, deadlocks, or violations — callers decide how
        strict to be (:func:`repro.check.properties.assert_safe` raises).
    """
    core = ExplorationCore(name=name, store=store, observer=observer,
                           max_states=max_states, max_seconds=max_seconds,
                           max_bytes=max_bytes, reductions=reductions,
                           engine=(engine if engine is not None
                                   else system_engine(system)))
    core.start()
    visited = core.store
    init = system.initial_state()
    visited.add(init, None)
    graph: Optional[dict[Hashable, list[tuple[Any, Hashable]]]] = (
        {} if keep_graph else None)

    deadlock_states: list[Hashable] = []
    violations: list[Counterexample] = []

    def build_trace(state: Hashable) -> tuple[list[Any], list[Any]]:
        if not visited.supports_traces:
            # hash compaction keeps no states: the witness is the state
            # itself, with no path back to the initial state
            return [state], []
        tracer = getattr(visited, "action_trace", None)
        if callable(tracer):
            # delta-compressed stores keep action provenance, not state
            # objects: replay the actions through the live system
            steps_only: list[Any] = tracer(state)
            return replay_actions(system, steps_only), steps_only
        states: list[Any] = [state]
        steps: list[Any] = []
        cursor = state
        while True:
            entry = visited.parent_of(cursor)
            if entry is None:
                break
            prev, action = entry
            states.append(prev)
            steps.append(action)
            cursor = prev
        states.reverse()
        steps.reverse()
        return states, steps

    def check_invariants(state: Hashable) -> bool:
        """Check all invariants; return False if exploration should stop."""
        for prop_name, predicate in invariants:
            if not predicate(state):
                states, steps = build_trace(state)
                violations.append(Counterexample(prop_name, states, steps))
                if stop_on_violation:
                    return False
        return True

    stopped = False
    if not check_invariants(init):
        core.stop("invariant violated")
        stopped = True

    # Hot-loop bindings: the add method, whether parent provenance is
    # even retained (trace-free stores discard it — building a parent
    # tuple per transition for them was pure allocation churn), and
    # whether any invariant needs checking at all.
    add = visited.add
    track_parents = visited.supports_traces
    has_invariants = bool(invariants)

    level: list[Hashable] = [init] if not stopped else []
    level_index = 0
    while level:
        next_level: list[Hashable] = []
        expanded = candidates = new_states = enabled = 0
        for state in level:
            if core.should_stop():
                stopped = True
                break
            succs, n_enabled = expand_state(system, state)
            expanded += 1
            core.n_enabled += n_enabled
            enabled += n_enabled
            if graph is not None:
                graph[state] = succs
            if not succs and not allow_deadlock:
                deadlock_states.append(state)
                core.deadlock_count += 1
            for action, nxt in succs:
                core.n_transitions += 1
                candidates += 1
                if add(nxt, (state, action) if track_parents else None):
                    new_states += 1
                    if has_invariants and not check_invariants(nxt):
                        core.stop("invariant violated")
                        stopped = True
                        break
                    next_level.append(nxt)
            if stopped:
                break
        core.level_done(level_index, len(level), expanded, candidates,
                        new_states, enabled)
        level_index += 1
        level = [] if stopped else next_level

    return core.result(
        deadlocks=[_with_trace(build_trace, s) for s in deadlock_states],
        violations=violations,
        graph=graph,
    )


def _with_trace(build_trace: Callable[[Hashable], tuple[list[Hashable],
                                                        list[object]]],
                state: Hashable) -> Counterexample:
    states, steps = build_trace(state)
    return Counterexample("deadlock-freedom", states, steps)


def replay_actions(system: System, steps: list[Any]) -> list[Any]:
    """Rematerialize the state path of an action sequence from the root.

    Inverse of :meth:`~repro.check.store.PartitionedExactStore.
    action_trace`: transitions in these systems are deterministic per
    action label (a delivery action names the message and the node), so
    following the recorded actions through ``successors`` rebuilds the
    exact state sequence the classic parent-pointer walk would return.
    Replay always consults the *full* successor relation, so traces
    recorded under a reducing wrapper still resolve.
    """
    states: list[Any] = [system.initial_state()]
    for action in steps:
        for cand_action, nxt in system.successors(states[-1]):
            if cand_action == action:
                states.append(nxt)
                break
        else:
            raise KeyError(f"action {action!r} is not enabled during "
                           "trace replay (store/system mismatch)")
    return states
