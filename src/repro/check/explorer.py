"""Explicit-state reachability exploration (the SPIN role in the paper).

The explorer is generic over a *system* object exposing::

    initial_state() -> S          # S hashable, immutable
    successors(S) -> list[(action, S)]

which both :class:`~repro.semantics.rendezvous.RendezvousSystem` and
:class:`~repro.semantics.asynchronous.AsyncSystem` provide.  It performs a
breadth-first sweep of the reachable state space, checking invariants as
states are discovered and recording deadlocks, and stops early when the
state or time budget runs out — our stand-in for the paper's 64 MB memory
cap that produced the "Unfinished" cells of Table 3.

Counterexample traces are reconstructed from BFS parent pointers, so every
reported violation comes with a *shortest* witnessing run.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Any, Callable, Hashable, Optional, Protocol, Sequence

from .stats import Counterexample, ExplorationResult

__all__ = ["System", "Invariant", "explore"]


class System(Protocol):
    """Structural interface the explorer needs (duck-typed)."""

    def initial_state(self) -> Hashable: ...

    def successors(self, state: Hashable) -> list[tuple[Any, Hashable]]: ...


#: An invariant is a named predicate over single states.
Invariant = tuple[str, Callable[[Any], bool]]


def explore(
    system: System,
    *,
    name: str = "system",
    invariants: Sequence[Invariant] = (),
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    keep_graph: bool = False,
    stop_on_violation: bool = True,
    allow_deadlock: bool = False,
) -> ExplorationResult:
    """Breadth-first reachability analysis of ``system``.

    :param invariants: ``(name, predicate)`` pairs checked on every state.
    :param max_states: emulate a memory cap; exceeding it stops the run with
        ``completed=False`` (a Table 3 "Unfinished" cell).
    :param max_seconds: wall-clock cap with the same early-stop behaviour.
    :param keep_graph: retain full adjacency for SCC/progress analysis
        (memory-heavy; only for small systems or livelock checks).
    :param stop_on_violation: stop at the first invariant violation instead
        of cataloguing all of them.
    :param allow_deadlock: when False, states without successors are
        recorded as deadlocks (with traces); when True they are treated as
        legitimate final states.
    :returns: an :class:`~repro.check.stats.ExplorationResult`; never raises
        for budget exhaustion, deadlocks, or violations — callers decide how
        strict to be (:func:`repro.check.properties.assert_safe` raises).
    """
    t0 = time.perf_counter()
    init = system.initial_state()
    parent: dict[Hashable, Optional[tuple[Hashable, Any]]] = {init: None}
    frontier: deque[Hashable] = deque([init])
    graph: Optional[dict[Hashable, list[tuple[Any, Hashable]]]] = (
        {} if keep_graph else None)

    n_transitions = 0
    deadlocks: list[Hashable] = []
    violations: list[Counterexample] = []
    completed = True
    stop_reason: Optional[str] = None

    def build_trace(state: Hashable) -> tuple[list[Any], list[Any]]:
        states: list[Any] = [state]
        steps: list[Any] = []
        cursor = state
        while parent[cursor] is not None:
            prev, action = parent[cursor]  # type: ignore[misc]
            states.append(prev)
            steps.append(action)
            cursor = prev
        states.reverse()
        steps.reverse()
        return states, steps

    def check_invariants(state: Hashable) -> bool:
        """Check all invariants; return False if exploration should stop."""
        for prop_name, predicate in invariants:
            if not predicate(state):
                states, steps = build_trace(state)
                violations.append(Counterexample(prop_name, states, steps))
                if stop_on_violation:
                    return False
        return True

    if not check_invariants(init):
        frontier.clear()
        completed = False
        stop_reason = "invariant violated"

    while frontier:
        if max_states is not None and len(parent) > max_states:
            completed = False
            stop_reason = f"state budget {max_states} exceeded"
            break
        if max_seconds is not None and time.perf_counter() - t0 > max_seconds:
            completed = False
            stop_reason = f"time budget {max_seconds}s exceeded"
            break

        state = frontier.popleft()
        succs = system.successors(state)
        if graph is not None:
            graph[state] = succs
        if not succs and not allow_deadlock:
            deadlocks.append(state)
        stop = False
        for action, nxt in succs:
            n_transitions += 1
            if nxt not in parent:
                parent[nxt] = (state, action)
                if not check_invariants(nxt):
                    stop = True
                    break
                frontier.append(nxt)
        if stop:
            completed = False
            stop_reason = "invariant violated"
            break

    seconds = time.perf_counter() - t0
    result = ExplorationResult(
        system_name=name,
        n_states=len(parent),
        n_transitions=n_transitions,
        seconds=seconds,
        completed=completed,
        stop_reason=stop_reason,
        deadlocks=[_with_trace(build_trace, s) for s in deadlocks],
        violations=violations,
        graph=graph,
        approx_bytes=_approx_bytes(parent),
    )
    return result


def _with_trace(build_trace: Callable[[Hashable], tuple[list[Hashable],
                                                        list[object]]],
                state: Hashable) -> Counterexample:
    states, steps = build_trace(state)
    return Counterexample("deadlock-freedom", states, steps)


def _approx_bytes(visited: dict[Hashable, object]) -> int:
    """Crude footprint estimate: dict overhead + one sampled state size.

    This is deliberately rough — it exists so benchmark output can narrate
    the memory-budget story of Table 3, not to meter Python precisely.
    """
    if not visited:
        return 0
    sample = next(iter(visited))
    return sys.getsizeof(visited) + len(visited) * sys.getsizeof(sample)
