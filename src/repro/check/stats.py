"""Result and statistics records for model-checking runs.

The paper's Table 3 reports, per protocol/level/node-count, the number of
states visited and the wall time of the reachability analysis, with
"Unfinished" for runs that exhausted the 64 MB memory allotment.
:class:`ExplorationResult` carries exactly those quantities (plus enough
extra structure for the property checkers), and renders itself in the
paper's ``states/seconds`` cell format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ExplorationResult", "Counterexample"]


def _fmt_bytes(n: int) -> str:
    """Human-readable byte count (shared by narration and renderers)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


@dataclass
class Counterexample:
    """A finite trace witnessing a property violation.

    ``steps`` is the action sequence from the initial state; ``states`` the
    corresponding state sequence (one longer than ``steps``).
    """

    property_name: str
    states: list[Any]
    steps: list[Any]

    def describe(self) -> str:
        lines = [f"counterexample to {self.property_name!r} "
                 f"({len(self.steps)} steps):"]
        for idx, action in enumerate(self.steps):
            state = self.states[idx]
            lines.append(f"  {idx:3d}. {_describe(state)}")
            lines.append(f"       --[{_describe(action)}]-->")
        lines.append(f"  {len(self.steps):3d}. {_describe(self.states[-1])}")
        return "\n".join(lines)


def _describe(obj: Any) -> str:
    describe = getattr(obj, "describe", None)
    return describe() if callable(describe) else repr(obj)


@dataclass
class ExplorationResult:
    """Outcome of one reachability run (one Table 3 cell)."""

    system_name: str
    n_states: int
    n_transitions: int
    seconds: float
    completed: bool
    #: why the run stopped early, when ``completed`` is False
    stop_reason: Optional[str] = None
    #: states with no outgoing transitions (deadlocks at this level);
    #: parallel/aggregated runs may report counts only (see
    #: ``deadlock_count``), keeping this list empty
    deadlocks: list[Any] = field(default_factory=list)
    #: number of deadlocked states found; authoritative even when the
    #: ``deadlocks`` witness list is empty (workers report counts, not
    #: traces)
    deadlock_count: int = 0
    #: first counterexample per violated invariant
    violations: list[Counterexample] = field(default_factory=list)
    #: adjacency as ``{state: [(action, successor), ...]}`` when graph
    #: retention was requested (needed for SCC / progress analysis)
    graph: Optional[dict[Any, list[tuple[Any, Any]]]] = None
    #: rough memory footprint of the visited-state set, for the Table 3
    #: memory-budget narrative (Python object sizes, not SPIN's); metered
    #: by the store (:mod:`repro.check.store`) in every driver
    approx_bytes: int = 0
    #: which visited-state store ran: ``"exact"`` or ``"fingerprint"``
    store: str = "exact"
    #: fingerprint collisions *detected* by the hash-compaction store's
    #: second hash; each one is a distinct state the run treated as
    #: already visited, i.e. a lower bound on under-exploration.  Always
    #: 0 for exact stores.
    fingerprint_collisions: int = 0
    #: transitions enabled before reduction pruned them; equals
    #: ``n_transitions`` when no reduction was active
    n_enabled: int = 0
    #: state-space reductions active during the run, inner wrapper
    #: first (e.g. ``("por", "symmetry")``)
    reductions: tuple[str, ...] = ()
    #: one statistics row per visited-set partition (profile/4 rows:
    #: ``partition``/``owned``/``probes``/``collisions``/``approx_bytes``
    #: /``spill_bytes``/``spill_merges``/``dedup_ratio``, plus the batch
    #: exchange counters under the owner-computes driver); empty for
    #: unpartitioned stores
    partition_stats: tuple[dict[str, Any], ...] = ()
    #: bytes the store spilled to disk (mmap cold tier); 0 for purely
    #: resident stores
    spill_bytes: int = 0
    #: optional breakdown of ``approx_bytes`` (the exact store reports
    #: ``{"entries": ..., "state_caches": ...}`` — classic dict entries
    #: vs the per-state encoding memo caches)
    approx_bytes_detail: Optional[dict[str, int]] = None

    def __post_init__(self) -> None:
        if self.deadlocks and self.deadlock_count < len(self.deadlocks):
            self.deadlock_count = len(self.deadlocks)
        if not self.n_enabled:
            self.n_enabled = self.n_transitions

    @property
    def ok(self) -> bool:
        """Completed with no deadlocks and no invariant violations."""
        return (self.completed and not self.deadlock_count
                and not self.violations)

    def cell(self) -> str:
        """Render as a Table 3 cell: ``states/seconds`` or ``Unfinished``."""
        if not self.completed:
            return "Unfinished"
        return f"{self.n_states}/{self.seconds:.2f}"

    def describe(self) -> str:
        status = "complete" if self.completed else \
            f"UNFINISHED ({self.stop_reason})"
        extra = ""
        if self.deadlock_count:
            extra += f", {self.deadlock_count} deadlock state(s)"
        if self.violations:
            names = ", ".join(v.property_name for v in self.violations)
            extra += f", violations: {names}"
        if self.store != "exact":
            extra += (f", {self.store} store"
                      f" ({self.fingerprint_collisions} collision(s))")
        if self.reductions:
            extra += f", reductions: {'+'.join(self.reductions)}"
            if self.n_enabled > self.n_transitions:
                pruned = 1.0 - self.n_transitions / self.n_enabled
                extra += f" (pruned {pruned:.1%} of enabled transitions)"
        if self.approx_bytes:
            # the store's own footprint estimate — the same number every
            # driver's memory budget is checked against
            extra += f", ~{_fmt_bytes(self.approx_bytes)} visited set"
            if self.spill_bytes:
                extra += f" + {_fmt_bytes(self.spill_bytes)} spilled"
        if self.partition_stats:
            extra += f", {len(self.partition_stats)} partition(s)"
        return (f"{self.system_name}: {self.n_states} states, "
                f"{self.n_transitions} transitions in {self.seconds:.2f}s "
                f"[{status}]{extra}")
