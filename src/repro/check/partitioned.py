"""Owner-computes partitioned exploration (distributed-SPIN style).

The classic parallel driver (:mod:`repro.check.parallel`) keeps ONE
visited store in the master process and replays every worker's
expansion results through it — workers are pure successor functions, so
the master's dict insertions and the master's RAM bound the whole run.
This module inverts the ownership: the visited set is sharded by
fingerprint range (:func:`repro.check.store.partition_index`) and each
worker process *owns* one partition outright — its hot dict, its mmap
spill file, its admission decisions.  The master never touches a state.

One BFS level proceeds in four beats, all at the level-synchronous
barrier the replay driver already established:

1. **Expand.**  Every worker expands its slice of the frontier (each
   frontier state carries a global index ``g`` fixed at the previous
   barrier), routes each successor to its owner by fingerprint, and
   sends one candidate batch ``[(g, j, state), ...]`` per peer (``j`` =
   the successor's index within ``g``'s successor list).  Per-source
   ``(enabled, taken)`` counts go to the master.
2. **Simulate.**  Each owner sorts the candidates it received by
   ``(g, j)`` — the exact order the sequential explorer would meet them
   — and *simulates* admission against its partition (membership probe
   plus a staged-set overlay, no mutation), reporting how many states
   would be first-discovered per ``g``.
3. **Replay.**  The master walks ``g = 0..frontier-1`` in order,
   consulting the shared :class:`~repro.check.explorer.ExplorationCore`
   budget check before each source — the same point the sequential loop
   checks — and accumulating transition/deadlock/new-state counts.  The
   first ``g`` that trips a budget becomes the cutoff ``k``.
4. **Commit.**  Workers admit exactly the candidates with ``g < k``
   into their stores (replaying them in ``(g, j)`` order, so collision
   accounting matches too), report the ``(g, j)`` positions of their
   new states, and the master merge-sorts all positions into the global
   index assignment of the next frontier.

Because a state's owner is a pure function of its fingerprint, each
membership decision happens in exactly one place, and because staged
admissions are ordered by ``(g, j)``, "first discovery" is resolved
identically to the sequential sweep — so ``n_states``,
``n_transitions``, ``deadlock_count``, ``completed`` and ``stop_reason``
are **byte-identical** to :func:`repro.check.explorer.explore`,
including runs truncated mid-level by ``max_states``.  (Wall-clock and
memory budgets remain machine-dependent, as in every driver.)

The payoff over master-replay: per-state memory lives only in the
owning worker (each bounded by its hot tier + spill threshold), and the
master's per-level work is O(frontier) integers instead of O(frontier)
state insertions — the master bottleneck is gone.  On a single-CPU
machine the speedup is nil (this is Python; use the in-process
partitioned store via ``--partitions`` *without* ``--parallel`` there),
but the memory ceiling still drops to the largest single partition.
"""

from __future__ import annotations

import multiprocessing
import os
from queue import Empty
from typing import Any, Hashable, Optional, Sequence, Union

from .explorer import ExplorationCore, expand_state, explore
from .observe import RunObserver
from .parallel import SystemSpec, build_system, shippable_spec
from .stats import ExplorationResult
from .store import (PartitionedExactStore, PartitionedFingerprintStore,
                    StateStore, fingerprint, make_partitioned_store,
                    partition_index)

__all__ = ["explore_partitioned"]

#: seconds the master waits on its queue before re-checking that all
#: partition workers are still alive
_POLL_SECONDS = 2.0


def _make_worker_store(kind: str, wid: int, bits: int,
                       spill_dir: Optional[str],
                       spill_threshold: int) -> StateStore:
    """The single-partition store a worker owns (one range, one process)."""
    if kind == "exact":
        return PartitionedExactStore(1)
    worker_dir = (os.path.join(spill_dir, f"worker-{wid:04d}")
                  if spill_dir is not None else None)
    return PartitionedFingerprintStore(
        1, bits=bits, spill_dir=worker_dir, spill_threshold=spill_threshold)


class _Mailbox:
    """A queue wrapper that buffers out-of-kind messages.

    Messages from different senders interleave arbitrarily on one
    queue; a worker waiting for the master's ``assign`` may receive a
    fast peer's next-level ``cand`` first.  ``take`` returns the first
    message of a wanted kind and parks everything else for later.
    """

    def __init__(self, queue: Any,
                 procs: Optional[Sequence[Any]] = None) -> None:
        self._queue = queue
        self._pending: list[tuple[Any, ...]] = []
        self._procs = procs

    def take(self, kinds: tuple[str, ...]) -> tuple[Any, ...]:
        pending = self._pending
        for i, msg in enumerate(pending):
            if msg[0] in kinds:
                return pending.pop(i)
        while True:
            try:
                msg = self._queue.get(timeout=_POLL_SECONDS)
            except Empty:
                if self._procs is not None and not all(
                        p.is_alive() for p in self._procs):
                    raise RuntimeError(
                        "a partition worker died; partitioned "
                        "exploration cannot continue") from None
                continue
            if msg[0] in kinds:
                return msg
            pending.append(msg)


# -- worker side -------------------------------------------------------------


def _partition_worker(wid: int, partitions: int, spec: SystemSpec,
                      kind: str, bits: int, spill_dir: Optional[str],
                      spill_threshold: int, inboxes: Sequence[Any],
                      master_queue: Any) -> None:
    """Own one visited-set partition for the whole run (process main)."""
    system = build_system(spec)
    store = _make_worker_store(kind, wid, bits, spill_dir, spill_threshold)
    inbox = _Mailbox(inboxes[wid])
    exchanged_batches = 0
    exchanged_states = 0
    received_candidates = 0

    # seed: the initial state belongs to exactly one owner
    init = system.initial_state()
    frontier_slice: list[tuple[int, Hashable]] = []
    if partition_index(fingerprint(init), partitions) == wid:
        store.add(init, None)
        frontier_slice = [(0, init)]

    while True:
        msg = inbox.take(("expand", "finish", "exit"))
        if msg[0] == "exit":
            break
        if msg[0] == "finish":
            rows = store.partition_rows()  # type: ignore[attr-defined]
            row = dict(rows[0])
            row["partition"] = wid
            row["exchanged_batches"] = exchanged_batches
            row["exchanged_states"] = exchanged_states
            row["received_candidates"] = received_candidates
            master_queue.put(("rows", wid, row))
            continue

        # 1. expand the owned slice, route successors to their owners
        source_stats: list[tuple[int, int, int]] = []
        outbound: list[list[tuple[int, int, Hashable]]] = [
            [] for _ in range(partitions)]
        for g, state in frontier_slice:
            successors, enabled = expand_state(system, state)
            source_stats.append((g, enabled, len(successors)))
            for j, (_action, nxt) in enumerate(successors):
                dest = partition_index(fingerprint(nxt), partitions)
                outbound[dest].append((g, j, nxt))
        for peer in range(partitions):
            if peer == wid:
                continue
            batch = outbound[peer]
            if batch:
                exchanged_batches += 1
                exchanged_states += len(batch)
            inboxes[peer].put(("cand", wid, batch))
        master_queue.put(("expanded", wid, source_stats))

        # 2. collect candidates, simulate admission in sequential order
        candidates = outbound[wid]
        for _ in range(partitions - 1):
            candidates.extend(inbox.take(("cand",))[2])
        received_candidates += len(candidates)
        candidates.sort(key=lambda c: (c[0], c[1]))
        staged: set[Hashable] = set()
        admitted: dict[int, int] = {}
        for g, _j, state in candidates:
            key, present = store.probe(state)  # type: ignore[attr-defined]
            if present or key in staged:
                continue
            staged.add(key)
            admitted[g] = admitted.get(g, 0) + 1
        master_queue.put(("admitted", wid, admitted))

        # 4. commit up to the master's cutoff; report new positions
        cutoff = int(inbox.take(("cutoff",))[1])
        new_states: list[Hashable] = []
        positions: list[tuple[int, int]] = []
        for g, j, state in candidates:
            if g >= cutoff:
                break  # candidates are (g, j)-sorted
            if store.add(state, None):
                positions.append((g, j))
                new_states.append(state)
        spill = getattr(store, "spill_bytes", None)
        master_queue.put(("level", wid, positions, len(store),
                          store.approx_bytes(), store.collisions,
                          int(spill()) if callable(spill) else 0))

        # receive next-level global indices for the states this
        # partition contributed
        indices = inbox.take(("assign",))[1]
        frontier_slice = list(zip(indices, new_states))


# -- driver ------------------------------------------------------------------


def explore_partitioned(
    spec: SystemSpec,
    *,
    partitions: Optional[int] = None,
    max_states: Optional[int] = None,
    max_seconds: Optional[float] = None,
    max_bytes: Optional[int] = None,
    allow_deadlock: bool = False,
    store: str = "exact",
    bits: int = 64,
    spill_dir: Optional[Union[str, os.PathLike[str]]] = None,
    spill_threshold: int = 1 << 20,
    observer: Optional[RunObserver] = None,
    start_method: Optional[str] = None,
) -> ExplorationResult:
    """Owner-computes BFS: one worker process per visited-set partition.

    Counts (``n_states``, ``n_transitions``, ``deadlock_count``) and
    ``stop_reason`` are byte-identical to
    :func:`repro.check.explorer.explore`, including
    ``max_states``-truncated runs — see the module docstring for the
    admission-ordering argument.  Traces are not built (the states live
    sharded across processes); invariant checking stays a sequential
    feature, as in the replay driver.

    :param partitions: worker/partition count; defaults to CPU count - 1
        (floor 2).  ``1`` degenerates to the sequential explorer over a
        single-partition store.
    :param store: ``"exact"`` (delta-compressed) or ``"fingerprint"``
        (hash compaction; the only kind that can spill).
    :param bits: fingerprint truncation hook for collision tests.
    :param spill_dir: directory for mmap spill files (fingerprint store
        only); each worker gets a private subdirectory.
    :param spill_threshold: hot-tier entries per partition before a
        merge to disk.
    :param start_method: multiprocessing start method
        (``"fork"``/``"spawn"``/``"forkserver"``); None = platform
        default.
    """
    if store not in ("exact", "fingerprint"):
        raise ValueError(f"unknown store {store!r}; partitioned workers "
                         "need a store kind name, not an instance")
    if spill_dir is not None and store != "fingerprint":
        raise ValueError("spill_dir applies to the fingerprint store; the "
                         "delta-compressed exact store keeps keys resident")
    partitions = partitions or max(2, (os.cpu_count() or 2) - 1)
    name = f"{spec.protocol}-{spec.level}-{spec.n_remotes}-partitioned"
    if partitions == 1:
        return explore(
            build_system(spec), name=name, max_states=max_states,
            max_seconds=max_seconds, max_bytes=max_bytes,
            allow_deadlock=allow_deadlock,
            store=make_partitioned_store(
                store, 1, bits=bits,
                spill_dir=None if spill_dir is None else os.fspath(spill_dir),
                spill_threshold=spill_threshold),
            observer=observer, reductions=spec.reductions(),
            engine=spec.engine)

    context = multiprocessing.get_context(start_method)
    inboxes = [context.Queue() for _ in range(partitions)]
    master_queue = context.Queue()
    view = _DistributedView(store, partitions)
    core = ExplorationCore(name=name, store=view, observer=observer,
                           max_states=max_states, max_seconds=max_seconds,
                           max_bytes=max_bytes, workers=partitions,
                           reductions=spec.reductions(), engine=spec.engine)
    shipped = shippable_spec(spec)
    spill_path = None if spill_dir is None else os.fspath(spill_dir)
    procs = [
        context.Process(
            target=_partition_worker,
            args=(wid, partitions, shipped, store, bits, spill_path,
                  spill_threshold, inboxes, master_queue),
            daemon=True, name=f"partition-{wid}")
        for wid in range(partitions)
    ]
    for proc in procs:
        proc.start()
    core.start()
    master = _Mailbox(master_queue, procs)
    view.count = 1  # the seeded initial state, owned by one worker

    frontier = 1
    level_index = 0
    stopped = False
    try:
        while frontier and not stopped:
            for inbox in inboxes:
                inbox.put(("expand",))

            stats_by_g: dict[int, tuple[int, int]] = {}
            for _ in range(partitions):
                msg = master.take(("expanded",))
                for g, enabled, taken in msg[2]:
                    stats_by_g[g] = (enabled, taken)
            admitted_by_g: dict[int, int] = {}
            for _ in range(partitions):
                msg = master.take(("admitted",))
                for g, count in msg[2].items():
                    admitted_by_g[g] = admitted_by_g.get(g, 0) + count

            # 3. the replay point: identical to where the sequential
            # loop consults the budget before expanding the same state
            cutoff = frontier
            expanded = candidates = new_states = enabled_total = 0
            for g in range(frontier):
                if core.should_stop():
                    stopped = True
                    cutoff = g
                    break
                enabled, taken = stats_by_g[g]
                expanded += 1
                core.n_transitions += taken
                core.n_enabled += enabled
                candidates += taken
                enabled_total += enabled
                if taken == 0 and not allow_deadlock:
                    core.deadlock_count += 1
                admitted = admitted_by_g.get(g, 0)
                new_states += admitted
                view.count += admitted

            for inbox in inboxes:
                inbox.put(("cutoff", cutoff))

            positions_by_wid: dict[int, list[tuple[int, int]]] = {}
            all_positions: list[tuple[int, int]] = []
            owned_total = approx_total = spill_total = collisions_total = 0
            for _ in range(partitions):
                msg = master.take(("level",))
                _, wid, positions, owned, approx, collisions, spilled = msg
                positions_by_wid[wid] = positions
                all_positions.extend(positions)
                owned_total += owned
                approx_total += approx
                collisions_total += collisions
                spill_total += spilled
            view.approx = approx_total
            view.spill = spill_total
            view.collisions = collisions_total
            assert owned_total == view.count, (
                f"partition ownership drifted: workers own {owned_total} "
                f"states, replay admitted {view.count}")

            # merge the (g, j) positions into next-level global indices
            all_positions.sort()
            rank = {pos: i for i, pos in enumerate(all_positions)}
            for wid in range(partitions):
                inboxes[wid].put(
                    ("assign", [rank[p] for p in positions_by_wid[wid]]))

            core.level_done(level_index, frontier, expanded, candidates,
                            new_states, enabled_total)
            level_index += 1
            frontier = len(all_positions)

        for inbox in inboxes:
            inbox.put(("finish",))
        rows_by_wid: dict[int, dict[str, Any]] = {}
        for _ in range(partitions):
            msg = master.take(("rows",))
            rows_by_wid[msg[1]] = msg[2]
        view.rows = [rows_by_wid[wid] for wid in range(partitions)]
    finally:
        for inbox in inboxes:
            try:
                inbox.put(("exit",))
            except Exception:
                pass
        for proc in procs:
            proc.join(timeout=10)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for q in [master_queue, *inboxes]:
            q.close()
            q.cancel_join_thread()

    return core.result()


class _DistributedView:
    """The master's store facade: aggregate counters, no states.

    The :class:`~repro.check.explorer.ExplorationCore` consults its
    store for ``len`` (state budget), ``approx_bytes`` (memory budget)
    and ``collisions``; under owner-computes those live sharded across
    worker processes, so the master holds this view, updated from
    worker reports — ``count`` during the in-level replay (so budget
    trips mid-level exactly like the sequential driver), the byte/
    collision aggregates at each level barrier.
    """

    supports_traces = False

    def __init__(self, kind: str, partitions: int) -> None:
        self.name = kind
        self.partitions = partitions
        self.collisions = 0
        self.count = 0
        self.approx = 0
        self.spill = 0
        self.rows: list[dict[str, Any]] = []

    def add(self, state: Hashable, parent: Any = None) -> bool:
        raise RuntimeError("the master never admits states under "
                           "owner-computes; workers own the partitions")

    def __len__(self) -> int:
        return self.count

    def __contains__(self, state: Hashable) -> bool:
        raise RuntimeError("membership lives in the partition owners")

    def parent_of(self, state: Hashable) -> Any:
        raise KeyError("owner-computes keeps no master-side states")

    def approx_bytes(self) -> int:
        return self.approx

    def spill_bytes(self) -> int:
        return self.spill

    def partition_rows(self) -> list[dict[str, Any]]:
        return list(self.rows)
