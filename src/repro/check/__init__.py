"""Explicit-state model checking: reachability, safety, progress, simulation."""

from .explorer import ExplorationCore, explore
from .observe import (
    JsonProfileWriter,
    LevelEvent,
    MultiObserver,
    NullObserver,
    ProgressRenderer,
    RunInfo,
    RunObserver,
)
from .parallel import SystemSpec, build_system, explore_parallel, register_factory
from .por import PRESERVE_COUNTS, PRESERVE_INVARIANTS, PORSystem
from .properties import ProgressReport, assert_safe, check_progress, tarjan_sccs
from .response import ResponseReport, check_response, grant_edge, remote_in_state
from .simulation import SimulationReport, check_simulation
from .store import ExactStore, FingerprintStore, StateStore, fingerprint, make_store
from .symmetry import SymmetricSystem, SymmetrySpec, normalize
from .stats import Counterexample, ExplorationResult

__all__ = [
    "Counterexample", "ExplorationResult", "ExplorationCore", "ProgressReport",
    "SimulationReport", "assert_safe", "check_progress", "check_simulation",
    "explore", "tarjan_sccs",
    "SymmetricSystem", "SymmetrySpec", "normalize",
    "ResponseReport", "check_response", "grant_edge", "remote_in_state",
    "SystemSpec", "build_system", "explore_parallel", "register_factory",
    "PORSystem", "PRESERVE_COUNTS", "PRESERVE_INVARIANTS",
    "StateStore", "ExactStore", "FingerprintStore", "fingerprint",
    "make_store",
    "RunObserver", "RunInfo", "LevelEvent", "NullObserver", "MultiObserver",
    "ProgressRenderer", "JsonProfileWriter",
]
