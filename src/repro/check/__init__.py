"""Explicit-state model checking: reachability, safety, progress, simulation."""

from .explorer import explore
from .properties import ProgressReport, assert_safe, check_progress, tarjan_sccs
from .response import ResponseReport, check_response, grant_edge, remote_in_state
from .simulation import SimulationReport, check_simulation
from .symmetry import SymmetricSystem, SymmetrySpec, normalize
from .stats import Counterexample, ExplorationResult

__all__ = [
    "Counterexample", "ExplorationResult", "ProgressReport",
    "SimulationReport", "assert_safe", "check_progress", "check_simulation",
    "explore", "tarjan_sccs",
    "SymmetricSystem", "SymmetrySpec", "normalize",
    "ResponseReport", "check_response", "grant_edge", "remote_in_state",
]
