"""Ample-set partial-order reduction for asynchronous exploration.

Table 3's asynchronous columns explode mostly through *commuting
interleavings*: deliveries to distinct remotes, independent remote-local
steps, and home activity on disjoint channels reach the same state in
every order.  Symmetry reduction (:mod:`repro.check.symmetry`) collapses
the ``n!`` relabelling factor; this module collapses the orthogonal
interleaving factor by expanding, at selected states, only an *ample
subset* of the enabled transitions.

Independence relation
---------------------

Two steps are independent when their footprints
(:meth:`~repro.semantics.asynchronous.Step.footprint`) touch disjoint
(node, channel, buffer-slot) objects, with FIFO channels split into a
*head* (pop side) and a *tail* (push side): popping the head of a
non-empty queue commutes with pushing its tail.  The relation is static —
it falls out of the refinement's step-table schema
(:mod:`repro.refine.transitions`): every Table 1/2 row either acts on the
home node plus its channel ends, or on exactly one remote ``i`` plus
*its* channel ends.  Partition the actions accordingly:

* class ``P(i)`` — everything touching remote ``i``'s node or the head
  of channel home→remote(i): ``DeliverToRemote(i)``, ``RemoteSend(i)``,
  ``RemoteC3(i)``, ``RemoteTau(i)``;
* class ``H`` — home decisions/taus and all deliveries *to* home.

A class-``P(i)`` step with no sends touches only remote ``i``'s fields
and the head of home→remote(i) — disjoint from every step outside
``P(i)`` (home pushes to that channel hit the *tail*).  Moreover, the
enabledness of every ``P(i)`` step depends only on remote ``i``'s fields
and that same channel head, which only ``P(i)`` steps write: no step
outside the class can enable or disable one inside it.

Ample rule
----------

At state ``s``, for the lowest remote ``i`` (ascending scan — the choice
must be a pure function of ``s`` so the sequential and parallel drivers
agree byte-for-byte) such that

* ``DeliverToRemote(i)`` is enabled and is the *only* enabled ``P(i)``
  step (C1: by the class argument, nothing dependent on it can fire
  before it on any path leaving ``s``),
* the delivery sends nothing (a NACK delivery retransmits; excluded),
* the delivery is invisible to the checked properties (C2, see below),

the ample set is the singleton ``{DeliverToRemote(i)}``; otherwise the
state is fully expanded (C0 holds trivially: ample is empty only when
nothing is enabled, so deadlock states are exactly preserved — every
full-graph deadlock remains reachable because any path to it commutes
ample-first, and the reduced graph invents none).

Cycle proviso (C3)
------------------

The textbook in-stack check is DFS-bound and depends on visit order —
useless for a level-synchronous BFS whose parallel workers must stay
byte-identical with the sequential driver.  We use a *measure* proviso
instead: every ample step pops one message and pushes none, so it
strictly decreases ``channels.total_in_flight``.  A cycle of the reduced
graph therefore cannot consist of ample steps alone, i.e. every cycle
contains a fully expanded state — no enabled action is deferred forever.

Visibility presets (C2)
-----------------------

``preserve="counts"`` deems every send-free delivery invisible.  Sound
for raw reachability sweeps that check no state predicate (``repro
check``): deadlock states, invariant-free verdicts and stop semantics
are preserved; per-level counts shrink.

``preserve="invariants"`` (``repro verify``) additionally requires the
popped message to be a ``REQ`` whose only write is remote ``i``'s buffer
slot ``("r", i, "buf")`` — which leaves exactly the REQ-buffering and
T3-drop deliveries.  Checked predicate by predicate against
:mod:`repro.protocols.invariants`: the coherence invariants read remote
``(state, mode)``; ``buffer_capacity`` reads the home buffer;
``handshake_discipline`` counts ACK/NACK/REPL in flight (REQ pops do not
change it); ``remote_transient_shape`` reads ``(mode, buf)``, and a
buffer write while IDLE preserves its truth.  These ample steps also
complete no rendezvous, so the completion-labelled progress/response
conclusions survive reduction (verified differentially in the test
suite).  What reduction *drops* is anything reading identity-labelled
edge orderings — exact transition counts, per-interleaving traces, and
the SCC structure the Equation-1/progress checkers want, which is why
``repro verify --progress`` keeps running on the unreduced system.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import CheckError
from ..semantics.asynchronous import (
    AsyncAction,
    AsyncState,
    AsyncSystem,
    DeliverToRemote,
    RemoteC3,
    RemoteSend,
    RemoteTau,
    Step,
)
from ..semantics.network import REQ

__all__ = ["PRESERVE_COUNTS", "PRESERVE_INVARIANTS", "PORSystem"]

#: Preserve deadlocks and reachability verdicts of invariant-free sweeps.
PRESERVE_COUNTS = "counts"
#: Additionally preserve the library's state-predicate invariants and
#: completion-labelled progress/response conclusions.
PRESERVE_INVARIANTS = "invariants"

_PRESETS = (PRESERVE_COUNTS, PRESERVE_INVARIANTS)


class PORSystem:
    """Wrap an :class:`AsyncSystem` so the explorer sees ample sets.

    Exposes the same ``initial_state``/``steps``/``successors`` surface
    as the inner system plus :meth:`expand`, which the drivers use to
    report the full enabled count next to the reduced successor list
    (the per-level reduction ratio in ``repro.profile/4``).  Compose
    with symmetry as ``SymmetricSystem(PORSystem(inner), spec)`` —
    reduction picks the ample step on the concrete state, normalization
    canonicalizes the survivors.
    """

    def __init__(self, inner: AsyncSystem, *,
                 preserve: str = PRESERVE_INVARIANTS) -> None:
        if not isinstance(inner, AsyncSystem):
            raise CheckError(
                "partial-order reduction targets asynchronous "
                f"interleavings; cannot wrap {type(inner).__name__}")
        if preserve not in _PRESETS:
            raise CheckError(
                f"unknown POR preservation mode {preserve!r}; "
                f"choose from {_PRESETS}")
        self.inner = inner
        self.preserve = preserve
        self.n_remotes: int = inner.n_remotes

    # -- system surface ------------------------------------------------------

    def initial_state(self) -> AsyncState:
        return self.inner.initial_state()

    def steps(self, state: AsyncState) -> list[Step]:
        """The ample subset of the inner system's enabled steps."""
        steps = self.inner.steps(state)
        ample = self.ample(state, steps)
        return steps if ample is None else [ample]

    def successors(self, state: AsyncState,
                   ) -> list[tuple[AsyncAction, AsyncState]]:
        return [(s.action, s.state) for s in self.steps(state)]

    def expand(self, state: AsyncState,
               ) -> tuple[list[tuple[AsyncAction, AsyncState]], int]:
        """Reduced successors plus the full enabled-transition count."""
        steps = self.inner.steps(state)
        ample = self.ample(state, steps)
        chosen = steps if ample is None else [ample]
        return [(s.action, s.state) for s in chosen], len(steps)

    # -- the ample rule ------------------------------------------------------

    def ample(self, state: AsyncState,
              steps: list[Step]) -> Optional[Step]:
        """The ample step at ``state``, or None for full expansion."""
        if len(steps) < 2:
            return None
        local: set[int] = set()
        deliveries: dict[int, Step] = {}
        for step in steps:
            action = step.action
            if isinstance(action, (RemoteSend, RemoteC3, RemoteTau)):
                local.add(action.remote)
            elif isinstance(action, DeliverToRemote):
                deliveries[action.remote] = step
        for i in sorted(deliveries):
            if i in local:
                continue  # not the sole enabled P(i) step
            step = deliveries[i]
            if step.sends:
                continue  # NACK retransmit: pushes a channel tail
            if (self.preserve == PRESERVE_INVARIANTS
                    and not self._invisible(state, step, i)):
                continue
            return step
        return None

    def _invisible(self, state: AsyncState, step: Step, i: int) -> bool:
        """C2 for the invariant-preserving preset: a REQ pop whose only
        write is remote ``i``'s buffer slot (REQ buffering / T3 drop)."""
        fp = step.footprint(state)
        assert fp.pop is not None  # deliveries always pop
        if fp.pop[1] != REQ:
            return False
        return fp.writes <= {("r", i, "buf")}

    # -- passthrough ---------------------------------------------------------

    def apply(self, state: AsyncState, action: AsyncAction) -> AsyncState:
        return self.inner.apply(state, action)

    @property
    def protocol(self) -> Any:
        return self.inner.protocol
