"""Symmetry reduction for protocol state spaces (Ip/Dill scalarset style).

All remote nodes run the same template (paper section 2.4), so every global
state is equivalent to any relabelling of the remote indices — provided the
relabelling is applied consistently to the home's id-valued variables, the
buffers, and the per-remote channels.  Exploring one representative per
orbit can shrink the reachable space by up to ``n!``, which is exactly what
the invalidate rows of Table 3 need at larger node counts.

We use a *normalization* function rather than a true canonical form: each
state is mapped to an orbit member chosen by sorting remotes on a local
signature (control state, environment, channel contents, buffer
occupancy, and how the home's variables point at them).  Sorting is not
guaranteed to merge every orbit when signatures tie, but any consistent
orbit member is **sound** — the reduced system reaches a state orbit iff
the full system reaches the orbit — so reachability, deadlock and
*symmetric* invariants (all of ours quantify over remotes) are preserved.
Ties only cost extra states, never correctness.

The home's variables that hold remote ids (or sets of them) must be
declared via :class:`SymmetrySpec` — the semantics cannot tell an id-typed
``0`` from a data ``0``.  Each library protocol exports its spec
(``MIGRATORY_SYMMETRY`` etc. in :mod:`repro.protocols.symmetry`).

Progress (SCC) analysis and the Equation-1 checker intentionally do *not*
use reduction: their edge labels distinguish remote identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from ..csp.env import Env, Value
from ..errors import CheckError
from ..semantics.asynchronous import AsyncState, BufEntry, HomeNode
from ..semantics.network import Channels
from ..semantics.state import ProcState, RvState

__all__ = ["SymmetrySpec", "SymmetricSystem", "normalize"]


@dataclass(frozen=True)
class SymmetrySpec:
    """Which home variables carry remote identities.

    :param id_vars: variables holding a single remote id (or ``None``).
    :param set_vars: variables holding a ``frozenset`` of remote ids.
    """

    id_vars: frozenset[str] = frozenset()
    set_vars: frozenset[str] = frozenset()


#: Bound on the per-system representative memo (see
#: :meth:`SymmetricSystem._normalize`); cleared, not evicted, past this.
_MEMO_LIMIT = 1 << 20


class SymmetricSystem:
    """Wrap a system so the explorer sees one representative per orbit.

    Works with both :class:`~repro.semantics.rendezvous.RendezvousSystem`
    and :class:`~repro.semantics.asynchronous.AsyncSystem`.  Remote-node
    environments must themselves be id-free (true for the whole library:
    remotes only hold data), which is asserted when possible.

    Representatives are memoized per state: computing a signature per
    remote (channel renderings, buffer slots, home id-references) on
    every successor made the symmetry driver ~3x slower per state than
    unreduced exploration, yet most successors are duplicates whose
    representative was already computed.  The memo is value-keyed (state
    hashes are themselves memoized on the semantics classes), returns
    the *identical* representative object for equal queries, and is
    bounded the same way the compiled engine's intern tables are, so a
    10^7-state run cannot pin two copies of the space.
    """

    def __init__(self, inner: Any, spec: SymmetrySpec) -> None:
        self.inner = inner
        self.spec = spec
        self.n = inner.n_remotes
        self._memo: dict[Union[RvState, AsyncState],
                         Union[RvState, AsyncState]] = {}

    def _normalize(self,
                   state: Union[RvState, AsyncState],
                   ) -> Union[RvState, AsyncState]:
        memo = self._memo
        rep = memo.get(state)
        if rep is None:
            rep = normalize(state, self.spec)
            if len(memo) > _MEMO_LIMIT:
                memo.clear()
            memo[state] = rep
        return rep

    def initial_state(self) -> Union[RvState, AsyncState]:
        return self._normalize(self.inner.initial_state())

    def successors(self, state: Union[RvState, AsyncState],
                   ) -> list[tuple[Any, Union[RvState, AsyncState]]]:
        _normalize = self._normalize
        return [(action, _normalize(nxt))
                for action, nxt in self.inner.successors(state)]

    def expand(self, state: Union[RvState, AsyncState],
               ) -> tuple[list[tuple[Any, Union[RvState, AsyncState]]], int]:
        """Successors plus the inner system's enabled count (forwarded
        from a reducing inner system such as
        :class:`~repro.check.por.PORSystem`)."""
        inner_expand = getattr(self.inner, "expand", None)
        if inner_expand is not None:
            succs, enabled = inner_expand(state)
        else:
            succs = self.inner.successors(state)
            enabled = len(succs)
        _normalize = self._normalize
        return ([(action, _normalize(nxt))
                 for action, nxt in succs], enabled)


def normalize(state: Union[RvState, AsyncState],
              spec: SymmetrySpec) -> Union[RvState, AsyncState]:
    """Map ``state`` to its orbit representative."""
    if isinstance(state, RvState):
        return _normalize_rv(state, spec)
    if isinstance(state, AsyncState):
        return _normalize_async(state, spec)
    raise CheckError(f"cannot normalize states of type {type(state)!r}")


# ---------------------------------------------------------------------------


def _env_key(env: Env) -> tuple[tuple[str, str], ...]:
    return tuple((k, repr(v)) for k, v in env.items())


def _home_refs(env: Env, spec: SymmetrySpec,
               i: int) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """How the home's id-typed variables point at remote ``i``."""
    singles = tuple(sorted(var for var in spec.id_vars
                           if var in env and env[var] == i))
    members = tuple(sorted(
        var for var in spec.set_vars
        if isinstance(val := env.get(var), frozenset) and i in val))
    return singles, members


def _relabel_env(env: Env, spec: SymmetrySpec,
                 relabel: dict[int, int]) -> Env:
    changes: dict[str, Value] = {}
    for var in spec.id_vars:
        val = env.get(var)
        if isinstance(val, int) and val in relabel:
            changes[var] = relabel[val]
    for var in spec.set_vars:
        val = env.get(var)
        if isinstance(val, frozenset):
            changes[var] = frozenset(relabel.get(m, m) for m in val)
    return env.update(changes) if changes else env


def _apply_order(order: list[int]) -> dict[int, int]:
    """old index -> new index, given the chosen representative order."""
    return {old: new for new, old in enumerate(order)}


def _normalize_rv(state: RvState, spec: SymmetrySpec) -> RvState:
    def signature(i: int) -> tuple[Any, ...]:
        proc = state.remotes[i]
        return (proc.state, _env_key(proc.env),
                _home_refs(state.home.env, spec, i))

    order = sorted(range(state.n_remotes), key=signature)
    if order == list(range(state.n_remotes)):
        return state  # already the representative
    relabel = _apply_order(order)
    remotes = tuple(state.remotes[old] for old in order)
    home = ProcState(state.home.state,
                     _relabel_env(state.home.env, spec, relabel))
    return RvState(home=home, remotes=remotes)


def _normalize_async(state: AsyncState, spec: SymmetrySpec) -> AsyncState:
    home = state.home

    def signature(i: int) -> tuple[Any, ...]:
        node = state.remotes[i]
        down = tuple(m.describe()
                     for m in state.channels.queues[Channels.to_remote(i)])
        up = tuple(m.describe()
                   for m in state.channels.queues[Channels.to_home(i)])
        buffer_slots = tuple(pos for pos, entry in enumerate(home.buffer)
                             if entry.sender == i)
        note_slots = tuple(pos for pos, entry in enumerate(home.buffer)
                           if entry.sender == i and entry.note)
        return (node.state, node.mode, node.pending_out or -1,
                node.buf.describe() if node.buf else "",
                _env_key(node.env), down, up, buffer_slots, note_slots,
                home.awaiting == i,
                _home_refs(home.env, spec, i))

    order = sorted(range(len(state.remotes)), key=signature)
    if order == list(range(len(state.remotes))):
        return state
    relabel = _apply_order(order)

    remotes = tuple(state.remotes[old] for old in order)
    queues = list(state.channels.queues)
    new_queues = list(queues)
    for old, new in relabel.items():
        new_queues[Channels.to_remote(new)] = queues[Channels.to_remote(old)]
        new_queues[Channels.to_home(new)] = queues[Channels.to_home(old)]
    buffer = tuple(
        BufEntry(sender=relabel.get(e.sender, e.sender)
                 if isinstance(e.sender, int) else e.sender,
                 msg=e.msg, payload=e.payload, note=e.note)
        for e in home.buffer)
    awaiting = (relabel[home.awaiting]
                if isinstance(home.awaiting, int) else home.awaiting)
    new_home = HomeNode(state=home.state,
                        env=_relabel_env(home.env, spec, relabel),
                        mode=home.mode, out_idx=home.out_idx,
                        awaiting=awaiting, pending_out=home.pending_out,
                        buffer=buffer)
    return AsyncState(home=new_home, remotes=remotes,
                      channels=Channels(queues=tuple(new_queues)))
