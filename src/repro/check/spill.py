"""mmap-backed sorted spill files for partitioned fingerprint stores.

A :class:`SpillFile` is the cold tier of one visited-set partition: a
flat, sorted array of ``(fingerprint, check)`` pairs on disk, memory-
mapped for lookups.  The hot tier (a dict in
:class:`~repro.check.store.PartitionedFingerprintStore`) absorbs new
states; when it crosses the spill threshold it is *merged* into the
file — a single sequential two-way merge of the existing records with
the sorted hot entries, written to a temp file and atomically renamed —
and the hot tier starts over empty.  Lookups binary-search the mapping
(``struct.unpack_from`` directly on the mmap, no record objects), so a
partition's resident cost is the hot dict plus page cache the OS is
free to drop: exactly the "64 MB allotment" discipline behind the
paper's Table 3 runs, except the wall is now configurable
(``--memory-limit``) and crossing it truncates gracefully instead of
dying.

File layout (all integers big-endian)::

    bytes 0..7    magic  b"RSPILL01"
    bytes 8..15   record count (u64)
    then count records of 16 bytes: fingerprint (u64), check hash (u64)

Records are unique by fingerprint and sorted ascending, which the merge
maintains; a duplicate fingerprint offered to :meth:`SpillFile.merge`
keeps the incumbent record (first-writer-wins, matching the hot dict's
semantics).
"""

from __future__ import annotations

import mmap
import os
import struct
from pathlib import Path
from typing import IO, Iterator, Optional, Union

__all__ = ["SpillFile", "MAGIC", "RECORD_SIZE"]

MAGIC = b"RSPILL01"
_HEADER = struct.Struct(">8sQ")
_RECORD = struct.Struct(">QQ")
#: bytes per on-disk record: fingerprint u64 + check hash u64
RECORD_SIZE = _RECORD.size
HEADER_SIZE = _HEADER.size


class SpillFile:
    """One partition's sorted on-disk fingerprint array.

    Opening an existing path validates the header and maps the records;
    a missing path starts empty (the file is created by the first
    :meth:`merge`).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file: Optional[IO[bytes]] = None
        self._mm: Optional[mmap.mmap] = None
        self._count = 0
        if self.path.exists():
            self._open()

    # -- lifecycle ---------------------------------------------------------

    def _open(self) -> None:
        fh = open(self.path, "rb")
        header = fh.read(HEADER_SIZE)
        if len(header) != HEADER_SIZE:
            fh.close()
            raise ValueError(f"{self.path}: truncated spill header")
        magic, count = _HEADER.unpack(header)
        if magic != MAGIC:
            fh.close()
            raise ValueError(f"{self.path}: bad spill magic {magic!r}")
        expected = HEADER_SIZE + count * RECORD_SIZE
        actual = os.fstat(fh.fileno()).st_size
        if actual != expected:
            fh.close()
            raise ValueError(
                f"{self.path}: spill file is {actual} bytes, header "
                f"promises {expected} ({count} records)")
        self._file = fh
        self._count = count
        self._mm = (mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                    if count else None)

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __len__(self) -> int:
        return self._count

    @property
    def spill_bytes(self) -> int:
        """On-disk size of the spill file (0 before the first merge)."""
        return HEADER_SIZE + self._count * RECORD_SIZE if self._count else 0

    # -- queries -----------------------------------------------------------

    def lookup(self, fingerprint: int) -> Optional[int]:
        """The check hash stored for ``fingerprint``, or None if absent."""
        mm = self._mm
        if mm is None:
            return None
        unpack = _RECORD.unpack_from
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            rec_fp, check = unpack(mm, HEADER_SIZE + mid * RECORD_SIZE)
            if rec_fp == fingerprint:
                return int(check)
            if rec_fp < fingerprint:
                lo = mid + 1
            else:
                hi = mid
        return None

    def __contains__(self, fingerprint: int) -> bool:
        return self.lookup(fingerprint) is not None

    def fingerprints(self) -> Iterator[int]:
        """All stored fingerprints, ascending (filter (re)seeding)."""
        mm = self._mm
        if mm is None:
            return
        unpack = _RECORD.unpack_from
        for i in range(self._count):
            yield int(unpack(mm, HEADER_SIZE + i * RECORD_SIZE)[0])

    # -- mutation ----------------------------------------------------------

    def merge(self, entries: dict[int, int]) -> None:
        """Merge ``{fingerprint: check}`` into the file, atomically.

        Streams a two-way merge of the existing sorted records and the
        sorted new entries into ``<path>.tmp``, then ``os.replace``\\ s it
        over the original and re-maps.  Existing records win fingerprint
        ties (they were admitted first).
        """
        fresh = sorted(entries.items())
        tmp = self.path.with_name(self.path.name + ".tmp")
        old, n_old = self._mm, self._count
        unpack = _RECORD.unpack_from
        pack = _RECORD.pack
        written = 0
        with open(tmp, "wb") as out:
            out.write(_HEADER.pack(MAGIC, 0))  # count patched below
            i = j = 0
            old_fp, old_check = (unpack(old, HEADER_SIZE)
                                 if old is not None and n_old else (0, 0))
            while i < n_old and j < len(fresh):
                new_fp, new_check = fresh[j]
                if old_fp <= new_fp:
                    out.write(pack(old_fp, old_check))
                    written += 1
                    if old_fp == new_fp:
                        j += 1  # incumbent wins the tie
                    i += 1
                    if i < n_old:
                        assert old is not None
                        old_fp, old_check = unpack(
                            old, HEADER_SIZE + i * RECORD_SIZE)
                else:
                    out.write(pack(new_fp, new_check))
                    written += 1
                    j += 1
            while i < n_old:
                assert old is not None
                out.write(pack(*unpack(old, HEADER_SIZE + i * RECORD_SIZE)))
                written += 1
                i += 1
            for new_fp, new_check in fresh[j:]:
                out.write(pack(new_fp, new_check))
                written += 1
            out.seek(0)
            out.write(_HEADER.pack(MAGIC, written))
        self.close()
        os.replace(tmp, self.path)
        self._open()
