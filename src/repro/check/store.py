"""Pluggable visited-state stores for the explicit-state explorers.

The visited set is the memory bottleneck of explicit-state model checking
— the very bottleneck the paper's Table 3 "Unfinished" cells dramatize.
This module factors it behind a small :class:`StateStore` interface with
two implementations, shared by the sequential and parallel drivers:

* :class:`ExactStore` keeps full states plus BFS parent pointers, so
  counterexample and deadlock traces can be reconstructed.  This is the
  default and what every pre-existing caller gets.
* :class:`FingerprintStore` keeps only a 64-bit fingerprint per state —
  SPIN's *hash compaction* — cutting memory per state to ~16 bytes at the
  cost of (a) no traces and (b) a small probability that two distinct
  states collide and a reachable state is silently skipped.  A second,
  independent 64-bit check hash detects (and counts) primary-fingerprint
  collisions, so a run can report how much it may have under-explored;
  with both hashes at 64 bits the chance of an *undetected* collision is
  negligible for the state-space sizes this library reaches.

Fingerprints are computed over a *canonical encoding* of the state
(:func:`canonical`): a nested tuple of primitives in which unordered
containers (``frozenset`` values in variable environments, e.g. sharer
sets) are sorted.  Canonicalisation matters because two equal frozensets
built in different insertion orders may iterate — and therefore ``repr``
— differently; hashing the raw ``repr`` would split one state into two.
States advertise an encoding by exposing ``canonical_key()`` (see
:mod:`repro.semantics.state` / :mod:`repro.semantics.asynchronous`);
plain hashable states (ints in the unit-test toy systems) are used as-is.

Both stores meter their own memory via :meth:`StateStore.approx_bytes`,
replacing the explorer's old sample-one-key guess that ignored the
parent-pointer payloads entirely — so the Table 3 "Unfinished" narration
is computed the same way in every driver.
"""

from __future__ import annotations

import sys
from hashlib import blake2b
from typing import Any, Hashable, Iterator, Optional, Protocol, Union

__all__ = [
    "STORE_NAMES",
    "ParentEntry",
    "StateStore",
    "ExactStore",
    "FingerprintStore",
    "StoreSpec",
    "canonical",
    "fingerprint",
    "make_store",
]

#: BFS provenance of a state: ``(predecessor, action)``; ``None`` for the
#: initial state.
ParentEntry = Optional[tuple[Hashable, Any]]


# ---------------------------------------------------------------------------
# canonical encoding + fingerprints
# ---------------------------------------------------------------------------


def _canon(obj: Any) -> Any:
    """Recursively canonicalise a structural encoding.

    Tuples recurse; frozensets become sorted, tagged tuples (sorted by
    ``repr`` so mixed-type element sets stay comparable); everything else
    is returned unchanged.  The tag keeps ``frozenset({1})`` distinct
    from the tuple ``(1,)``.
    """
    if isinstance(obj, tuple):
        return tuple(_canon(x) for x in obj)
    if isinstance(obj, frozenset):
        return ("\x00frozenset\x00",) + tuple(
            sorted((_canon(x) for x in obj), key=repr))
    return obj


def canonical(state: Hashable) -> Any:
    """The canonical structural encoding of ``state``.

    Uses the state's ``canonical_key()`` when it has one (the semantics
    classes do), else the state itself, then canonicalises unordered
    containers so equal states always encode identically.
    """
    key = getattr(state, "canonical_key", None)
    return _canon(key() if callable(key) else state)


#: Byte encodings of canonical subtrees, keyed by the subtree tuple
#: itself.  Canonical keys share subtrees heavily (node keys recur across
#: millions of states), so encoding is one C-level tuple hash plus a join
#: of cached chunks instead of a Python-level walk of the whole tree.
#: Value-keyed, so sharing across protocols and stores is harmless; the
#: bound keeps 10^7-state runs from pinning unbounded encodings.
_ENC_CACHE: dict[tuple, bytes] = {}
_ENC_LIMIT = 1 << 20


def _enc(obj: Any) -> bytes:
    """Deterministic, injective byte encoding of a structural key.

    Tuples become ``t(...)``, frozensets ``f(...)`` with elements sorted
    by their encodings (equal sets encode equally regardless of
    insertion/iteration order), leaves their ``repr`` — whose quoting
    and escaping keep string contents from masquerading as structure.
    Unlike ``hash()``, the result is stable across processes.
    """
    if type(obj) is tuple:
        cached = _ENC_CACHE.get(obj)
        if cached is None:
            cached = b"t(" + b",".join(_enc(x) for x in obj) + b")"
            if len(_ENC_CACHE) > _ENC_LIMIT:
                _ENC_CACHE.clear()
            _ENC_CACHE[obj] = cached
        return cached
    if isinstance(obj, frozenset):
        return b"f(" + b",".join(sorted(_enc(x) for x in obj)) + b")"
    return repr(obj).encode()


def _encode(state: Hashable) -> bytes:
    """Canonical byte encoding of ``state``, memoized on willing states.

    Encoding a nested state is the expensive part of fingerprinting —
    the blake2b digests over the resulting blob are cheap.  States with
    an attribute dict cache the blob, so the two salted digests of one
    ``add`` share a single encoding pass and re-submitted state
    *objects* (the compiled engine interns successors) skip the encoding
    entirely.  ``__getstate__`` on the semantics classes pickles fields
    only, so the cache never crosses a process boundary; plain hashable
    states (ints in toy systems) take the uncached path.
    """
    d = getattr(state, "__dict__", None)
    if d is None:
        key = getattr(state, "canonical_key", None)
        return _enc(key() if callable(key) else state)
    blob = d.get("_blob_cache")
    if blob is None:
        key = getattr(state, "canonical_key", None)
        blob = _enc(key() if callable(key) else state)
        try:
            object.__setattr__(state, "_blob_cache", blob)
        except (AttributeError, TypeError):
            pass
    return blob


def fingerprint(state: Hashable, *, salt: bytes = b"") -> int:
    """A 64-bit fingerprint of ``state``'s canonical encoding.

    blake2b over the ``repr`` of the canonical encoding: deterministic
    across processes and runs (unlike ``hash()``, which is seeded per
    process), uniform, and fast enough for the state rates this library
    reaches.  ``salt`` keys an independent second fingerprint.
    """
    digest = blake2b(_encode(state), digest_size=8, key=salt).digest()
    return int.from_bytes(digest, "big")


# ---------------------------------------------------------------------------
# the store interface
# ---------------------------------------------------------------------------


class StateStore(Protocol):
    """Structural interface of a visited-state store."""

    #: store kind, echoed into results and profiles
    name: str
    #: True when parent pointers are retained and traces can be rebuilt
    supports_traces: bool
    #: detected fingerprint collisions (always 0 for exact stores)
    collisions: int

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        """Record ``state``; return True iff it was not already present."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, state: Hashable) -> bool: ...

    def parent_of(self, state: Hashable) -> ParentEntry:
        """The BFS parent entry of ``state`` (exact stores only)."""
        ...

    def approx_bytes(self) -> int:
        """Crude memory footprint of the store (Table 3 narration)."""
        ...


class ExactStore:
    """Full states + parent pointers in one dict (the classic layout)."""

    name = "exact"
    supports_traces = True
    collisions = 0

    def __init__(self) -> None:
        self._parents: dict[Hashable, ParentEntry] = {}

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        # setdefault keeps the first (shortest-path) parent and hashes
        # the state once, where a contains-then-insert pair hashes twice.
        parents = self._parents
        before = len(parents)
        parents.setdefault(state, parent)
        return len(parents) != before

    def __len__(self) -> int:
        return len(self._parents)

    def __contains__(self, state: Hashable) -> bool:
        return state in self._parents

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parents)

    def parent_of(self, state: Hashable) -> ParentEntry:
        return self._parents[state]

    def approx_bytes(self) -> int:
        """Dict overhead plus sampled per-entry cost, parents included.

        Deliberately rough — it narrates the Table 3 memory-budget story,
        it does not meter CPython precisely.  Unlike the explorer's old
        estimate it samples the parent-pointer payload too (a two-tuple
        per non-initial state), which is real, per-state memory.
        """
        if not self._parents:
            return 0
        # Sample the newest entry: the initial state (the oldest) is the
        # only one with a None parent, so the newest is representative.
        state = next(reversed(self._parents))
        entry = self._parents[state]
        per_parent = 0 if entry is None else (
            sys.getsizeof(entry) + sys.getsizeof(entry[1]))
        per_state = sys.getsizeof(state) + per_parent
        return sys.getsizeof(self._parents) + len(self._parents) * per_state


class FingerprintStore:
    """SPIN-style hash compaction: 64-bit fingerprints, no states.

    Each state is reduced to a primary 64-bit fingerprint (the dict key)
    and an independent 64-bit check hash (the value).  A state whose
    primary fingerprint is present but whose check hash differs is a
    *detected collision*: a distinct state that hash compaction would
    have silently merged.  It is still treated as visited — that is the
    compaction trade-off — but counted, so results can report how much
    the run may have under-explored.  Traces cannot be reconstructed
    (there are no states to string together).

    ``bits`` truncates the primary fingerprint, which exists to make
    collisions reproducible in tests; production use keeps all 64.
    """

    supports_traces = False

    def __init__(self, *, bits: int = 64) -> None:
        if not 1 <= bits <= 64:
            raise ValueError(f"fingerprint bits must be in 1..64, got {bits}")
        self.name = "fingerprint"
        self.collisions = 0
        self._mask = (1 << bits) - 1
        self._table: dict[int, int] = {}

    def _fingerprints(self, state: Hashable) -> tuple[int, int]:
        # One encoding pass and one digest feed both hashes: the primary
        # fingerprint is the first 8 bytes of a 16-byte blake2b, the
        # check hash the last 8 — independent bits of one hash call.
        digest = blake2b(_encode(state), digest_size=16).digest()
        return (int.from_bytes(digest[:8], "big") & self._mask,
                int.from_bytes(digest[8:], "big"))

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        primary, check = self._fingerprints(state)
        current = self._table.get(primary)
        if current is None:
            self._table[primary] = check
            return True
        if current != check:
            self.collisions += 1
        return False

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, state: Hashable) -> bool:
        primary, _check = self._fingerprints(state)
        return primary in self._table

    def parent_of(self, state: Hashable) -> ParentEntry:
        raise KeyError(
            "fingerprint stores keep no states, so no parent pointers")

    def approx_bytes(self) -> int:
        # two 64-bit words per state plus the table itself
        return sys.getsizeof(self._table) + 16 * len(self._table)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

STORE_NAMES = ("exact", "fingerprint")

#: What callers may pass for a ``store=`` argument: a kind name or a
#: ready-made store instance (for tests injecting e.g. truncated-bit
#: fingerprint stores).
StoreSpec = Union[str, StateStore]


def make_store(spec: StoreSpec = "exact") -> StateStore:
    """Resolve a ``store=`` argument to a fresh (or given) store."""
    if isinstance(spec, str):
        if spec == "exact":
            return ExactStore()
        if spec == "fingerprint":
            return FingerprintStore()
        raise ValueError(f"unknown store {spec!r}; "
                         f"choose from {', '.join(STORE_NAMES)}")
    return spec
