"""Pluggable visited-state stores for the explicit-state explorers.

The visited set is the memory bottleneck of explicit-state model checking
— the very bottleneck the paper's Table 3 "Unfinished" cells dramatize.
This module factors it behind a small :class:`StateStore` interface with
two implementations, shared by the sequential and parallel drivers:

* :class:`ExactStore` keeps full states plus BFS parent pointers, so
  counterexample and deadlock traces can be reconstructed.  This is the
  default and what every pre-existing caller gets.
* :class:`FingerprintStore` keeps only a 64-bit fingerprint per state —
  SPIN's *hash compaction* — cutting memory per state to ~16 bytes at the
  cost of (a) no traces and (b) a small probability that two distinct
  states collide and a reachable state is silently skipped.  A second,
  independent 64-bit check hash detects (and counts) primary-fingerprint
  collisions, so a run can report how much it may have under-explored;
  with both hashes at 64 bits the chance of an *undetected* collision is
  negligible for the state-space sizes this library reaches.

Fingerprints are computed over a *canonical encoding* of the state
(:func:`canonical`): a nested tuple of primitives in which unordered
containers (``frozenset`` values in variable environments, e.g. sharer
sets) are sorted.  Canonicalisation matters because two equal frozensets
built in different insertion orders may iterate — and therefore ``repr``
— differently; hashing the raw ``repr`` would split one state into two.
States advertise an encoding by exposing ``canonical_key()`` (see
:mod:`repro.semantics.state` / :mod:`repro.semantics.asynchronous`);
plain hashable states (ints in the unit-test toy systems) are used as-is.

Both stores meter their own memory via :meth:`StateStore.approx_bytes`,
replacing the explorer's old sample-one-key guess that ignored the
parent-pointer payloads entirely — so the Table 3 "Unfinished" narration
is computed the same way in every driver.  The estimate includes the
per-state memo caches (``_blob_cache``/``_key_cache``/``_hash_cache``)
the encoding layer pins on exact-store states: they are real, per-state,
store-lifetime memory, and omitting them undercounted exact runs by 2-3x.

The *partitioned* family shards the visited set by fingerprint range
(:func:`partition_index` — distributed-SPIN ownership):

* :class:`PartitionedFingerprintStore` keeps one hot ``{fingerprint:
  check}`` dict per partition and, when a spill directory is configured,
  merges a partition crossing the spill threshold into an mmap-backed
  sorted file (:mod:`repro.check.spill`), so the resident footprint is
  bounded by ``partitions x spill_threshold`` entries.
* :class:`PartitionedExactStore` replaces full state objects with
  zlib state-delta-compressed canonical blobs (dictionary = the initial
  state's encoding, which every reachable state differs from by a few
  fields) plus integer parent/action arrays — traces survive at a small
  fraction of the classic layout's bytes/state, rebuilt by action replay
  (:meth:`PartitionedExactStore.action_trace`) instead of parent-object
  chasing.

Both accept membership probes/inserts from any process; the router is a
pure function of the blake2b fingerprint, so partition assignment is
stable across processes, runs, and multiprocessing start methods — the
property the owner-computes driver (:mod:`repro.check.partitioned`)
relies on.
"""

from __future__ import annotations

import sys
import zlib
from array import array
from hashlib import blake2b
from pathlib import Path
from typing import Any, Hashable, Iterator, Optional, Protocol, Union

from .spill import SpillFile

__all__ = [
    "STORE_NAMES",
    "ParentEntry",
    "StateStore",
    "ExactStore",
    "FingerprintStore",
    "PartitionedFingerprintStore",
    "PartitionedExactStore",
    "StoreSpec",
    "canonical",
    "fingerprint",
    "partition_index",
    "partition_of",
    "make_store",
    "make_partitioned_store",
]

#: BFS provenance of a state: ``(predecessor, action)``; ``None`` for the
#: initial state.
ParentEntry = Optional[tuple[Hashable, Any]]


# ---------------------------------------------------------------------------
# canonical encoding + fingerprints
# ---------------------------------------------------------------------------


def _canon(obj: Any) -> Any:
    """Recursively canonicalise a structural encoding.

    Tuples recurse; frozensets become sorted, tagged tuples (sorted by
    ``repr`` so mixed-type element sets stay comparable); everything else
    is returned unchanged.  The tag keeps ``frozenset({1})`` distinct
    from the tuple ``(1,)``.
    """
    if isinstance(obj, tuple):
        return tuple(_canon(x) for x in obj)
    if isinstance(obj, frozenset):
        return ("\x00frozenset\x00",) + tuple(
            sorted((_canon(x) for x in obj), key=repr))
    return obj


def canonical(state: Hashable) -> Any:
    """The canonical structural encoding of ``state``.

    Uses the state's ``canonical_key()`` when it has one (the semantics
    classes do), else the state itself, then canonicalises unordered
    containers so equal states always encode identically.
    """
    key = getattr(state, "canonical_key", None)
    return _canon(key() if callable(key) else state)


#: Byte encodings of canonical subtrees, keyed by the subtree tuple
#: itself.  Canonical keys share subtrees heavily (node keys recur across
#: millions of states), so encoding is one C-level tuple hash plus a join
#: of cached chunks instead of a Python-level walk of the whole tree.
#: Value-keyed, so sharing across protocols and stores is harmless; the
#: bound keeps 10^7-state runs from pinning unbounded encodings.
_ENC_CACHE: dict[tuple, bytes] = {}
_ENC_LIMIT = 1 << 20


def _enc(obj: Any) -> bytes:
    """Deterministic, injective byte encoding of a structural key.

    Tuples become ``t(...)``, frozensets ``f(...)`` with elements sorted
    by their encodings (equal sets encode equally regardless of
    insertion/iteration order), leaves their ``repr`` — whose quoting
    and escaping keep string contents from masquerading as structure.
    Unlike ``hash()``, the result is stable across processes.
    """
    if type(obj) is tuple:
        cached = _ENC_CACHE.get(obj)
        if cached is None:
            cached = b"t(" + b",".join(_enc(x) for x in obj) + b")"
            if len(_ENC_CACHE) > _ENC_LIMIT:
                _ENC_CACHE.clear()
            _ENC_CACHE[obj] = cached
        return cached
    if isinstance(obj, frozenset):
        return b"f(" + b",".join(sorted(_enc(x) for x in obj)) + b")"
    return repr(obj).encode()


def _encode(state: Hashable) -> bytes:
    """Canonical byte encoding of ``state``, memoized on willing states.

    Encoding a nested state is the expensive part of fingerprinting —
    the blake2b digests over the resulting blob are cheap.  States with
    an attribute dict cache the blob, so the two salted digests of one
    ``add`` share a single encoding pass and re-submitted state
    *objects* (the compiled engine interns successors) skip the encoding
    entirely.  ``__getstate__`` on the semantics classes pickles fields
    only, so the cache never crosses a process boundary; plain hashable
    states (ints in toy systems) take the uncached path.
    """
    d = getattr(state, "__dict__", None)
    if d is None:
        key = getattr(state, "canonical_key", None)
        return _enc(key() if callable(key) else state)
    blob = d.get("_blob_cache")
    if blob is None:
        key = getattr(state, "canonical_key", None)
        blob = _enc(key() if callable(key) else state)
        try:
            object.__setattr__(state, "_blob_cache", blob)
        except (AttributeError, TypeError):
            pass
    return blob


def fingerprint(state: Hashable, *, salt: bytes = b"") -> int:
    """A 64-bit fingerprint of ``state``'s canonical encoding.

    blake2b over the ``repr`` of the canonical encoding: deterministic
    across processes and runs (unlike ``hash()``, which is seeded per
    process), uniform, and fast enough for the state rates this library
    reaches.  ``salt`` keys an independent second fingerprint.
    """
    digest = blake2b(_encode(state), digest_size=8, key=salt).digest()
    return int.from_bytes(digest, "big")


def partition_index(fp: int, partitions: int) -> int:
    """The owning partition of 64-bit fingerprint ``fp``: range sharding.

    ``(fp * partitions) >> 64`` maps the fingerprint space onto
    ``range(partitions)`` in contiguous, near-equal ranges (Lemire's
    multiply-shift reduction).  A pure function of the fingerprint — no
    per-process salt, no ``hash()`` — so every process and every
    multiprocessing start method routes a given state to the same owner.
    """
    return (fp * partitions) >> 64


def partition_of(state: Hashable, partitions: int) -> int:
    """The owning partition of ``state`` (fingerprint + range router)."""
    return partition_index(fingerprint(state), partitions)


# ---------------------------------------------------------------------------
# the store interface
# ---------------------------------------------------------------------------


class StateStore(Protocol):
    """Structural interface of a visited-state store."""

    #: store kind, echoed into results and profiles
    name: str
    #: True when parent pointers are retained and traces can be rebuilt
    supports_traces: bool
    #: detected fingerprint collisions (always 0 for exact stores)
    collisions: int

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        """Record ``state``; return True iff it was not already present."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, state: Hashable) -> bool: ...

    def parent_of(self, state: Hashable) -> ParentEntry:
        """The BFS parent entry of ``state`` (exact stores only)."""
        ...

    def approx_bytes(self) -> int:
        """Crude memory footprint of the store (Table 3 narration)."""
        ...


class ExactStore:
    """Full states + parent pointers in one dict (the classic layout)."""

    name = "exact"
    supports_traces = True
    collisions = 0

    def __init__(self) -> None:
        self._parents: dict[Hashable, ParentEntry] = {}

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        # setdefault keeps the first (shortest-path) parent and hashes
        # the state once, where a contains-then-insert pair hashes twice.
        parents = self._parents
        before = len(parents)
        parents.setdefault(state, parent)
        return len(parents) != before

    def __len__(self) -> int:
        return len(self._parents)

    def __contains__(self, state: Hashable) -> bool:
        return state in self._parents

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parents)

    def parent_of(self, state: Hashable) -> ParentEntry:
        return self._parents[state]

    def approx_bytes(self) -> int:
        """Dict overhead plus sampled per-entry cost, caches included.

        Deliberately rough — it narrates the Table 3 memory-budget story,
        it does not meter CPython precisely.  Unlike the explorer's old
        estimate it samples the parent-pointer payload (a two-tuple per
        non-initial state) *and* the per-state memo caches the encoding
        layer pins on states (``_blob_cache``/``_key_cache``/
        ``_hash_cache``): both are real, per-state memory that lives
        exactly as long as the store does, and the caches alone
        undercounted exact runs by 2-3x before they were metered.
        """
        detail = self.approx_bytes_detail()
        return detail["entries"] + detail["state_caches"]

    def approx_bytes_detail(self) -> dict[str, int]:
        """The estimate split into classic entries vs memo caches."""
        if not self._parents:
            return {"entries": 0, "state_caches": 0}
        # Sample the newest entry: the initial state (the oldest) is the
        # only one with a None parent, so the newest is representative.
        state = next(reversed(self._parents))
        entry = self._parents[state]
        per_parent = 0 if entry is None else (
            sys.getsizeof(entry) + sys.getsizeof(entry[1]))
        per_state = sys.getsizeof(state) + per_parent
        per_cache = 0
        d = getattr(state, "__dict__", None)
        if d is not None:
            per_cache = sys.getsizeof(d)
            for attr in ("_blob_cache", "_key_cache", "_hash_cache"):
                value = d.get(attr)
                if value is not None:
                    per_cache += sys.getsizeof(value)
        n = len(self._parents)
        return {"entries": sys.getsizeof(self._parents) + n * per_state,
                "state_caches": n * per_cache}


class FingerprintStore:
    """SPIN-style hash compaction: 64-bit fingerprints, no states.

    Each state is reduced to a primary 64-bit fingerprint (the dict key)
    and an independent 64-bit check hash (the value).  A state whose
    primary fingerprint is present but whose check hash differs is a
    *detected collision*: a distinct state that hash compaction would
    have silently merged.  It is still treated as visited — that is the
    compaction trade-off — but counted, so results can report how much
    the run may have under-explored.  Traces cannot be reconstructed
    (there are no states to string together).

    ``bits`` truncates the primary fingerprint, which exists to make
    collisions reproducible in tests; production use keeps all 64.
    """

    supports_traces = False

    def __init__(self, *, bits: int = 64) -> None:
        if not 1 <= bits <= 64:
            raise ValueError(f"fingerprint bits must be in 1..64, got {bits}")
        self.name = "fingerprint"
        self.collisions = 0
        self._mask = (1 << bits) - 1
        self._table: dict[int, int] = {}

    def _fingerprints(self, state: Hashable) -> tuple[int, int]:
        # One encoding pass and one digest feed both hashes: the primary
        # fingerprint is the first 8 bytes of a 16-byte blake2b, the
        # check hash the last 8 — independent bits of one hash call.
        digest = blake2b(_encode(state), digest_size=16).digest()
        return (int.from_bytes(digest[:8], "big") & self._mask,
                int.from_bytes(digest[8:], "big"))

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        primary, check = self._fingerprints(state)
        current = self._table.get(primary)
        if current is None:
            self._table[primary] = check
            return True
        if current != check:
            self.collisions += 1
        return False

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, state: Hashable) -> bool:
        primary, _check = self._fingerprints(state)
        return primary in self._table

    def parent_of(self, state: Hashable) -> ParentEntry:
        raise KeyError(
            "fingerprint stores keep no states, so no parent pointers")

    def approx_bytes(self) -> int:
        # two 64-bit words per state plus the table itself
        return sys.getsizeof(self._table) + 16 * len(self._table)


# ---------------------------------------------------------------------------
# partitioned stores (distributed-SPIN ownership)
# ---------------------------------------------------------------------------

#: front-filter size per spilled partition: 2 MiB = 2^24 one-bit buckets.
#: Only allocated once a partition has actually spilled; before that the
#: hot dict alone answers membership.
_FILTER_BYTES = 1 << 21
_FILTER_MASK = (_FILTER_BYTES * 8) - 1


class PartitionedFingerprintStore:
    """Hash compaction sharded by fingerprint range, with a disk tier.

    Each partition owns a contiguous fingerprint range
    (:func:`partition_index`) and keeps a hot ``{fingerprint: check}``
    dict.  With a ``spill_dir``, a partition whose hot tier reaches
    ``spill_threshold`` entries is merged into an mmap-backed sorted
    file (:class:`~repro.check.spill.SpillFile`) and the hot dict starts
    over — bounding resident memory at roughly ``partitions x
    spill_threshold`` entries regardless of how large the explored space
    grows.  A 2 MiB per-partition bit filter (allocated at first spill)
    short-circuits most absent-key probes so cold lookups rarely touch
    the mmap.

    Membership semantics are identical to :class:`FingerprintStore`
    (same double blake2b fingerprints, same detected-collision counting,
    same ``bits`` truncation hook for tests), so swapping one for the
    other cannot change exploration counts.  ``partitions=1`` is the
    worker-side configuration of the owner-computes driver: one process,
    one owned range.
    """

    supports_traces = False

    def __init__(self, partitions: int, *, bits: int = 64,
                 spill_dir: Optional[Union[str, Path]] = None,
                 spill_threshold: int = 1 << 20) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if not 1 <= bits <= 64:
            raise ValueError(f"fingerprint bits must be in 1..64, got {bits}")
        if spill_threshold < 1:
            raise ValueError(
                f"spill threshold must be >= 1, got {spill_threshold}")
        self.name = "fingerprint"
        self.partitions = partitions
        self.collisions = 0
        self._mask = (1 << bits) - 1
        self._hot: list[dict[int, int]] = [{} for _ in range(partitions)]
        self._spill: list[Optional[SpillFile]] = [None] * partitions
        self._filters: list[Optional[bytearray]] = [None] * partitions
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._threshold = spill_threshold
        self._len = 0
        self._probes = [0] * partitions
        self._partition_collisions = [0] * partitions
        self._merges = [0] * partitions
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)

    def _locate(self, state: Hashable) -> tuple[int, int, int]:
        """(partition, masked fingerprint key, check hash) of ``state``.

        Routing uses the *untruncated* primary fingerprint so the
        ``bits`` test hook cannot collapse every key into partition 0.
        """
        digest = blake2b(_encode(state), digest_size=16).digest()
        fp = int.from_bytes(digest[:8], "big")
        return (partition_index(fp, self.partitions), fp & self._mask,
                int.from_bytes(digest[8:], "big"))

    def _lookup(self, p: int, key: int) -> Optional[int]:
        """Check hash stored under ``key`` in partition ``p``, else None."""
        flt = self._filters[p]
        if flt is not None:
            idx = key & _FILTER_MASK
            if not (flt[idx >> 3] >> (idx & 7)) & 1:
                return None  # filter covers hot+spill: definitely absent
        current = self._hot[p].get(key)
        if current is None:
            spill = self._spill[p]
            if spill is not None:
                return spill.lookup(key)
        return current

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        p, key, check = self._locate(state)
        self._probes[p] += 1
        current = self._lookup(p, key)
        if current is not None:
            if current != check:
                self.collisions += 1
                self._partition_collisions[p] += 1
            return False
        hot = self._hot[p]
        hot[key] = check
        flt = self._filters[p]
        if flt is not None:
            idx = key & _FILTER_MASK
            flt[idx >> 3] |= 1 << (idx & 7)
        self._len += 1
        if self._spill_dir is not None and len(hot) >= self._threshold:
            self._merge(p)
        return True

    def probe(self, state: Hashable) -> tuple[int, bool]:
        """(membership key, already present?) — no mutation, no collision
        accounting.  The owner-computes driver's admission *simulation*
        uses this to predict what :meth:`add` will decide without
        perturbing the store or its statistics."""
        p, key, _check = self._locate(state)
        return key, self._lookup(p, key) is not None

    def _merge(self, p: int) -> None:
        assert self._spill_dir is not None
        spill = self._spill[p]
        if spill is None:
            spill = self._spill[p] = SpillFile(
                self._spill_dir / f"partition-{p:04d}.spill")
        flt = self._filters[p]
        if flt is None:
            flt = self._filters[p] = bytearray(_FILTER_BYTES)
            # Seed from any pre-existing spill records; the hot tier is
            # folded in below, so the filter covers the whole partition.
            for key in spill.fingerprints():
                idx = key & _FILTER_MASK
                flt[idx >> 3] |= 1 << (idx & 7)
        hot = self._hot[p]
        for key in hot:
            idx = key & _FILTER_MASK
            flt[idx >> 3] |= 1 << (idx & 7)
        spill.merge(hot)
        hot.clear()
        self._merges[p] += 1

    def __len__(self) -> int:
        return self._len

    def __contains__(self, state: Hashable) -> bool:
        p, key, _check = self._locate(state)
        return self._lookup(p, key) is not None

    def parent_of(self, state: Hashable) -> ParentEntry:
        raise KeyError(
            "fingerprint stores keep no states, so no parent pointers")

    def approx_bytes(self) -> int:
        """Resident bytes: hot dicts + bit filters.  Spilled records live
        on disk (see :meth:`spill_bytes`) and page cache the OS may drop,
        so they deliberately do not count against ``--memory-limit``."""
        total = 0
        for p in range(self.partitions):
            total += sys.getsizeof(self._hot[p]) + 16 * len(self._hot[p])
            flt = self._filters[p]
            if flt is not None:
                total += sys.getsizeof(flt)
        return total

    def spill_bytes(self) -> int:
        """Total on-disk bytes across all partition spill files."""
        return sum(spill.spill_bytes for spill in self._spill
                   if spill is not None)

    def partition_rows(self) -> list[dict[str, object]]:
        """Per-partition statistics rows for ``repro.profile/4``."""
        rows: list[dict[str, object]] = []
        for p in range(self.partitions):
            spill = self._spill[p]
            flt = self._filters[p]
            owned = len(self._hot[p]) + (len(spill) if spill is not None
                                         else 0)
            probes = self._probes[p]
            approx = sys.getsizeof(self._hot[p]) + 16 * len(self._hot[p])
            if flt is not None:
                approx += sys.getsizeof(flt)
            rows.append({
                "partition": p,
                "owned": owned,
                "probes": probes,
                "collisions": self._partition_collisions[p],
                "approx_bytes": approx,
                "spill_bytes": spill.spill_bytes if spill is not None else 0,
                "spill_merges": self._merges[p],
                "dedup_ratio": (round(1.0 - owned / probes, 4)
                                if probes else 0.0),
            })
        return rows

    def close(self) -> None:
        for spill in self._spill:
            if spill is not None:
                spill.close()


#: sys.getsizeof(b"") — fixed CPython bytes-object header cost, charged
#: per stored key on top of the payload bytes.
_BYTES_HEADER = sys.getsizeof(b"")


class PartitionedExactStore:
    """Exact membership via state-delta-compressed canonical blobs.

    The classic :class:`ExactStore` keeps every state *object* (plus its
    memo caches) alive for the whole run — hundreds of bytes per state —
    because parent pointers reference the objects directly.  This store
    keeps none of them.  Each state is reduced to its canonical byte
    encoding, deflate-compressed against a shared dictionary — the
    *initial state's* encoding, which every reachable state is a small
    delta of, so compression strips exactly the shared structure — and
    the compressed blob keys a per-partition dict mapping to a dense
    global id.  Provenance is two parallel ``array('q')`` columns
    (parent id, interned action id): 16 bytes per state.

    Traces survive: :meth:`action_trace` walks the id columns back to
    the root and returns the action sequence, which the explorer replays
    through the live system to rematerialize the state path.  Equality
    of canonical encodings coincides with state equality (the encoding
    is injective — the same property the fingerprint store's soundness
    rests on), so counts are byte-identical to :class:`ExactStore`.
    """

    supports_traces = True
    collisions = 0

    def __init__(self, partitions: int = 1, *, compress: bool = True) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.name = "exact"
        self.partitions = partitions
        self._compress = compress
        self._ids: list[dict[bytes, int]] = [{} for _ in range(partitions)]
        self._parents = array("q")
        self._steps = array("q")
        self._actions: list[Any] = []
        self._action_ids: dict[Any, int] = {}
        self._zdict: Optional[bytes] = None
        self._len = 0
        self._raw_bytes = 0
        self._key_bytes = [0] * partitions
        self._probes = [0] * partitions
        self._memo_state: Any = None
        self._memo_gid = -1

    def _key_for(self, blob: bytes) -> bytes:
        """The storage key of canonical encoding ``blob``.

        The dictionary blob itself (and everything before a dictionary
        exists) stays raw under a ``r`` tag; every other blob is raw
        deflate against the dictionary under a ``z`` tag.  Both maps are
        injective and the tags keep them disjoint, so key equality is
        blob equality.
        """
        zd = self._zdict
        if not self._compress or zd is None or blob == zd:
            return b"r" + blob
        co = zlib.compressobj(1, zlib.DEFLATED, -15, zdict=zd)
        return b"z" + co.compress(blob) + co.flush()

    def _locate(self, state: Hashable) -> tuple[int, bytes]:
        blob = _encode(state)
        fp = int.from_bytes(blake2b(blob, digest_size=8).digest(), "big")
        return partition_index(fp, self.partitions), blob

    def add(self, state: Hashable, parent: ParentEntry = None) -> bool:
        p, blob = self._locate(state)
        self._probes[p] += 1
        if self._zdict is None and self._compress:
            self._zdict = blob  # first state seeds the delta dictionary
        key = self._key_for(blob)
        ids = self._ids[p]
        if key in ids:
            return False
        gid = self._len
        ids[key] = gid
        self._len += 1
        self._raw_bytes += len(blob)
        self._key_bytes[p] += len(key)
        parent_gid = step = -1
        if parent is not None:
            parent_state, action = parent
            parent_gid = self._gid_of(parent_state)
            cached = self._action_ids.get(action)
            if cached is None:
                cached = len(self._actions)
                self._action_ids[action] = cached
                self._actions.append(action)
            step = cached
        self._parents.append(parent_gid)
        self._steps.append(step)
        self._memo_state = state
        self._memo_gid = gid
        return True

    def _gid_of(self, state: Any) -> int:
        # The explorer expands one source state at a time, so the parent
        # of consecutive adds is almost always the same object — memoize
        # by identity and pay the encode+compress lookup once per source.
        if state is self._memo_state:
            return self._memo_gid
        p, blob = self._locate(state)
        gid = self._ids[p].get(self._key_for(blob))
        if gid is None:
            raise KeyError("parent state is not in the store")
        self._memo_state = state
        self._memo_gid = gid
        return gid

    def probe(self, state: Hashable) -> tuple[bytes, bool]:
        """(membership key, already present?) — no mutation; the
        owner-computes driver's admission simulation."""
        p, blob = self._locate(state)
        key = self._key_for(blob)
        return key, key in self._ids[p]

    def __len__(self) -> int:
        return self._len

    def __contains__(self, state: Hashable) -> bool:
        p, blob = self._locate(state)
        return self._key_for(blob) in self._ids[p]

    def parent_of(self, state: Hashable) -> ParentEntry:
        raise KeyError(
            "delta-compressed exact stores keep canonical keys, not state "
            "objects; rebuild traces with action_trace()")

    def action_trace(self, state: Hashable) -> list[Any]:
        """Actions from the initial state to ``state`` (shortest path).

        The state sequence is *not* stored; callers replay the actions
        through the live system (transitions are deterministic per
        action label) to rebuild it.
        """
        p, blob = self._locate(state)
        gid = self._ids[p].get(self._key_for(blob))
        if gid is None:
            raise KeyError("state is not in the store")
        steps: list[Any] = []
        while True:
            parent_gid = self._parents[gid]
            if parent_gid < 0:
                break
            steps.append(self._actions[self._steps[gid]])
            gid = parent_gid
        steps.reverse()
        return steps

    def approx_bytes(self) -> int:
        total = sum(sys.getsizeof(ids) for ids in self._ids)
        total += sum(self._key_bytes) + self._len * _BYTES_HEADER
        total += (self._parents.itemsize * len(self._parents)
                  + self._steps.itemsize * len(self._steps))
        total += (sys.getsizeof(self._actions)
                  + sys.getsizeof(self._action_ids))
        return total

    def spill_bytes(self) -> int:
        return 0  # nothing spills: compressed keys stay resident

    def compression_ratio(self) -> float:
        """raw canonical bytes / stored key bytes (>= 1 when winning)."""
        stored = sum(self._key_bytes)
        return self._raw_bytes / stored if stored else 1.0

    def partition_rows(self) -> list[dict[str, object]]:
        """Per-partition statistics rows for ``repro.profile/4``."""
        rows: list[dict[str, object]] = []
        for p in range(self.partitions):
            owned = len(self._ids[p])
            probes = self._probes[p]
            approx = (sys.getsizeof(self._ids[p]) + self._key_bytes[p]
                      + owned * (_BYTES_HEADER + 16))
            rows.append({
                "partition": p,
                "owned": owned,
                "probes": probes,
                "collisions": 0,
                "approx_bytes": approx,
                "spill_bytes": 0,
                "spill_merges": 0,
                "dedup_ratio": (round(1.0 - owned / probes, 4)
                                if probes else 0.0),
            })
        return rows


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

STORE_NAMES = ("exact", "fingerprint")

#: What callers may pass for a ``store=`` argument: a kind name or a
#: ready-made store instance (for tests injecting e.g. truncated-bit
#: fingerprint stores).
StoreSpec = Union[str, StateStore]


def make_store(spec: StoreSpec = "exact") -> StateStore:
    """Resolve a ``store=`` argument to a fresh (or given) store."""
    if isinstance(spec, str):
        if spec == "exact":
            return ExactStore()
        if spec == "fingerprint":
            return FingerprintStore()
        raise ValueError(f"unknown store {spec!r}; "
                         f"choose from {', '.join(STORE_NAMES)}")
    return spec


def make_partitioned_store(
    kind: str,
    partitions: int,
    *,
    spill_dir: Optional[Union[str, Path]] = None,
    spill_threshold: int = 1 << 20,
    bits: int = 64,
) -> StateStore:
    """A partitioned store of the given kind (``exact``/``fingerprint``).

    The in-process flavour of sharding: one store object, ``partitions``
    internal ranges, usable with any driver via ``store=``.  The
    multi-process flavour (one partition per worker process) is
    :func:`repro.check.partitioned.explore_partitioned`.
    """
    if kind == "exact":
        if spill_dir is not None:
            raise ValueError(
                "spill_dir applies to the fingerprint store; the "
                "delta-compressed exact store keeps its keys resident")
        return PartitionedExactStore(partitions)
    if kind == "fingerprint":
        return PartitionedFingerprintStore(
            partitions, bits=bits, spill_dir=spill_dir,
            spill_threshold=spill_threshold)
    raise ValueError(f"unknown store {kind!r}; "
                     f"choose from {', '.join(STORE_NAMES)}")
