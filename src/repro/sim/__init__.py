"""Discrete-event DSM simulator substrate (timed execution of refined protocols)."""

from .engine import Simulator
from .metrics import SimMetrics, jain_index
from .oracle import CoherenceOracle, StarvationOracle
from .pool import PoolReport, simulate_pool
from .trace import TraceEvent, derive_message_events
from .policy import (
    AccessClass,
    GatedOption,
    INVALIDATE_WORKLOAD,
    MIGRATORY_RW_WORKLOAD,
    MIGRATORY_WORKLOAD,
    MSI_WORKLOAD,
    WorkloadSpec,
    workload_spec_for,
)
from .workload import HotLineWorkload, SyntheticWorkload, TraceWorkload

__all__ = [
    "AccessClass",
    "CoherenceOracle",
    "StarvationOracle",
    "PoolReport",
    "simulate_pool",
    "TraceEvent",
    "derive_message_events",
    "GatedOption",
    "HotLineWorkload",
    "INVALIDATE_WORKLOAD",
    "MIGRATORY_RW_WORKLOAD",
    "MIGRATORY_WORKLOAD",
    "MSI_WORKLOAD",
    "SimMetrics",
    "Simulator",
    "SyntheticWorkload",
    "TraceWorkload",
    "WorkloadSpec",
    "jain_index",
    "workload_spec_for",
]
