"""Workload gating: which protocol transitions the *CPU* decides.

A refined protocol's remote node mixes two kinds of autonomy:

* **protocol-internal** steps (processing a buffered request, sending the
  LR after an eviction decision, retransmitting after a nack) — these fire
  as fast as the node can process them;
* **workload** decisions (the CPU wants to read/write the line, the cache
  decides to evict, the CPU performs a store) — the paper draws these as
  tau arcs like ``rw`` and ``evict`` (Figure 3) and they happen when the
  *application* says so.

The discrete-event simulator needs to know which is which: a
:class:`WorkloadSpec` classifies the *gated* transitions of a protocol's
remote template by ``(state, action kind, label)``, mapping each to a
semantic :class:`AccessClass` the workload generator understands.  Gated
transitions wait for the workload; everything else executes eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = [
    "AccessClass",
    "GatedOption",
    "WorkloadSpec",
    "MIGRATORY_WORKLOAD",
    "MIGRATORY_RW_WORKLOAD",
    "INVALIDATE_WORKLOAD",
    "MSI_WORKLOAD",
    "MESI_WORKLOAD_SPEC",
    "workload_spec_for",
]


class AccessClass:
    """Semantic classes of workload-gated transitions."""

    ACQUIRE = "acquire"            # request the line (read/write merged)
    ACQUIRE_READ = "acquire_read"
    ACQUIRE_WRITE = "acquire_write"
    UPGRADE = "upgrade"
    EVICT = "evict"
    WRITE = "write"                # a store while holding the line


#: kinds used in gate keys
SEND = "send"
TAU = "tau"


@dataclass(frozen=True)
class GatedOption:
    """One currently-available workload decision for a remote node."""

    remote: int
    kind: str            # SEND or TAU
    state: str           # remote control state offering the option
    label: Optional[str]  # tau label; None for sends
    access_class: str

    def describe(self) -> str:
        what = self.label if self.kind == TAU else "send"
        return f"r{self.remote}@{self.state}:{what} [{self.access_class}]"


@dataclass(frozen=True)
class WorkloadSpec:
    """Classification of a protocol's workload-gated transitions.

    ``gates`` maps ``(state, kind, label)`` — with ``label=None`` for send
    gates — to an :class:`AccessClass` value.  Transitions not in the map
    are protocol-internal and execute eagerly.

    ``acquire_complete_msgs`` names the rendezvous message types whose
    completion ends an acquire transaction, for latency measurement.
    """

    name: str
    gates: Mapping[tuple[str, str, Optional[str]], str]
    acquire_complete_msgs: frozenset[str] = frozenset()

    def classify(self, state: str, kind: str,
                 label: Optional[str]) -> Optional[str]:
        return self.gates.get((state, kind, label))


MIGRATORY_WORKLOAD = WorkloadSpec(
    name="migratory",
    gates={
        ("I", SEND, None): AccessClass.ACQUIRE,
        ("V", TAU, "evict"): AccessClass.EVICT,
        ("V", TAU, "write"): AccessClass.WRITE,
    },
    acquire_complete_msgs=frozenset({"gr"}),
)

MIGRATORY_RW_WORKLOAD = WorkloadSpec(
    name="migratory-rw",
    gates={
        ("I", TAU, "rw"): AccessClass.ACQUIRE,
        ("V", TAU, "evict"): AccessClass.EVICT,
        ("V", TAU, "write"): AccessClass.WRITE,
    },
    acquire_complete_msgs=frozenset({"gr"}),
)

INVALIDATE_WORKLOAD = WorkloadSpec(
    name="invalidate",
    gates={
        ("I", TAU, "wantR"): AccessClass.ACQUIRE_READ,
        ("I", TAU, "wantW"): AccessClass.ACQUIRE_WRITE,
        ("S", TAU, "evict"): AccessClass.EVICT,
        ("M", TAU, "evict"): AccessClass.EVICT,
        ("M", TAU, "write"): AccessClass.WRITE,
    },
    acquire_complete_msgs=frozenset({"grR", "grW"}),
)

MESI_WORKLOAD_SPEC = WorkloadSpec(
    name="mesi",
    gates={
        ("I", TAU, "wantR"): AccessClass.ACQUIRE_READ,
        ("I", TAU, "wantW"): AccessClass.ACQUIRE_WRITE,
        ("E", TAU, "write"): AccessClass.WRITE,
        ("E", TAU, "evict"): AccessClass.EVICT,
        ("M", TAU, "evict"): AccessClass.EVICT,
        ("M", TAU, "write"): AccessClass.WRITE,
        ("S", TAU, "evict"): AccessClass.EVICT,
    },
    acquire_complete_msgs=frozenset({"grE", "grS", "grM"}),
)

MSI_WORKLOAD = WorkloadSpec(
    name="msi",
    gates={
        ("I", TAU, "wantR"): AccessClass.ACQUIRE_READ,
        ("I", TAU, "wantW"): AccessClass.ACQUIRE_WRITE,
        ("S", TAU, "evict"): AccessClass.EVICT,
        ("S", TAU, "wantUp"): AccessClass.UPGRADE,
        ("M", TAU, "evict"): AccessClass.EVICT,
        ("M", TAU, "write"): AccessClass.WRITE,
    },
    acquire_complete_msgs=frozenset({"grR", "grW", "grU", "upfail"}),
)

_BY_PROTOCOL = {
    "mesi": MESI_WORKLOAD_SPEC,
    "migratory": MIGRATORY_WORKLOAD,
    "invalidate": INVALIDATE_WORKLOAD,
    "msi": MSI_WORKLOAD,
}


def workload_spec_for(protocol_name: str,
                      explicit_rw: bool = False) -> WorkloadSpec:
    """Built-in spec for a library protocol, by protocol name."""
    if protocol_name == "migratory" and explicit_rw:
        return MIGRATORY_RW_WORKLOAD
    try:
        return _BY_PROTOCOL[protocol_name]
    except KeyError:
        raise KeyError(
            f"no built-in workload spec for protocol {protocol_name!r}; "
            "construct a WorkloadSpec describing its gated transitions"
        ) from None
