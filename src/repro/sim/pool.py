"""Multi-line buffer-pool study (paper section 6).

A DSM node is home to many lines ("if each node of the multiprocessor acts
as home for 1024 lines ... the node needs to reserve a total of 64K
messages to be used as buffer space.  Clearly, it is impractical...").  The
paper's remedy is a *shared pool* sized by the CPU's outstanding-transaction
limit rather than per-line worst cases.

This module quantifies the statistical multiplexing that makes the shared
pool work: it simulates ``n_lines`` independent instances of a refined
protocol (one home state machine per line, as the paper prescribes —
"home for different cache lines can be different"), aligns their
home-buffer occupancy traces on a common time grid, and reports the
aggregate demand curve.  The headline ratio is

    naive provisioning (n_lines x k)  /  observed peak aggregate demand

which is what a shared pool can bank on.  The test-suite and benchmark
check the section 6 shape: the peak aggregate demand is far below naive
provisioning and in the vicinity of the paper's shared-pool sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..refine.plan import RefinedProtocol
from .engine import Simulator
from .metrics import SimMetrics

__all__ = ["PoolReport", "simulate_pool"]


@dataclass
class PoolReport:
    """Aggregate home-buffer demand across many simulated lines.

    Demand is tracked as an exact step function: per line, the buffer
    occupancy between consecutive simulator events; aggregated by a sweep
    over all lines' change points.  ``peak_demand`` is therefore the true
    instantaneous maximum a shared pool would have had to serve.
    """

    n_lines: int
    n_remotes: int
    per_line_capacity: int
    #: instantaneous peak of the summed occupancy step function
    peak_demand: int
    #: time-weighted mean of the summed occupancy
    mean_demand: float
    #: per-line peak occupancy
    line_peaks: list[int]
    per_line_metrics: list[SimMetrics] = field(repr=False,
                                               default_factory=list)

    @property
    def naive_capacity(self) -> int:
        """Per-line worst-case provisioning: n_lines * k."""
        return self.n_lines * self.per_line_capacity

    @property
    def multiplexing_ratio(self) -> float:
        """How much a shared pool saves vs naive provisioning."""
        return (self.naive_capacity / self.peak_demand
                if self.peak_demand else float("inf"))

    def describe(self) -> str:
        return (
            f"{self.n_lines} lines x k={self.per_line_capacity} "
            f"({self.n_remotes} remotes each): naive capacity "
            f"{self.naive_capacity} slots; observed aggregate demand "
            f"peak={self.peak_demand}, mean={self.mean_demand:.2f} "
            f"-> a shared pool can be {self.multiplexing_ratio:.0f}x "
            "smaller than per-line buffers")


def simulate_pool(
    refined: RefinedProtocol,
    n_remotes: int,
    n_lines: int,
    workload_factory: Callable[[int], object],
    *,
    until: float = 20_000.0,
    seed: int = 0,
    spec=None,
) -> PoolReport:
    """Run ``n_lines`` independent protocol instances and aggregate demand.

    :param workload_factory: called with the line index, returns that
        line's workload generator (vary the seed per line!).
    """
    capacity = refined.plan.config.home_buffer_capacity
    line_peaks: list[int] = []
    metrics_list: list[SimMetrics] = []
    #: (time, delta) change events of the aggregate step function
    events: list[tuple[float, int]] = []

    for line in range(n_lines):
        simulator = Simulator(refined, n_remotes, workload_factory(line),
                              seed=seed + 7919 * line, spec=spec)
        metrics = simulator.run(until=until)
        metrics_list.append(metrics)

        level = 0
        peak = 0
        for t, solid, notes in sorted(metrics.buffer_samples):
            new_level = solid + notes
            if new_level != level:
                events.append((t, new_level - level))
                level = new_level
                peak = max(peak, level)
        if level:  # close the step function at the horizon
            events.append((until, -level))
        line_peaks.append(peak)

    events.sort()
    total = 0
    peak_demand = 0
    weighted = 0.0
    last_time = 0.0
    for t, delta in events:
        weighted += total * (t - last_time)
        last_time = t
        total += delta
        peak_demand = max(peak_demand, total)
    weighted += total * max(0.0, until - last_time)
    mean_demand = weighted / until if until > 0 else 0.0

    return PoolReport(
        n_lines=n_lines,
        n_remotes=n_remotes,
        per_line_capacity=capacity,
        peak_demand=peak_demand,
        mean_demand=mean_demand,
        line_peaks=line_peaks,
        per_line_metrics=metrics_list,
    )
