"""Workload generators driving the DSM simulator.

A workload decides *when* and *which* gated transition each remote node
takes (see :mod:`repro.sim.policy`).  The interface is a single method::

    choose(now, option_groups) -> (delay, option) | None

called whenever a remote arrives at a state offering gated options;
returning ``None`` means the node stays passive until the protocol moves it
(e.g. an invalidation arrives).

Three generators cover the benchmark suite:

* :class:`SyntheticWorkload` — Poisson think/hold times with a read/write
  mix; the general-purpose model (the migratory pattern of the paper's
  motivating DSM applications corresponds to a write-heavy mix).
* :class:`HotLineWorkload` — every node wants the line all the time; the
  adversarial contention pattern used for fairness/starvation studies
  (paper section 6).
* :class:`TraceWorkload` — a fixed schedule, for deterministic tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import random

from .policy import AccessClass, GatedOption

__all__ = ["SyntheticWorkload", "HotLineWorkload", "TraceWorkload"]

Choice = Optional[tuple[float, GatedOption]]

_ACQUIRES = (AccessClass.ACQUIRE, AccessClass.ACQUIRE_READ,
             AccessClass.ACQUIRE_WRITE, AccessClass.UPGRADE)


def _pick_acquire(options: Sequence[GatedOption], want_write: bool,
                  allow_upgrade: bool = True) -> Optional[GatedOption]:
    """Choose an acquire-class option honouring the read/write intent."""
    preferred = (AccessClass.ACQUIRE_WRITE if want_write
                 else AccessClass.ACQUIRE_READ)
    for target in (preferred, AccessClass.ACQUIRE):
        for option in options:
            if option.access_class == target:
                return option
    if allow_upgrade and want_write:
        for option in options:
            if option.access_class == AccessClass.UPGRADE:
                return option
    return None


@dataclass
class SyntheticWorkload:
    """Poisson-arrival accesses with exponential hold times.

    :param seed: RNG seed (the generator is deterministic given it).
    :param think_time: mean delay before an idle CPU's next access.
    :param hold_time: mean time a node keeps the line before evicting.
    :param write_fraction: probability an access wants write permission.
    :param upgrade_fraction: when already sharing, probability a write
        intent becomes an upgrade rather than an evict-and-refetch.
    """

    seed: int = 0
    think_time: float = 50.0
    hold_time: float = 20.0
    write_fraction: float = 0.5
    upgrade_fraction: float = 0.5
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, now: float, options: Sequence[GatedOption]) -> Choice:
        acquire = [o for o in options if o.access_class in _ACQUIRES]
        evicts = [o for o in options if o.access_class == AccessClass.EVICT]
        if acquire:
            want_write = self._rng.random() < self.write_fraction
            upgrades = [o for o in acquire
                        if o.access_class == AccessClass.UPGRADE]
            if upgrades and want_write and \
                    self._rng.random() < self.upgrade_fraction:
                return (self._rng.expovariate(1 / self.hold_time),
                        upgrades[0])
            picked = _pick_acquire(acquire, want_write,
                                   allow_upgrade=False)
            if picked is not None:
                return (self._rng.expovariate(1 / self.think_time), picked)
        if evicts:
            return (self._rng.expovariate(1 / self.hold_time), evicts[0])
        return None


@dataclass
class HotLineWorkload:
    """Every node re-requests immediately; nobody volunteers an eviction.

    This is the contention pattern where nacks, retries and starvation show
    up (paper section 6): the line is torn between all nodes, and any
    sharing happens only through the protocol's own revocations.
    """

    seed: int = 0
    reissue_delay: float = 1.0
    write_fraction: float = 1.0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, now: float, options: Sequence[GatedOption]) -> Choice:
        want_write = self._rng.random() < self.write_fraction
        picked = _pick_acquire(options, want_write)
        if picked is None:
            return None  # never evict voluntarily
        return (self._rng.expovariate(1 / self.reissue_delay), picked)


@dataclass
class TraceWorkload:
    """Deterministic schedule: ``(time, remote, access_class)`` entries.

    Each entry fires the matching gated option of that remote at (or as
    soon after as the option exists) the given time.  Used by tests that
    need exact scenarios.
    """

    entries: Sequence[tuple[float, int, str]]
    _cursor: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        ordered: dict[int, list[tuple[float, str]]] = {}
        for when, remote, access_class in sorted(self.entries):
            ordered.setdefault(remote, []).append((when, access_class))
        self._per_remote = ordered
        self._cursor = dict.fromkeys(ordered, 0)

    def choose(self, now: float, options: Sequence[GatedOption]) -> Choice:
        if not options:
            return None
        remote = options[0].remote
        queue = self._per_remote.get(remote, [])
        cursor = self._cursor.get(remote, 0)
        if cursor >= len(queue):
            return None
        when, access_class = queue[cursor]
        for option in options:
            if option.access_class == access_class:
                self._cursor[remote] = cursor + 1
                return (max(0.0, when - now), option)
        return None
