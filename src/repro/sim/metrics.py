"""Measurement layer for simulation runs.

The paper's quality criteria for a refined protocol (section 1):

1. "the number of request, acknowledge, and negative acknowledge (nack)
   messages needed for carrying out the rendezvous specified in the given
   specification" — captured here as message counts by kind and by
   rendezvous type, and as the messages-per-completed-rendezvous ratio;
2. "the buffering requirements to guarantee a ... progress criterion" —
   captured as the home-buffer occupancy profile (requests and
   fire-and-forget notes separately).

Fairness/starvation measurements (paper section 6) come as per-node
completion counts, Jain's fairness index, and the longest stretch any node
waited between completions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SimMetrics", "jain_index"]


def jain_index(values: list[int] | list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one node hogs."""
    if not values:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


@dataclass
class SimMetrics:
    """Accumulated observables of one simulation run."""

    n_remotes: int
    #: messages injected into the network, by Msg.kind
    messages_by_kind: Counter = field(default_factory=Counter)
    #: REQ/REPL/NOTE messages by rendezvous message type
    messages_by_type: Counter = field(default_factory=Counter)
    #: completed rendezvous by message type
    completions_by_type: Counter = field(default_factory=Counter)
    #: completed rendezvous per remote node
    completions_by_remote: Counter = field(default_factory=Counter)
    #: acquire-to-completion latencies (simulated time units)
    acquire_latencies: list[float] = field(default_factory=list)
    #: (time, solid_entries, note_entries) samples of the home buffer
    buffer_samples: list[tuple[float, int, int]] = field(default_factory=list)
    #: per-remote time of last completion (for starvation analysis)
    last_completion_at: dict[int, float] = field(default_factory=dict)
    #: longest observed gap between completions, per remote
    longest_wait: dict[int, float] = field(default_factory=dict)
    end_time: float = 0.0

    # -- recording (called by the engine) ------------------------------------

    def record_sends(self, now: float, msgs) -> None:
        for msg in msgs:
            self.messages_by_kind[msg.kind] += 1
            if msg.msg is not None:
                self.messages_by_type[msg.msg] += 1

    def record_completions(self, now: float, completes) -> None:
        for rendezvous in completes:
            self.completions_by_type[rendezvous.msg] += 1
            remote = rendezvous.remote
            previous = self.last_completion_at.get(remote, 0.0)
            gap = now - previous
            if gap > self.longest_wait.get(remote, 0.0):
                self.longest_wait[remote] = gap
            self.last_completion_at[remote] = now
            self.completions_by_remote[remote] += 1

    def record_buffer(self, now: float, buffer) -> None:
        solid = sum(1 for e in buffer if not e.note)
        notes = len(buffer) - solid
        self.buffer_samples.append((now, solid, notes))

    def record_latency(self, latency: float) -> None:
        self.acquire_latencies.append(latency)

    # -- derived quantities ----------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    @property
    def total_completions(self) -> int:
        return sum(self.completions_by_type.values())

    @property
    def messages_per_rendezvous(self) -> float:
        """Paper quality criterion 1 (lower is better; 2.0 is the fused
        optimum, 4.0 the plain request/ack figure for a req/repl pair)."""
        if self.total_completions == 0:
            return float("inf")
        return self.total_messages / self.total_completions

    @property
    def nack_rate(self) -> float:
        if self.total_messages == 0:
            return 0.0
        return self.messages_by_kind.get("NACK", 0) / self.total_messages

    @property
    def fairness(self) -> float:
        counts = [self.completions_by_remote.get(i, 0)
                  for i in range(self.n_remotes)]
        return jain_index(counts)

    @property
    def starved_remotes(self) -> list[int]:
        """Remotes that completed nothing during the whole run."""
        return [i for i in range(self.n_remotes)
                if self.completions_by_remote.get(i, 0) == 0]

    @property
    def max_buffer_occupancy(self) -> tuple[int, int]:
        """(max solid entries, max note entries) ever observed."""
        if not self.buffer_samples:
            return (0, 0)
        return (max(s for _t, s, _n in self.buffer_samples),
                max(n for _t, _s, n in self.buffer_samples))

    def latency_percentiles(self,
                            qs=(50, 90, 99)) -> Optional[dict[int, float]]:
        if not self.acquire_latencies:
            return None
        ordered = sorted(self.acquire_latencies)
        out = {}
        for q in qs:
            index = min(len(ordered) - 1,
                        max(0, round(q / 100 * (len(ordered) - 1))))
            out[q] = ordered[index]
        return out

    def describe(self) -> str:
        kinds = ", ".join(f"{k}:{v}" for k, v in
                          sorted(self.messages_by_kind.items()))
        lines = [
            f"simulated {self.end_time:.0f} time units, "
            f"{self.total_completions} rendezvous completed",
            f"  messages: {self.total_messages} ({kinds})",
            f"  messages/rendezvous: {self.messages_per_rendezvous:.2f}, "
            f"nack rate: {self.nack_rate:.1%}",
            f"  fairness (Jain): {self.fairness:.3f}; "
            f"starved: {self.starved_remotes or 'none'}",
            f"  home buffer peak: solid={self.max_buffer_occupancy[0]} "
            f"notes={self.max_buffer_occupancy[1]}",
        ]
        percentiles = self.latency_percentiles()
        if percentiles:
            rendered = ", ".join(f"p{q}={v:.1f}"
                                 for q, v in percentiles.items())
            lines.append(f"  acquire latency: {rendered}")
        return "\n".join(lines)
