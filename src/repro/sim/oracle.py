"""Runtime oracles: check trace-level correctness during simulation.

Model checking verifies all interleavings of the *abstract* protocol; the
oracles double-check the *concrete timed runs* the simulator produces, the
way a hardware validation testbench would.  They subscribe to completed
rendezvous (with payloads) and raise
:class:`~repro.errors.SimulationError` on the first violation.

:class:`CoherenceOracle` — value-chain integrity for ownership-style
protocols run with a real data domain (``data_values=...``): the value any
grant hands out must be exactly the value most recently relinquished to
the home (or the initial value).  A lost update, a stale grant, or a
reordered relinquish all break the chain.

:class:`StarvationOracle` — flags any remote that goes longer than a
threshold without completing a rendezvous while the system as a whole is
making progress (the paper's section 6 concern, as a runtime alarm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..csp.env import Value
from ..errors import SimulationError
from ..semantics.rendezvous import RendezvousStep

__all__ = ["CoherenceOracle", "StarvationOracle"]


@dataclass
class CoherenceOracle:
    """Check the grant/relinquish value chain of a data-carrying run.

    :param grant_msgs: rendezvous types that hand the line's value out.
    :param relinquish_msgs: rendezvous types that return it (with
        modifications) to the home.
    :param initial: the line's initial value.
    """

    grant_msgs: frozenset[str] = frozenset({"gr", "grR", "grW"})
    relinquish_msgs: frozenset[str] = frozenset({"LR", "ID"})
    initial: Value = 0
    #: number of grants/relinquishes checked (for test introspection)
    n_checked: int = 0
    _value: Value = field(init=False)

    def __post_init__(self) -> None:
        self._value = self.initial

    def observe(self, now: float, rendezvous: RendezvousStep) -> None:
        if rendezvous.msg in self.relinquish_msgs:
            self._value = rendezvous.payload
            self.n_checked += 1
        elif rendezvous.msg in self.grant_msgs:
            self.n_checked += 1
            if rendezvous.payload != self._value:
                raise SimulationError(
                    f"coherence violation at t={now:.1f}: grant "
                    f"{rendezvous.msg!r} carries {rendezvous.payload!r} but "
                    f"the line's value is {self._value!r} — a relinquished "
                    "update was lost or a stale copy was handed out")


@dataclass
class StarvationOracle:
    """Alarm when one node stalls while the system progresses.

    ``threshold`` is how many *system-wide* completions may pass without a
    given (active) remote completing anything before the alarm trips.  A
    remote only counts as active once it has completed at least one
    rendezvous (nodes that never participate are the workload's business).
    """

    n_remotes: int
    threshold: int = 500
    _since: dict[int, int] = field(default_factory=dict)

    def observe(self, now: float, rendezvous: RendezvousStep) -> None:
        winner = rendezvous.remote
        self._since[winner] = 0
        for remote, stalled in list(self._since.items()):
            if remote == winner:
                continue
            self._since[remote] = stalled + 1
            if self._since[remote] > self.threshold:
                raise SimulationError(
                    f"starvation alarm at t={now:.1f}: r{remote} completed "
                    f"nothing in the last {self._since[remote]} system-wide "
                    "rendezvous")
