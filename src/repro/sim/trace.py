"""Simulation trace recording (message-level event log).

When a :class:`~repro.sim.engine.Simulator` is constructed with
``record_trace=True`` it keeps a :class:`TraceEvent` per message movement:

* ``send``    — a message entered a channel (derived from the exact queue
  growth between the pre- and post-states, so source/destination are
  always known);
* ``deliver`` — a channel head was consumed by its destination;
* ``complete`` — a rendezvous finished (with which message type and
  which remote).

Traces feed the :func:`repro.viz.msc.render_msc` message-sequence chart,
the protocol-debugging workflow the paper's designers would have used on
the Avalanche testbed, and they replay deterministically (same seeds,
same trace) so regressions show as trace diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceEvent", "derive_message_events"]


@dataclass(frozen=True)
class TraceEvent:
    """One message-level event of a simulation run.

    ``src``/``dst`` are ``"h"`` or ``"r<i>"``; ``payload`` is carried for
    send/deliver events of payloaded messages.
    """

    time: float
    kind: str            # "send" | "deliver" | "complete"
    src: str
    dst: str
    label: str           # message description or completed rendezvous type
    payload: object = None

    def describe(self) -> str:
        arrow = {"send": "→", "deliver": "⇒", "complete": "✓"}[self.kind]
        return (f"t={self.time:9.2f}  {self.src:>3} {arrow} {self.dst:<3} "
                f"{self.label}")


def _party(channel_index: int) -> tuple[str, str]:
    """(src, dst) names for a channel index (even: h->r, odd: r->h)."""
    remote, to_remote = divmod(channel_index, 2)
    if to_remote == 0:
        return "h", f"r{remote}"
    return f"r{remote}", "h"


def derive_message_events(now: float, before_channels, after_channels,
                          popped: Optional[int] = None) -> list[TraceEvent]:
    """Message events implied by one transition's channel delta.

    ``popped`` is the channel index a delivery consumed from (or ``None``
    for non-delivery steps); any queue growth beyond the pop is a send.
    """
    events: list[TraceEvent] = []
    if popped is not None:
        message = before_channels.queues[popped][0]
        src, dst = _party(popped)
        events.append(TraceEvent(time=now, kind="deliver", src=src, dst=dst,
                                 label=message.describe(),
                                 payload=message.payload))
    for index, (before, after) in enumerate(
            zip(before_channels.queues, after_channels.queues)):
        base = len(before) - (1 if index == popped else 0)
        for message in after[base:]:
            src, dst = _party(index)
            events.append(TraceEvent(time=now, kind="send", src=src,
                                     dst=dst, label=message.describe(),
                                     payload=message.payload))
    return events
