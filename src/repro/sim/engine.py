"""Discrete-event simulator for refined DSM protocols.

Executes an asynchronous protocol on a timed network model:

* **messages** traverse reliable, in-order channels with sampled latency
  (the paper's section 2.2 communication model, plus time);
* **protocol-internal** node steps execute eagerly (zero processing time —
  the protocol logic is microcoded, as the paper envisions);
* **workload-gated** steps (CPU accesses, evictions — see
  :mod:`repro.sim.policy`) fire when the workload generator says so.

The simulator reuses the exact transition core the model checker verifies
(:class:`~repro.semantics.asynchronous.AsyncSystem`), so simulated behaviour
is by construction a timed scheduling of verified behaviour — nondeterminism
is *resolved*, never re-implemented.

Typical use::

    from repro import migratory_protocol, refine
    from repro.sim import Simulator, SyntheticWorkload

    sim = Simulator(refine(migratory_protocol()), n_remotes=8,
                    workload=SyntheticWorkload(seed=1, write_fraction=0.8))
    metrics = sim.run(until=50_000)
    print(metrics.describe())
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Optional

from ..errors import SimulationError
from ..refine.plan import RefinedProtocol
from ..semantics.asynchronous import (
    AsyncState,
    AsyncSystem,
    DeliverToHome,
    DeliverToRemote,
    HomeStep,
    HomeTau,
    RemoteC3,
    RemoteSend,
    RemoteTau,
    Step,
    IDLE,
)
from ..semantics.network import Channels
from .metrics import SimMetrics
from .policy import SEND, TAU, AccessClass, GatedOption, WorkloadSpec, \
    workload_spec_for

__all__ = ["Simulator"]

#: event kinds, in tie-breaking priority order
_DELIVERY = 0
_GATE = 1

_ACQUIRE_CLASSES = frozenset({
    AccessClass.ACQUIRE, AccessClass.ACQUIRE_READ,
    AccessClass.ACQUIRE_WRITE, AccessClass.UPGRADE,
})

#: bound on eager (zero-time) protocol steps between two timed events —
#: a correct protocol quiesces quickly; hitting this means a logic loop
_CASCADE_LIMIT = 10_000


class Simulator:
    """Timed execution of a refined protocol under a workload."""

    def __init__(
        self,
        refined: RefinedProtocol,
        n_remotes: int,
        workload,
        *,
        spec: Optional[WorkloadSpec] = None,
        latency: float = 5.0,
        latency_jitter: float = 2.0,
        seed: int = 0,
        oracles: tuple = (),
        record_trace: bool = False,
    ) -> None:
        self.system = AsyncSystem(refined, n_remotes)
        self.n_remotes = n_remotes
        self.workload = workload
        self.spec = spec or workload_spec_for(refined.protocol.name)
        self.latency = latency
        self.latency_jitter = latency_jitter
        self._rng = random.Random(seed)
        self._seq = itertools.count()

        self.oracles = tuple(oracles)
        self.record_trace = record_trace
        #: message-level event log (see :mod:`repro.sim.trace`)
        self.trace: list = []
        self.state: AsyncState = self.system.initial_state()
        self.now = 0.0
        self.metrics = SimMetrics(n_remotes=n_remotes)

        self._heap: list = []
        n_channels = 2 * n_remotes
        self._scheduled: list[int] = [0] * n_channels
        self._last_delivery_time: list[float] = [0.0] * n_channels
        self._gate_epoch: list[int] = [0] * n_remotes
        self._gate_pending: list[bool] = [False] * n_remotes
        self._outstanding_acquire: dict[int, float] = {}

    # -- main loop -----------------------------------------------------------

    def run(self, until: float, max_events: Optional[int] = None) -> SimMetrics:
        """Simulate until time ``until`` (or the system quiesces)."""
        self._settle()
        events = 0
        while self._heap:
            if max_events is not None and events >= max_events:
                break
            when = self._heap[0][0]
            if when > until:
                self.now = until
                break
            _when, _seq, kind, payload = heapq.heappop(self._heap)
            self.now = when
            events += 1
            if kind == _DELIVERY:
                self._fire_delivery(payload)
            else:
                self._fire_gate(*payload)
            self._settle()
        self.metrics.end_time = self.now
        return self.metrics

    # -- event firing -----------------------------------------------------------

    def _fire_delivery(self, channel: int) -> None:
        self._scheduled[channel] -= 1
        remote, to_remote = divmod(channel, 2)
        wanted = (DeliverToHome(remote=remote) if to_remote
                  else DeliverToRemote(remote=remote))
        for step in self.system.steps(self.state):
            if step.action == wanted:
                self._apply(step)
                return
        raise SimulationError(
            f"scheduled delivery on channel {channel} has no matching "
            f"transition in state {self.state.describe()}")

    def _fire_gate(self, remote: int, epoch: int, kind: str,
                   label: Optional[str]) -> None:
        self._gate_pending[remote] = False
        if epoch != self._gate_epoch[remote]:
            return  # the node moved on; the workload will be re-consulted
        for step in self.system.steps(self.state):
            if self._gate_matches(step, remote, kind, label):
                node_state = self.state.remotes[remote].state
                access = self.spec.classify(node_state, kind, label)
                if access in _ACQUIRE_CLASSES:
                    self._outstanding_acquire.setdefault(remote, self.now)
                self._apply(step)
                return
        # option vanished between scheduling and firing (e.g. an inv
        # arrived); drop silently — _settle reconsults the workload.

    @staticmethod
    def _gate_matches(step: Step, remote: int, kind: str,
                      label: Optional[str]) -> bool:
        action = step.action
        if kind == SEND:
            return isinstance(action, RemoteSend) and action.remote == remote
        return (isinstance(action, RemoteTau) and action.remote == remote
                and action.label == label)

    # -- applying steps and eager settlement ----------------------------------

    def _apply(self, step: Step) -> None:
        before = self.state
        self.state = step.state
        self.metrics.record_sends(self.now, step.sends)
        self.metrics.record_completions(self.now, step.completes)
        self.metrics.record_buffer(self.now, self.state.home.buffer)
        for oracle in self.oracles:
            for rendezvous in step.completes:
                oracle.observe(self.now, rendezvous)
        if self.record_trace:
            self._record_trace(before, step)
        self._track_acquires(step)
        self._bump_epochs(before, self.state)
        self._schedule_new_deliveries()

    def _record_trace(self, before: AsyncState, step: Step) -> None:
        from ..semantics.state import HOME_ID
        from .trace import TraceEvent, derive_message_events

        popped = None
        if isinstance(step.action, DeliverToRemote):
            popped = Channels.to_remote(step.action.remote)
        elif isinstance(step.action, DeliverToHome):
            popped = Channels.to_home(step.action.remote)
        self.trace.extend(derive_message_events(
            self.now, before.channels, step.state.channels, popped))
        for rendezvous in step.completes:
            active = ("h" if rendezvous.active == HOME_ID
                      else f"r{rendezvous.active}")
            passive = ("h" if rendezvous.passive == HOME_ID
                       else f"r{rendezvous.passive}")
            self.trace.append(TraceEvent(
                time=self.now, kind="complete", src=active, dst=passive,
                label=rendezvous.msg, payload=rendezvous.payload))

    def _track_acquires(self, step: Step) -> None:
        for rendezvous in step.completes:
            if rendezvous.msg not in self.spec.acquire_complete_msgs:
                continue
            remote = rendezvous.remote
            issued = self._outstanding_acquire.pop(remote, None)
            if issued is not None:
                self.metrics.record_latency(self.now - issued)

    def _schedule_new_deliveries(self) -> None:
        for channel, queue in enumerate(self.state.channels.queues):
            while self._scheduled[channel] < len(queue):
                delay = self.latency + self._rng.uniform(
                    0, self.latency_jitter)
                when = max(self.now + delay,
                           self._last_delivery_time[channel] + 1e-9)
                self._last_delivery_time[channel] = when
                self._scheduled[channel] += 1
                heapq.heappush(self._heap,
                               (when, next(self._seq), _DELIVERY, channel))

    def _settle(self) -> None:
        """Run all eager protocol steps, then consult the workload."""
        for _ in range(_CASCADE_LIMIT):
            step = self._next_eager_step()
            if step is None:
                break
            self._apply(step)
        else:
            raise SimulationError(
                "protocol did not quiesce within the cascade limit; "
                "suspected zero-time logic loop")
        self._consult_workload()

    def _next_eager_step(self) -> Optional[Step]:
        for step in self.system.steps(self.state):
            action = step.action
            if isinstance(action, (DeliverToHome, DeliverToRemote)):
                continue  # timed, goes through the heap
            if isinstance(action, (HomeStep, HomeTau, RemoteC3)):
                return step
            if isinstance(action, RemoteSend):
                node = self.state.remotes[action.remote].state
                if self.spec.classify(node, SEND, None) is None:
                    return step  # protocol-internal send (e.g. LR after evict)
            elif isinstance(action, RemoteTau):
                node = self.state.remotes[action.remote].state
                if self.spec.classify(node, TAU, action.label) is None:
                    return step
        return None

    def _consult_workload(self) -> None:
        for i in range(self.n_remotes):
            if self._gate_pending[i]:
                continue
            options = self._gated_options(i)
            if not options:
                continue
            choice = self.workload.choose(self.now, options)
            if choice is None:
                continue
            delay, option = choice
            self._gate_pending[i] = True
            heapq.heappush(
                self._heap,
                (self.now + max(0.0, delay), next(self._seq), _GATE,
                 (i, self._gate_epoch[i], option.kind, option.label)))

    def _gated_options(self, i: int) -> list[GatedOption]:
        node = self.state.remotes[i]
        if node.mode != IDLE:
            return []
        options: list[GatedOption] = []
        for step in self.system.steps(self.state):
            action = step.action
            if isinstance(action, RemoteSend) and action.remote == i:
                access = self.spec.classify(node.state, SEND, None)
                if access is not None:
                    options.append(GatedOption(
                        remote=i, kind=SEND, state=node.state, label=None,
                        access_class=access))
            elif isinstance(action, RemoteTau) and action.remote == i:
                access = self.spec.classify(node.state, TAU, action.label)
                if access is not None:
                    options.append(GatedOption(
                        remote=i, kind=TAU, state=node.state,
                        label=action.label, access_class=access))
        return options

    # -- bookkeeping hooks used by _fire_gate / state changes --------------------

    def _bump_epochs(self, before: AsyncState, after: AsyncState) -> None:
        for i in range(self.n_remotes):
            if (before.remotes[i].state, before.remotes[i].mode) != \
                    (after.remotes[i].state, after.remotes[i].mode):
                self._gate_epoch[i] += 1
                self._gate_pending[i] = False
