"""The invalidate protocol — "another DSM protocol used in Avalanche".

The paper evaluates this protocol in Table 3 but does not give its figures;
we reconstruct it in the standard DASH/Avalanche style: any number of
remote nodes may hold *read* copies simultaneously (tracked in a sharers
set at the home), one node may hold an exclusive *write* copy, and a write
request invalidates all read copies first.  The reconstruction stays inside
the paper's specification language: star topology, restricted remote
guards, generalized home guards, sets as ordinary home-node variables.

Home node — variables ``o`` (exclusive owner), ``j`` (pending requester),
``t``/``t0`` (sharer being removed / invalidated), ``S`` (sharers set),
``mem`` (line value)::

    F   --r(j)?reqR-->  F.gr   --r(j)!grR(mem)  [S∪={j}]--> Sh
    F   --r(j)?reqW-->  F.grw  --r(j)!grW(mem)  [o:=j]-->   E

    Sh  --r(j)?reqR-->  Sh.gr  --r(j)!grR(mem)  [S∪={j}]--> Sh
    Sh  --r(t∈S)?evS    [S-={t}]--> Sh.chk (τ: empty? F : Sh)
    Sh  --r(j)?reqW-->  W.chk                    (invalidation loop)

    W.chk  : τ done[S=∅] --> W.grant ; τ more[S≠∅, t0:=min S] --> W.send
    W.send : --r(t0)!invS--> W.wait ; --r(t∈S)?evS [S-={t}]--> W.chk
    W.wait : --r(t0)?IA [S-={t0}]--> W.chk
             --r(t∈S)?evS [S-={t}]--> W.wait
    W.grant: --r(j)!grW(mem) [o:=j]--> E

    E   --r(o)?LR(mem) [o:=None]--> F
    E   --r(j)?reqR--> RI ; RI --r(o)!inv--> RI2 ; RI --r(o)?LR--> RI3
        RI2 --r(o)?{ID,LR}(mem)--> RI3 ; RI3 --r(j)!grR(mem) [S:={j}]--> Sh
    E   --r(j)?reqW--> WI ; WI --r(o)!inv--> WI2 ; WI --r(o)?LR--> WI3
        WI2 --r(o)?{ID,LR}(mem)--> WI3 ; WI3 --r(j)!grW(mem) [o:=j]--> E

Remote node — variable ``d``::

    I  --τ:wantR--> I.r --h!reqR--> I.grR --h?grR(d)--> S
    I  --τ:wantW--> I.w --h!reqW--> I.grW --h?grW(d)--> M
    S  --τ:evict--> S.ev --h!evS--> I
    S  --h?invS--> S.ia --h!IA--> I
    M  --τ:evict--> M.lr --h!LR(d)--> I
    M  --h?inv--> M.id --h!ID(d)--> I

A write upgrade from ``S`` is expressed compositionally (evict the read
copy, then request write); the :mod:`repro.protocols.msi` extension adds a
first-class upgrade transaction instead.

Note the CPU intent (``wantR``/``wantW``) is necessarily an explicit tau
here — a remote must choose *which* single rendezvous to pursue, and the
section 2.4 restriction forbids output non-determinism — so every idle
remote carries an intent bit and the state space grows exponentially in the
node count even at the rendezvous level.  That matches the paper's Table 3,
where even the *rendezvous* invalidate protocol reaches 228 kstates at a
mere 6 nodes (vs. 965 states for migratory at 8).

Fusable pairs detected by the engine: ``reqR``/``grR``, ``reqW``/``grW``
(reply path through the invalidation loop — accepted because the loop
terminates; see :func:`repro.refine.reqreply.check_pair`), ``invS``/``IA``
and ``inv``/``ID``.
"""

from __future__ import annotations

from typing import Optional

from ..csp.ast import DATA, AnySender, Protocol, SetSender, VarSender, VarTarget
from ..csp.builder import ProcessBuilder, inp, out, protocol, tau
from ..csp.validate import validate_protocol

__all__ = ["invalidate_protocol", "INVALIDATE_MSGS"]

#: Message vocabulary of the invalidate protocol.
INVALIDATE_MSGS = ("reqR", "reqW", "grR", "grW", "evS", "invS", "IA",
                   "inv", "ID", "LR")


def invalidate_protocol(data_values: Optional[int] = None) -> Protocol:
    """Build the invalidate rendezvous protocol.

    :param data_values: size of the finite data domain, or ``None`` for the
        abstract single-token payload model (writes then leave the value
        unchanged; with a domain, M-state writes increment mod the domain).
    :returns: a validated :class:`~repro.csp.ast.Protocol`.
    """
    abstract = data_values is None

    def initial_data():
        return DATA if abstract else 0

    home = ProcessBuilder.home(
        "invalidate-home",
        o=None, j=None, t=None, t0=None, S=frozenset(), mem=initial_data())
    def grant(env):
        return env["mem"]

    def add_sharer(var: str):
        return lambda env: env.update(
            {"S": env["S"] | frozenset({env[var]}), var: None})

    def drop_sharer(var: str):
        return lambda env: env.set("S", env["S"] - frozenset({env[var]}))

    # -- free ---------------------------------------------------------------
    home.state(
        "F",
        inp("reqR", sender=AnySender(), bind_sender="j", to="F.gr"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="F.grw"),
    )
    home.state("F.gr", out("grR", target=VarTarget("j"), payload=grant,
                           update=add_sharer("j"), to="Sh"))
    home.state("F.grw", out("grW", target=VarTarget("j"), payload=grant,
                            update=lambda env: env.update({"o": env["j"],
                                                           "j": None}),
                            to="E"))

    # -- shared -------------------------------------------------------------
    home.state(
        "Sh",
        inp("reqR", sender=AnySender(), bind_sender="j", to="Sh.gr"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="Sh.chk"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="W.chk"),
    )
    home.state("Sh.gr", out("grR", target=VarTarget("j"), payload=grant,
                            update=add_sharer("j"), to="Sh"))
    home.state(
        "Sh.chk",
        tau("empty", cond=lambda env: not env["S"], to="F"),
        tau("nonempty", cond=lambda env: bool(env["S"]), to="Sh"),
    )

    # -- write-invalidate loop ------------------------------------------------
    home.state(
        "W.chk",
        tau("done", cond=lambda env: not env["S"], to="W.grant"),
        tau("more", cond=lambda env: bool(env["S"]),
            update=lambda env: env.set("t0", min(env["S"])), to="W.send"),
    )
    home.state(
        "W.send",
        out("invS", target=VarTarget("t0"), to="W.wait"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="W.chk"),
    )
    home.state(
        "W.wait",
        inp("IA", sender=VarSender("t0"),
            update=lambda env: env.update(
                {"S": env["S"] - frozenset({env["t0"]}), "t0": None}),
            to="W.chk"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="W.wait"),
    )
    home.state("W.grant", out("grW", target=VarTarget("j"), payload=grant,
                              update=lambda env: env.update({"o": env["j"],
                                                             "j": None}),
                              to="E"))

    # -- exclusive ------------------------------------------------------------
    home.state(
        "E",
        inp("LR", sender=VarSender("o"), bind_value="mem",
            update=lambda env: env.set("o", None), to="F"),
        inp("reqR", sender=AnySender(), bind_sender="j", to="RI"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="WI"),
    )
    for prefix, grant_state in (("RI", "RI3"), ("WI", "WI3")):
        home.state(
            prefix,
            out("inv", target=VarTarget("o"), to=f"{prefix}2"),
            inp("LR", sender=VarSender("o"), bind_value="mem",
                to=grant_state),
        )
        home.state(
            f"{prefix}2",
            inp("LR", sender=VarSender("o"), bind_value="mem",
                to=grant_state),
            inp("ID", sender=VarSender("o"), bind_value="mem",
                to=grant_state),
        )
    home.state("RI3", out("grR", target=VarTarget("j"), payload=grant,
                          update=lambda env: env.update(
                              {"S": frozenset({env["j"]}),
                               "o": None, "j": None}),
                          to="Sh"))
    home.state("WI3", out("grW", target=VarTarget("j"), payload=grant,
                          update=lambda env: env.update({"o": env["j"],
                                                         "j": None}),
                          to="E"))

    # -- remote ----------------------------------------------------------------
    remote = ProcessBuilder.remote("invalidate-remote", d=initial_data())
    remote.state(
        "I",
        tau("wantR", to="I.r"),
        tau("wantW", to="I.w"),
    )
    remote.state("I.r", out("reqR", to="I.grR"))
    remote.state("I.grR", inp("grR", bind_value="d", to="S"))
    remote.state("I.w", out("reqW", to="I.grW"))
    remote.state("I.grW", inp("grW", bind_value="d", to="M"))

    remote.state(
        "S",
        tau("evict", to="S.ev"),
        inp("invS", to="S.ia"),
    )
    remote.state("S.ev",
                 out("evS", update=lambda env: env.set("d", initial_data()),
                     to="I"))
    remote.state("S.ia",
                 out("IA", update=lambda env: env.set("d", initial_data()),
                     to="I"))

    write_guards = []
    if not abstract:
        write_guards.append(
            tau("write", to="M",
                update=lambda env: env.set("d", (env["d"] + 1) % data_values)))
    remote.state(
        "M",
        tau("evict", to="M.lr"),
        inp("inv", to="M.id"),
        *write_guards,
    )
    remote.state("M.lr",
                 out("LR", payload=lambda env: env["d"],
                     update=lambda env: env.set("d", initial_data()), to="I"))
    remote.state("M.id",
                 out("ID", payload=lambda env: env["d"],
                     update=lambda env: env.set("d", initial_data()), to="I"))

    return validate_protocol(protocol("invalidate", home, remote))
