"""The migratory protocol of the Avalanche DSM machine (paper Figures 2-3).

Exactly one remote node at a time holds the cache line with read/write
permission; the line *migrates* between nodes through the home.

Home node (Figure 2) — states::

    F  --r(i)?req-->  F1  --r(i)!gr(data)-->  E
    E  --r(o)?LR(data)--> F
    E  --r(j)?req--> I1
    I1 --r(o)!inv--> I2          (revoke current owner's permission)
    I1 --r(o)?LR(data)--> I3     (owner relinquished on its own)
    I2 --r(o)?LR(data)--> I3
    I2 --r(o)?ID(data)--> I3
    I3 --r(j)!gr(data)--> E

Remote node (Figure 3) — states::

    I  --τ:rw-->  I.req  --h!req-->  I.gr  --h?gr(data)-->  V
    V  --τ:evict--> V.lr  --h!LR(data)--> I
    V  --h?inv--> V.id  --h!ID(data)--> I

``data_values`` controls the payload model: ``None`` (the default) uses the
abstract :data:`~repro.csp.ast.DATA` token so payloads never affect the
state count (the standard protocol-verification abstraction); an integer
``m`` uses the finite domain ``0..m-1`` with the CPU write modelled as an
increment mod ``m``, which lets the coherence test suite check *data
integrity* (the value read is the last value written) and not just
permission safety.

``explicit_rw`` controls how the CPU's read/write intent (the ``rw`` arc of
Figure 3) is modelled.  With ``False`` (default) the intent is fused into
the ``h!req`` offer itself — state ``I`` is directly an active
communication state — which matches how SPIN models of such protocols are
written and keeps the verified state space polynomial in the node count
(every idle remote is interchangeable).  With ``True`` the ``rw`` decision
is a separate tau step through an ``I.req`` state; this is closer to the
figure's drawing but gives every idle remote an independent bit of state,
so the reachable space grows as :math:`2^n` — the variant exists to
demonstrate exactly that modelling pitfall (see the scaling benchmark).
"""

from __future__ import annotations

from typing import Optional

from ..csp.ast import DATA, AnySender, Protocol, VarSender, VarTarget
from ..csp.builder import ProcessBuilder, inp, out, protocol, tau
from ..csp.validate import validate_protocol

__all__ = ["migratory_protocol", "MIGRATORY_MSGS"]

#: Message vocabulary of the migratory protocol.
MIGRATORY_MSGS = ("req", "gr", "LR", "inv", "ID")


def migratory_protocol(data_values: Optional[int] = None,
                       explicit_rw: bool = False) -> Protocol:
    """Build the migratory rendezvous protocol.

    :param data_values: size of the finite data domain, or ``None`` for the
        abstract single-token payload model.
    :param explicit_rw: model the CPU access intent as a separate tau step
        (exponential state growth; see module docstring).
    :returns: a validated :class:`~repro.csp.ast.Protocol`.
    """
    abstract = data_values is None

    def initial_data():
        return DATA if abstract else 0

    home = ProcessBuilder.home(
        "migratory-home", o=None, j=None, mem=initial_data())
    def grant_payload(env):
        return env["mem"]

    home.state(
        "F",
        inp("req", sender=AnySender(), bind_sender="j", to="F1"),
    )
    home.state(
        "F1",
        out("gr", target=VarTarget("j"), payload=grant_payload,
            update=lambda env: env.update({"o": env["j"], "j": None}),
            to="E"),
    )
    home.state(
        "E",
        inp("LR", sender=VarSender("o"), bind_value="mem",
            update=lambda env: env.set("o", None), to="F"),
        inp("req", sender=AnySender(), bind_sender="j", to="I1"),
    )
    home.state(
        "I1",
        out("inv", target=VarTarget("o"), to="I2"),
        inp("LR", sender=VarSender("o"), bind_value="mem", to="I3"),
    )
    home.state(
        "I2",
        inp("LR", sender=VarSender("o"), bind_value="mem", to="I3"),
        inp("ID", sender=VarSender("o"), bind_value="mem", to="I3"),
    )
    home.state(
        "I3",
        out("gr", target=VarTarget("j"), payload=grant_payload,
            update=lambda env: env.update({"o": env["j"], "j": None}),
            to="E"),
    )

    remote = ProcessBuilder.remote("migratory-remote", d=initial_data())
    if explicit_rw:
        remote.state("I", tau("rw", to="I.req"))
        remote.state("I.req", out("req", to="I.gr"))
    else:
        remote.state("I", out("req", to="I.gr"))
    remote.state(
        "I.gr",
        inp("gr", bind_value="d", to="V"),
    )
    write_guards = []
    if not abstract:
        write_guards.append(
            tau("write", to="V",
                update=lambda env: env.set("d", (env["d"] + 1) % data_values))
        )
    remote.state(
        "V",
        tau("evict", to="V.lr"),
        inp("inv", to="V.id"),
        *write_guards,
    )
    remote.state(
        "V.lr",
        out("LR", payload=lambda env: env["d"],
            update=lambda env: env.set("d", initial_data()), to="I"),
    )
    remote.state(
        "V.id",
        out("ID", payload=lambda env: env["d"],
            update=lambda env: env.set("d", initial_data()), to="I"),
    )

    return validate_protocol(protocol("migratory", home, remote))
