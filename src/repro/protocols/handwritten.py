"""The hand-designed Avalanche asynchronous migratory protocol.

Paper section 5: "The asynchronous protocol designed by the Avalanche
design team differs from the protocol shown in Figures 4 and 5 in that in
their protocol the dotted lines are actions, i.e., no ack is exchanged
after an LR message.  We believe that the loss of efficiency due to the
extra ack is small.  We are currently in the process of quantifying the
efficiency of the asynchronous protocol designed by hand and the
asynchronous protocol obtained by the refinement procedure."

We model that exact difference with the *fire-and-forget* extension of the
refinement engine: ``LR`` is sent as an unacknowledged notification (the
owner relinquishes the line and moves on immediately), everything else is
refined identically.  This lets the benchmark suite finish the comparison
the paper left open:

* message counts per transaction (the saved ack vs. the refined protocol);
* the price: the abstraction function of section 4 is *undefined* for
  unacknowledged messages (see :mod:`repro.refine.abstraction`), so the
  hand protocol cannot be proven correct by the refinement theorem — it is
  instead validated the hard way, by direct model checking of invariants,
  deadlock-freedom and progress on its (larger) asynchronous state space.
  That contrast *is* the paper's thesis in miniature.
"""

from __future__ import annotations

from typing import Optional

from ..refine.engine import refine
from ..refine.plan import RefinedProtocol, RefinementConfig
from .migratory import migratory_protocol

__all__ = ["handwritten_migratory", "HAND_CONFIG"]

#: The refinement configuration matching the Avalanche hand design: the
#: standard k=2 buffer and request/reply fusion, with LR unacknowledged.
HAND_CONFIG = RefinementConfig(fire_and_forget=frozenset({"LR"}))


def handwritten_migratory(data_values: Optional[int] = None,
                          explicit_rw: bool = False,
                          home_buffer_capacity: int = 2) -> RefinedProtocol:
    """Build the hand-designed asynchronous migratory protocol.

    Parameters mirror :func:`repro.protocols.migratory.migratory_protocol`;
    ``home_buffer_capacity`` sizes the home buffer as in
    :class:`~repro.refine.plan.RefinementConfig`.
    """
    config = RefinementConfig(
        home_buffer_capacity=home_buffer_capacity,
        fire_and_forget=frozenset({"LR"}),
    )
    return refine(migratory_protocol(data_values=data_values,
                                     explicit_rw=explicit_rw), config)
