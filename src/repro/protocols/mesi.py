"""MESI protocol (library extension): exclusive-clean copies.

Stresses the refinement machinery with the defining MESI feature: the
first reader receives an **exclusive-clean** (E) copy and may upgrade it to
Modified *silently* — no message, just a local tau — so the home cannot
know whether the line it granted is clean or dirty.  Consequences this
module exercises:

* when the home revokes an exclusive copy it must accept *either* a clean
  acknowledgement (``dnC``/``IC``, no data) or a dirty write-back
  (``dnD``/``ID``, with data), depending on hidden remote state;
* precisely because two reply types are possible, the section 3.3
  request/reply optimization is **not applicable** to the revocation pairs
  — the engine's static checks refuse them (asserted in tests), while
  still fusing ``reqW``/``grM`` and the sharer-invalidation ``invS``/``IA``;
* a read request has two possible answers too (``grE`` if the line is
  free, ``grS`` after a downgrade), so ``reqR`` also stays un-fused.

Home node — variables ``o`` (exclusive owner), ``j`` (pending requester),
``t``/``t0`` (sharer bookkeeping), ``S`` (sharers), ``mem``::

    F   --r(j)?reqR--> F.ge --r(j)!grE(mem) [o:=j]--> X
    F   --r(j)?reqW--> F.gm --r(j)!grM(mem) [o:=j]--> X

    X   --r(o)?evE  [o:=None]--> F            (clean evict: no data)
    X   --r(o)?LR(mem) [o:=None]--> F         (dirty write-back evict)
    X   --r(j)?reqR--> X.r                     (downgrade to shared)
    X   --r(j)?reqW--> X.w                     (full revocation)

    X.r --r(o)!down--> X.rw ; X.r --r(o)?{evE,LR}--> X.fgr   (race)
    X.rw --r(o)?dnC  [S:={o}]--> X.sgr         (was clean)
    X.rw --r(o)?dnD(mem) [S:={o}]--> X.sgr     (was dirty)
    X.sgr --r(j)!grS(mem) [S∪={j}, o:=None]--> Sh
    X.fgr --r(j)!grE(mem) [o:=j]--> X

    X.w --r(o)!invX--> X.ww ; X.w --r(o)?{evE,LR}--> X.wgr   (race)
    X.ww --r(o)?IC--> X.wgr ; X.ww --r(o)?ID(mem)--> X.wgr
    X.wgr --r(j)!grM(mem) [o:=j]--> X

    Sh  --r(j)?reqR--> Sh.gr --r(j)!grS(mem) [S∪={j}]--> Sh
    Sh  --r(t∈S)?evS [S-={t}]--> Sh.chk (τ: empty ? F : Sh)
    Sh  --r(j)?reqW--> W.chk                   (invalidate-all loop, then)
    W.grant --r(j)!grM(mem) [o:=j]--> X

Remote node — variable ``d``::

    I --τ:wantR--> I.r --h!reqR--> I.gr ; I.gr --h?grE(d)--> E
                                         I.gr --h?grS(d)--> S
    I --τ:wantW--> I.w --h!reqW--> I.gm --h?grM(d)--> M
    E --τ:write--> M                      (the silent MESI upgrade)
    E --τ:evict--> E.ev --h!evE--> I      (clean: no data travels)
    E --h?down--> E.dc --h!dnC--> S
    E --h?invX--> E.ic --h!IC--> I
    M --τ:evict--> M.lr --h!LR(d)--> I
    M --h?down--> M.dd --h!dnD(d)--> S
    M --h?invX--> M.id --h!ID(d)--> I
    S --τ:evict--> S.ev --h!evS--> I ; S --h?invS--> S.ia --h!IA--> I

The silent ``E -> M`` write tau exists at the rendezvous level regardless
of the data domain — it is a *protocol* state change (the copy becomes
dirty), not just a value change.
"""

from __future__ import annotations

from typing import Optional

from ..csp.ast import DATA, AnySender, Protocol, SetSender, VarSender, VarTarget
from ..csp.builder import ProcessBuilder, inp, out, protocol, tau
from ..csp.validate import validate_protocol

__all__ = ["mesi_protocol", "MESI_MSGS"]

#: Message vocabulary of the MESI protocol.
MESI_MSGS = ("reqR", "reqW", "grE", "grS", "grM", "evE", "LR", "down",
             "dnC", "dnD", "invX", "IC", "ID", "evS", "invS", "IA")


def mesi_protocol(data_values: Optional[int] = None) -> Protocol:
    """Build the MESI rendezvous protocol.

    :param data_values: finite data domain size, or ``None`` for abstract
        payloads.  With a domain, the E-state write increments the value —
        silently, which is exactly what the dirty/clean reply split and the
        coherence oracle then have to get right.
    """
    abstract = data_values is None

    def initial_data():
        return DATA if abstract else 0

    home = ProcessBuilder.home(
        "mesi-home",
        o=None, j=None, t=None, t0=None, S=frozenset(), mem=initial_data())
    def grant(env):
        return env["mem"]

    def own(var: str):
        return lambda env: env.update({"o": env[var], var: None})

    def add_sharer(var: str):
        return lambda env: env.update(
            {"S": env["S"] | frozenset({env[var]}), var: None})

    def drop_sharer(var: str):
        return lambda env: env.set("S", env["S"] - frozenset({env[var]}))

    # -- free -----------------------------------------------------------------
    home.state(
        "F",
        inp("reqR", sender=AnySender(), bind_sender="j", to="F.ge"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="F.gm"),
    )
    home.state("F.ge", out("grE", target=VarTarget("j"), payload=grant,
                           update=own("j"), to="X"))
    home.state("F.gm", out("grM", target=VarTarget("j"), payload=grant,
                           update=own("j"), to="X"))

    # -- exclusive (E or M at the remote — the home cannot tell) ---------------
    home.state(
        "X",
        inp("evE", sender=VarSender("o"),
            update=lambda env: env.set("o", None), to="F"),
        inp("LR", sender=VarSender("o"), bind_value="mem",
            update=lambda env: env.set("o", None), to="F"),
        inp("reqR", sender=AnySender(), bind_sender="j", to="X.r"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="X.w"),
    )
    home.state(
        "X.r",
        out("down", target=VarTarget("o"), to="X.rw"),
        inp("evE", sender=VarSender("o"), to="X.fgr"),
        inp("LR", sender=VarSender("o"), bind_value="mem", to="X.fgr"),
    )
    home.state(
        "X.rw",
        inp("dnC", sender=VarSender("o"),
            update=lambda env: env.update({"S": frozenset({env["o"]})}),
            to="X.sgr"),
        inp("dnD", sender=VarSender("o"), bind_value="mem",
            update=lambda env: env.update({"S": frozenset({env["o"]})}),
            to="X.sgr"),
    )
    home.state("X.sgr",
               out("grS", target=VarTarget("j"), payload=grant,
                   update=lambda env: env.update(
                       {"S": env["S"] | frozenset({env["j"]}),
                        "o": None, "j": None}),
                   to="Sh"))
    home.state("X.fgr", out("grE", target=VarTarget("j"), payload=grant,
                            update=own("j"), to="X"))
    home.state(
        "X.w",
        out("invX", target=VarTarget("o"), to="X.ww"),
        inp("evE", sender=VarSender("o"), to="X.wgr"),
        inp("LR", sender=VarSender("o"), bind_value="mem", to="X.wgr"),
    )
    home.state(
        "X.ww",
        inp("IC", sender=VarSender("o"), to="X.wgr"),
        inp("ID", sender=VarSender("o"), bind_value="mem", to="X.wgr"),
    )
    home.state("X.wgr", out("grM", target=VarTarget("j"), payload=grant,
                            update=own("j"), to="X"))

    # -- shared ------------------------------------------------------------------
    home.state(
        "Sh",
        inp("reqR", sender=AnySender(), bind_sender="j", to="Sh.gr"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="Sh.chk"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="W.chk"),
    )
    home.state("Sh.gr", out("grS", target=VarTarget("j"), payload=grant,
                            update=add_sharer("j"), to="Sh"))
    home.state(
        "Sh.chk",
        tau("empty", cond=lambda env: not env["S"], to="F"),
        tau("nonempty", cond=lambda env: bool(env["S"]), to="Sh"),
    )
    home.state(
        "W.chk",
        tau("done", cond=lambda env: not env["S"], to="W.grant"),
        tau("more", cond=lambda env: bool(env["S"]),
            update=lambda env: env.set("t0", min(env["S"])), to="W.send"),
    )
    home.state(
        "W.send",
        out("invS", target=VarTarget("t0"), to="W.wait"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="W.chk"),
    )
    home.state(
        "W.wait",
        inp("IA", sender=VarSender("t0"),
            update=lambda env: env.update(
                {"S": env["S"] - frozenset({env["t0"]}), "t0": None}),
            to="W.chk"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="W.wait"),
    )
    home.state("W.grant", out("grM", target=VarTarget("j"), payload=grant,
                              update=own("j"), to="X"))

    # -- remote ---------------------------------------------------------------------
    remote = ProcessBuilder.remote("mesi-remote", d=initial_data())
    remote.state(
        "I",
        tau("wantR", to="I.r"),
        tau("wantW", to="I.w"),
    )
    remote.state("I.r", out("reqR", to="I.gr"))
    remote.state(
        "I.gr",
        inp("grE", bind_value="d", to="E"),
        inp("grS", bind_value="d", to="S"),
    )
    remote.state("I.w", out("reqW", to="I.gm"))
    remote.state("I.gm", inp("grM", bind_value="d", to="M"))

    write_update = (None if abstract else
                    (lambda env: env.set("d", (env["d"] + 1) % data_values)))
    remote.state(
        "E",
        tau("write", update=write_update, to="M"),
        tau("evict", to="E.ev"),
        inp("down", to="E.dc"),
        inp("invX", to="E.ic"),
    )
    remote.state("E.ev",
                 out("evE", update=lambda env: env.set("d", initial_data()),
                     to="I"))
    remote.state("E.dc", out("dnC", to="S"))
    remote.state("E.ic",
                 out("IC", update=lambda env: env.set("d", initial_data()),
                     to="I"))

    extra_writes = [] if abstract else [
        tau("write", update=write_update, to="M")]
    remote.state(
        "M",
        tau("evict", to="M.lr"),
        inp("down", to="M.dd"),
        inp("invX", to="M.id"),
        *extra_writes,
    )
    remote.state("M.lr",
                 out("LR", payload=lambda env: env["d"],
                     update=lambda env: env.set("d", initial_data()), to="I"))
    remote.state("M.dd", out("dnD", payload=lambda env: env["d"], to="S"))
    remote.state("M.id",
                 out("ID", payload=lambda env: env["d"],
                     update=lambda env: env.set("d", initial_data()), to="I"))

    remote.state(
        "S",
        tau("evict", to="S.ev"),
        inp("invS", to="S.ia"),
    )
    remote.state("S.ev",
                 out("evS", update=lambda env: env.set("d", initial_data()),
                     to="I"))
    remote.state("S.ia",
                 out("IA", update=lambda env: env.set("d", initial_data()),
                     to="I"))

    return validate_protocol(protocol("mesi", home, remote))
