"""MSI protocol with a first-class upgrade transaction (library extension).

The paper's conclusion claims the refinement procedure "applies to large
classes of DSM protocols"; this module stresses that claim beyond the two
protocols the paper evaluates.  It extends the invalidate protocol with an
**upgrade** transaction: a read-sharer that wants to write asks the home to
invalidate *the other* sharers only, keeping its own copy (no data
transfer), instead of evicting and re-fetching.

New messages: ``reqU`` (upgrade request, sent from the ``S`` state),
``grU`` (upgrade grant — no payload, the requester already has the data)
and ``upfail`` (upgrade denial — sent when the home is already invalidating
on behalf of another writer; the denied sharer returns to ``S`` and will
shortly receive that writer's ``invS`` like any other sharer).

The denial path is forced by the rendezvous model itself: a sharer blocked
in its upgrade request cannot simultaneously accept ``invS`` (remote nodes
have no output non-determinism), so every home state that can try to
invalidate sharers must also be able to *consume* a competing ``reqU`` —
otherwise the rendezvous protocol deadlocks, and the model checker catches
it immediately.  This is a nice demonstration of the paper's methodology:
the race shows up (and is fixed) at the small rendezvous level, not in the
asynchronous jungle.

Fusion note: ``reqU`` is *not* request/reply fusable — its requester waits
for one of *two* possible answers (``grU``/``upfail``), and section 3.3
requires a unique reply.  The engine correctly leaves it as a plain
acked request, while still fusing ``reqR``/``grR``, ``reqW``/``grW``,
``invS``/``IA`` and ``inv``/``ID`` around it.
"""

from __future__ import annotations

from typing import Optional

from ..csp.ast import DATA, AnySender, Protocol, SetSender, VarSender, VarTarget
from ..csp.builder import ProcessBuilder, inp, out, protocol, tau
from ..csp.validate import validate_protocol

__all__ = ["msi_protocol", "MSI_MSGS"]

#: Message vocabulary of the MSI-with-upgrade protocol.
MSI_MSGS = ("reqR", "reqW", "reqU", "grR", "grW", "grU", "upfail",
            "evS", "invS", "IA", "inv", "ID", "LR")


def msi_protocol(data_values: Optional[int] = None) -> Protocol:
    """Build the MSI-with-upgrade rendezvous protocol.

    :param data_values: finite data domain size, or ``None`` for abstract
        payloads (as in :func:`repro.protocols.invalidate.invalidate_protocol`).
    """
    abstract = data_values is None

    def initial_data():
        return DATA if abstract else 0

    home = ProcessBuilder.home(
        "msi-home",
        o=None, j=None, t=None, t0=None, u=None, S=frozenset(),
        mem=initial_data())
    def grant(env):
        return env["mem"]

    def add_sharer(var: str):
        return lambda env: env.update(
            {"S": env["S"] | frozenset({env[var]}), var: None})

    def drop_sharer(var: str):
        return lambda env: env.set("S", env["S"] - frozenset({env[var]}))

    # -- free ------------------------------------------------------------------
    home.state(
        "F",
        inp("reqR", sender=AnySender(), bind_sender="j", to="F.gr"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="F.grw"),
    )
    home.state("F.gr", out("grR", target=VarTarget("j"), payload=grant,
                           update=add_sharer("j"), to="Sh"))
    home.state("F.grw", out("grW", target=VarTarget("j"), payload=grant,
                            update=lambda env: env.update({"o": env["j"],
                                                           "j": None}),
                            to="E"))

    # -- shared ------------------------------------------------------------------
    home.state(
        "Sh",
        inp("reqR", sender=AnySender(), bind_sender="j", to="Sh.gr"),
        inp("evS", sender=SetSender("S"), bind_sender="t",
            update=drop_sharer("t"), to="Sh.chk"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="W.chk"),
        inp("reqU", sender=SetSender("S"), bind_sender="j", to="U.chk"),
    )
    home.state("Sh.gr", out("grR", target=VarTarget("j"), payload=grant,
                            update=add_sharer("j"), to="Sh"))
    home.state(
        "Sh.chk",
        tau("empty", cond=lambda env: not env["S"], to="F"),
        tau("nonempty", cond=lambda env: bool(env["S"]), to="Sh"),
    )

    # -- invalidation loops -------------------------------------------------------
    # W.*: invalidate everyone, writer is outside the sharer set.
    # U.*: invalidate everyone except the upgrading sharer j.
    def build_loop(prefix: str, victims):
        """victims(env) -> frozenset of sharers still to invalidate."""
        home.state(
            f"{prefix}.chk",
            tau("done", cond=lambda env: not victims(env),
                to=f"{prefix}.grant"),
            tau("more", cond=lambda env: bool(victims(env)),
                update=lambda env: env.set("t0", min(victims(env))),
                to=f"{prefix}.send"),
        )
        home.state(
            f"{prefix}.send",
            out("invS", target=VarTarget("t0"), to=f"{prefix}.wait"),
            inp("evS", sender=SetSender("S"), bind_sender="t",
                update=drop_sharer("t"), to=f"{prefix}.chk"),
            inp("reqU", sender=SetSender("S"), bind_sender="u",
                to=f"{prefix}.send.deny"),
        )
        home.state(f"{prefix}.send.deny",
                   out("upfail", target=VarTarget("u"),
                       update=lambda env: env.set("u", None),
                       to=f"{prefix}.chk"))
        home.state(
            f"{prefix}.wait",
            inp("IA", sender=VarSender("t0"),
                update=lambda env: env.update(
                    {"S": env["S"] - frozenset({env["t0"]}), "t0": None}),
                to=f"{prefix}.chk"),
            inp("evS", sender=SetSender("S"), bind_sender="t",
                update=drop_sharer("t"), to=f"{prefix}.wait"),
            inp("reqU", sender=SetSender("S"), bind_sender="u",
                to=f"{prefix}.wait.deny"),
        )
        home.state(f"{prefix}.wait.deny",
                   out("upfail", target=VarTarget("u"),
                       update=lambda env: env.set("u", None),
                       to=f"{prefix}.wait"))

    build_loop("W", victims=lambda env: env["S"])
    build_loop("U", victims=lambda env: env["S"] - frozenset({env["j"]}))

    home.state("W.grant", out("grW", target=VarTarget("j"), payload=grant,
                              update=lambda env: env.update({"o": env["j"],
                                                             "j": None}),
                              to="E"))
    home.state("U.grant", out("grU", target=VarTarget("j"),
                              update=lambda env: env.update(
                                  {"o": env["j"], "j": None,
                                   "S": frozenset()}),
                              to="E"))

    # -- exclusive -------------------------------------------------------------
    home.state(
        "E",
        inp("LR", sender=VarSender("o"), bind_value="mem",
            update=lambda env: env.set("o", None), to="F"),
        inp("reqR", sender=AnySender(), bind_sender="j", to="RI"),
        inp("reqW", sender=AnySender(), bind_sender="j", to="WI"),
    )
    for prefix, grant_state in (("RI", "RI3"), ("WI", "WI3")):
        home.state(
            prefix,
            out("inv", target=VarTarget("o"), to=f"{prefix}2"),
            inp("LR", sender=VarSender("o"), bind_value="mem",
                to=grant_state),
        )
        home.state(
            f"{prefix}2",
            inp("LR", sender=VarSender("o"), bind_value="mem",
                to=grant_state),
            inp("ID", sender=VarSender("o"), bind_value="mem",
                to=grant_state),
        )
    home.state("RI3", out("grR", target=VarTarget("j"), payload=grant,
                          update=lambda env: env.update(
                              {"S": frozenset({env["j"]}),
                               "o": None, "j": None}),
                          to="Sh"))
    home.state("WI3", out("grW", target=VarTarget("j"), payload=grant,
                          update=lambda env: env.update({"o": env["j"],
                                                         "j": None}),
                          to="E"))

    # -- remote -------------------------------------------------------------------
    remote = ProcessBuilder.remote("msi-remote", d=initial_data())
    remote.state(
        "I",
        tau("wantR", to="I.r"),
        tau("wantW", to="I.w"),
    )
    remote.state("I.r", out("reqR", to="I.grR"))
    remote.state("I.grR", inp("grR", bind_value="d", to="S"))
    remote.state("I.w", out("reqW", to="I.grW"))
    remote.state("I.grW", inp("grW", bind_value="d", to="M"))

    remote.state(
        "S",
        tau("evict", to="S.ev"),
        tau("wantUp", to="S.up"),
        inp("invS", to="S.ia"),
    )
    remote.state("S.ev",
                 out("evS", update=lambda env: env.set("d", initial_data()),
                     to="I"))
    remote.state("S.ia",
                 out("IA", update=lambda env: env.set("d", initial_data()),
                     to="I"))
    remote.state("S.up", out("reqU", to="S.grU"))
    # No invS guard is needed in S.grU: once the home has acked reqU it is
    # committed to answer with grU or upfail before invalidating us (the
    # U-loop skips the upgrader; the deny states reply immediately), and
    # an invS racing the reqU is absorbed by the transient-drop/implicit-
    # nack rules.  The model checker confirms no deadlock without it.
    remote.state(
        "S.grU",
        inp("grU", to="M"),
        inp("upfail", to="S"),
    )

    write_guards = []
    if not abstract:
        write_guards.append(
            tau("write", to="M",
                update=lambda env: env.set("d", (env["d"] + 1) % data_values)))
    remote.state(
        "M",
        tau("evict", to="M.lr"),
        inp("inv", to="M.id"),
        *write_guards,
    )
    remote.state("M.lr",
                 out("LR", payload=lambda env: env["d"],
                     update=lambda env: env.set("d", initial_data()), to="I"))
    remote.state("M.id",
                 out("ID", payload=lambda env: env["d"],
                     update=lambda env: env.set("d", initial_data()), to="I"))

    return validate_protocol(protocol("msi", home, remote))
