"""Coherence invariants for the protocol library.

The paper verifies its protocols with SPIN but does not spell out the
checked properties; these are the standard cache-coherence safety
conditions, phrased so that one definition works at *both* semantic levels:

* **Single writer** — at most one remote node holds the line with write
  permission.
* **SWMR** (single-writer / multiple-reader) — no remote holds write
  permission while another holds read permission.
* **Owner consistency** — when the home believes the line is out
  (``o`` set), the recorded owner is a valid node id.

"Holding" needs care at the asynchronous level: a node that has *sent*
``LR``/``ID`` (it is transient, waiting for the ack) no longer has the
data, so only nodes whose mode is idle count as holders.  At the rendezvous
level every node is conceptually idle, so the same predicate applies.

Library-level structural invariants (buffer capacity, handshake
discipline) are included for the asynchronous level; they double as
failure-injection targets in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..semantics.asynchronous import AsyncState, IDLE
from ..semantics.network import ACK, NACK, REPL

__all__ = [
    "CoherenceSpec",
    "MIGRATORY_SPEC",
    "INVALIDATE_SPEC",
    "MSI_SPEC",
    "MESI_SPEC",
    "COHERENCE_SPECS",
    "coherence_spec_for",
    "holders",
    "coherence_invariants",
    "async_structural_invariants",
]

Invariant = tuple[str, Callable[[Any], bool]]


@dataclass(frozen=True)
class CoherenceSpec:
    """Which remote control states constitute holding a permission.

    State names refer to the *rendezvous* AST; both semantic levels expose
    them unchanged.  ``exclusive`` states hold the (only) writable copy —
    including post-eviction staging states where the data has not left the
    node yet; ``shared`` states hold read-only copies.
    """

    name: str
    exclusive: frozenset[str]
    shared: frozenset[str] = frozenset()


MIGRATORY_SPEC = CoherenceSpec(
    name="migratory",
    exclusive=frozenset({"V", "V.lr", "V.id"}),
)

INVALIDATE_SPEC = CoherenceSpec(
    name="invalidate",
    exclusive=frozenset({"M", "M.lr", "M.id"}),
    shared=frozenset({"S", "S.ev", "S.ia"}),
)

MSI_SPEC = CoherenceSpec(
    name="msi",
    exclusive=frozenset({"M", "M.lr", "M.id"}),
    shared=frozenset({"S", "S.ev", "S.ia", "S.up", "S.grU"}),
)

# E is writable (it may silently become M), so it counts as exclusive; the
# downgrade/invalidate response states E.dc/E.ic hold a read-only copy.
MESI_SPEC = CoherenceSpec(
    name="mesi",
    exclusive=frozenset({"E", "M", "E.ev", "M.lr", "M.id", "M.dd"}),
    shared=frozenset({"S", "S.ev", "S.ia", "E.dc", "E.ic"}),
)


#: The one registry mapping library protocol names to their coherence
#: specs; the CLI, the parameterized coherence checker and the tests all
#: import this instead of keeping private copies.
COHERENCE_SPECS: dict[str, CoherenceSpec] = {
    "invalidate": INVALIDATE_SPEC,
    "mesi": MESI_SPEC,
    "migratory": MIGRATORY_SPEC,
    "msi": MSI_SPEC,
}


def coherence_spec_for(name: str) -> CoherenceSpec:
    """Look up the registered spec for a library protocol name."""
    try:
        return COHERENCE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"no coherence spec registered for {name!r}; known: "
            f"{', '.join(sorted(COHERENCE_SPECS))}") from None


def holders(state: Any, permission_states: frozenset[str]) -> list[int]:
    """Indices of remotes currently holding one of ``permission_states``.

    Works on both :class:`~repro.semantics.state.RvState` and
    :class:`~repro.semantics.asynchronous.AsyncState`: at the asynchronous
    level a transient node has committed to giving the permission up (its
    request is on the wire), so only idle nodes count.
    """
    result = []
    for i, node in enumerate(state.remotes):
        if node.state not in permission_states:
            continue
        if getattr(node, "mode", IDLE) != IDLE:
            continue
        result.append(i)
    return result


def coherence_invariants(spec: CoherenceSpec) -> list[Invariant]:
    """Single-writer and SWMR invariants for either semantic level."""

    def single_writer(state: Any) -> bool:
        return len(holders(state, spec.exclusive)) <= 1

    def swmr(state: Any) -> bool:
        if not spec.shared:
            return True
        if not holders(state, spec.exclusive):
            return True
        return not holders(state, spec.shared)

    return [
        (f"{spec.name}: single-writer", single_writer),
        (f"{spec.name}: no readers while a writer exists", swmr),
    ]


def async_structural_invariants(capacity: int) -> list[Invariant]:
    """Library-level invariants of the asynchronous semantics itself."""

    def buffer_capacity(state: AsyncState) -> bool:
        # fire-and-forget notes may transiently exceed k (they can never be
        # refused); everything else must respect the configured capacity.
        solid = sum(1 for e in state.home.buffer if not e.note)
        return solid <= capacity

    def handshake_discipline(state: AsyncState) -> bool:
        # at most one outstanding ack-like message per directed channel:
        # the protocols handshake strictly, so two acks in flight on one
        # channel would mean the semantics double-answered someone.
        for queue in state.channels.queues:
            if sum(1 for m in queue if m.kind in (ACK, NACK, REPL)) > 1:
                return False
        return True

    def remote_transient_shape(state: AsyncState) -> bool:
        # a transient remote has an empty buffer (C2 deletes, T3 drops)
        return all(node.buf is None
                   for node in state.remotes if node.mode != IDLE)

    return [
        ("home buffer within capacity", buffer_capacity),
        ("per-channel handshake discipline", handshake_discipline),
        ("transient remotes hold no buffered request", remote_transient_shape),
    ]
