"""Protocol library: the paper's protocols plus extensions and invariants."""

from .handwritten import HAND_CONFIG, handwritten_migratory
from .invalidate import INVALIDATE_MSGS, invalidate_protocol
from .invariants import (
    INVALIDATE_SPEC,
    MESI_SPEC,
    MIGRATORY_SPEC,
    MSI_SPEC,
    CoherenceSpec,
    async_structural_invariants,
    coherence_invariants,
    holders,
)
from .mesi import MESI_MSGS, mesi_protocol
from .migratory import MIGRATORY_MSGS, migratory_protocol
from .msi import MSI_MSGS, msi_protocol
from .symmetry import (
    INVALIDATE_SYMMETRY,
    MESI_SYMMETRY,
    MIGRATORY_SYMMETRY,
    MSI_SYMMETRY,
    symmetry_spec_for,
)

__all__ = [
    "CoherenceSpec", "HAND_CONFIG", "INVALIDATE_MSGS", "INVALIDATE_SPEC",
    "MIGRATORY_MSGS", "MIGRATORY_SPEC", "MSI_MSGS", "MSI_SPEC",
    "async_structural_invariants", "coherence_invariants",
    "handwritten_migratory", "holders", "invalidate_protocol",
    "migratory_protocol", "msi_protocol", "mesi_protocol",
    "MESI_MSGS", "MESI_SPEC", "MESI_SYMMETRY",
    "INVALIDATE_SYMMETRY", "MIGRATORY_SYMMETRY", "MSI_SYMMETRY",
    "symmetry_spec_for",
]
