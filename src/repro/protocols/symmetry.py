"""Symmetry declarations for the library protocols.

Which home variables hold remote identities (see
:mod:`repro.check.symmetry` for why this cannot be inferred).  Remote-node
environments in this library are id-free by construction, so only the home
side needs declaring.
"""

from __future__ import annotations

from ..check.symmetry import SymmetrySpec

__all__ = ["MIGRATORY_SYMMETRY", "INVALIDATE_SYMMETRY", "MSI_SYMMETRY",
           "MESI_SYMMETRY", "symmetry_spec_for"]

MIGRATORY_SYMMETRY = SymmetrySpec(id_vars=frozenset({"o", "j"}))

INVALIDATE_SYMMETRY = SymmetrySpec(
    id_vars=frozenset({"o", "j", "t", "t0"}),
    set_vars=frozenset({"S"}),
)

MSI_SYMMETRY = SymmetrySpec(
    id_vars=frozenset({"o", "j", "t", "t0", "u"}),
    set_vars=frozenset({"S"}),
)

MESI_SYMMETRY = SymmetrySpec(
    id_vars=frozenset({"o", "j", "t", "t0"}),
    set_vars=frozenset({"S"}),
)

_BY_NAME = {
    "migratory": MIGRATORY_SYMMETRY,
    "invalidate": INVALIDATE_SYMMETRY,
    "msi": MSI_SYMMETRY,
    "mesi": MESI_SYMMETRY,
}


def symmetry_spec_for(protocol_name: str) -> SymmetrySpec:
    try:
        return _BY_NAME[protocol_name]
    except KeyError:
        raise KeyError(
            f"no symmetry spec for protocol {protocol_name!r}; declare the "
            "home's id-typed variables in a SymmetrySpec") from None
