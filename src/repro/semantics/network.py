"""Asynchronous message and channel model (paper section 2.2).

The communication model the refinement assumes: reliable, point-to-point,
in-order delivery.  In the star topology there are exactly two directed
channels per remote node (home -> remote and remote -> home), each a FIFO
queue.  "Infinite buffering" (the network always accepts a send) is modelled
by unbounded queues — the state-space cost of that assumption is precisely
what Table 3's asynchronous columns show exploding.

Message kinds:

* ``REQ``   — request for rendezvous, carrying the rendezvous message type
  and payload (paper section 3);
* ``ACK`` / ``NACK`` — the two acknowledgement kinds (section 2.2 note:
  these are the messages a deadlock-avoiding network must always accept);
* ``REPL``  — a fused reply (section 3.3): acts as the ack of the request
  it answers *and* carries the reply rendezvous;
* ``NOTE``  — a fire-and-forget notification (hand-designed-protocol
  extension; not part of the paper's refinement rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..csp.env import Value

__all__ = ["REQ", "ACK", "NACK", "REPL", "NOTE", "Msg", "Channels"]

REQ = "REQ"
ACK = "ACK"
NACK = "NACK"
REPL = "REPL"
NOTE = "NOTE"


@dataclass(frozen=True)
class Msg:
    """One message in flight.

    ``msg`` is the rendezvous message type for ``REQ``/``REPL``/``NOTE``
    and ``None`` for the pure acknowledgements.
    """

    kind: str
    msg: Optional[str] = None
    payload: Value = None

    def __hash__(self) -> int:
        # Same formula as the dataclass-generated hash (the field tuple),
        # memoized: every visited-store probe re-hashes the channel
        # contents, and message objects are widely shared across states
        # (the compiled engine interns them outright).  __getstate__
        # pickles only the fields, so the cache never crosses a process
        # boundary.
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hash((self.kind, self.msg, self.payload))
            object.__setattr__(self, "_hash_cache", cached)
        return int(cached)

    def canonical_key(self) -> tuple:
        return (self.kind, self.msg, self.payload)

    def __getstate__(self) -> tuple:
        return (self.kind, self.msg, self.payload)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(("kind", "msg", "payload"), state):
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        # Memoized: the symmetry driver renders every in-flight message
        # once per remote signature, and message objects are shared
        # across states (interned outright by the compiled engine).
        # __getstate__ pickles fields only, so the cache stays local.
        cached = self.__dict__.get("_desc_cache")
        if cached is None:
            if self.kind in (ACK, NACK):
                cached = self.kind.lower()
            else:
                body = self.msg or "?"
                if self.payload is not None:
                    body += f"({self.payload!r})"
                cached = f"{self.kind.lower()}:{body}"
            object.__setattr__(self, "_desc_cache", cached)
        return str(cached)


@dataclass(frozen=True)
class Channels:
    """All 2n directed FIFO channels of an n-remote star, immutably.

    Channel indexing: ``2*i`` is home->remote(i), ``2*i + 1`` is
    remote(i)->home.
    """

    queues: tuple[tuple[Msg, ...], ...]

    def __hash__(self) -> int:
        # Same formula as the dataclass-generated hash (the field tuple),
        # memoized: channel objects are shared across successor states and
        # re-hashed by every visited-store probe.  __getstate__ pickles
        # only ``queues``, so the cache never crosses a process boundary.
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hash((self.queues,))
            object.__setattr__(self, "_hash_cache", cached)
        return int(cached)

    def canonical_key(self) -> tuple:
        # Memoized (the fingerprint store rebuilds state keys on every
        # probe); __getstate__ pickles only ``queues``, never the cache.
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = tuple(tuple(m.canonical_key() for m in queue)
                           for queue in self.queues)
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def __getstate__(self) -> tuple:
        # 1-tuple wrapper: pickle skips __setstate__ for falsy state, and
        # an empty network's queue tuple is exactly that.
        return (self.queues,)

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "queues", state[0])

    @classmethod
    def empty(cls, n_remotes: int) -> "Channels":
        return cls(queues=((),) * (2 * n_remotes))

    @property
    def n_remotes(self) -> int:
        return len(self.queues) // 2

    @staticmethod
    def to_remote(i: int) -> int:
        return 2 * i

    @staticmethod
    def to_home(i: int) -> int:
        return 2 * i + 1

    # -- queries -------------------------------------------------------------

    def head_to_remote(self, i: int) -> Optional[Msg]:
        queue = self.queues[self.to_remote(i)]
        return queue[0] if queue else None

    def head_to_home(self, i: int) -> Optional[Msg]:
        queue = self.queues[self.to_home(i)]
        return queue[0] if queue else None

    def in_flight(self) -> Iterator[tuple[int, str, Msg]]:
        """Yield ``(remote, direction, msg)`` for every in-flight message.

        ``direction`` is ``"to_remote"`` or ``"to_home"``; messages come out
        in FIFO order per channel.
        """
        for i in range(self.n_remotes):
            for msg in self.queues[self.to_remote(i)]:
                yield i, "to_remote", msg
            for msg in self.queues[self.to_home(i)]:
                yield i, "to_home", msg

    @property
    def total_in_flight(self) -> int:
        return sum(len(q) for q in self.queues)

    # -- updates --------------------------------------------------------------

    def push(self, channel: int, msg: Msg) -> "Channels":
        queues = list(self.queues)
        queues[channel] = queues[channel] + (msg,)
        return Channels(queues=tuple(queues))

    def pop(self, channel: int) -> tuple[Msg, "Channels"]:
        queue = self.queues[channel]
        if not queue:
            raise IndexError(f"pop from empty channel {channel}")
        queues = list(self.queues)
        queues[channel] = queue[1:]
        return queue[0], Channels(queues=tuple(queues))

    def send_to_remote(self, i: int, msg: Msg) -> "Channels":
        return self.push(self.to_remote(i), msg)

    def send_to_home(self, i: int, msg: Msg) -> "Channels":
        return self.push(self.to_home(i), msg)

    def describe(self) -> str:
        parts = []
        for i in range(self.n_remotes):
            down = self.queues[self.to_remote(i)]
            up = self.queues[self.to_home(i)]
            if down:
                parts.append(f"h→r{i}:[{','.join(m.describe() for m in down)}]")
            if up:
                parts.append(f"r{i}→h:[{','.join(m.describe() for m in up)}]")
        return " ".join(parts) if parts else "∅"
