"""Operational semantics of rendezvous protocols (the paper's high level).

A rendezvous protocol executes as a closed system of ``1 + n`` processes:
the home node and ``n`` copies of the remote template, communicating only by
synchronous rendezvous (CSP-style).  A global transition is either:

* a **tau step** of one process (autonomous decision or internal state), or
* a **rendezvous**: an enabled Output guard of one process paired with a
  matching enabled Input guard of its peer; both processes move atomically.

This tiny state space is what the paper proposes users verify; the
refinement engine then compiles the same AST down to the asynchronous level.

The system object is *pure*: states are immutable values, and
:meth:`RendezvousSystem.successors` enumerates all interleavings, which is
exactly the interface the explicit-state explorer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from ..csp.ast import Input, Output, Protocol, Tau
from ..csp.env import Value
from ..errors import SemanticsError
from .state import HOME_ID, ProcId, ProcState, RvState

__all__ = ["RendezvousAction", "TauStep", "RendezvousStep", "RendezvousSystem"]


@dataclass(frozen=True)
class TauStep:
    """Process ``proc`` takes the autonomous guard ``label``."""

    proc: ProcId
    label: str

    def describe(self) -> str:
        who = "h" if self.proc == HOME_ID else f"r{self.proc}"
        return f"{who}.τ:{self.label}"


@dataclass(frozen=True)
class RendezvousStep:
    """A completed rendezvous on message type ``msg``.

    ``active`` executed the Output guard, ``passive`` the Input guard
    (paper section 2.3 terminology).  One of the two is always the home
    node; ``remote`` is the remote party's index whichever side it is on.
    ``out_index`` pins *which* of the active side's output guards fired:
    two guards may carry the same (msg, target, payload) yet continue to
    different states, and the refined semantics can take either (the T2
    rule cycles through output guards on nack), so the rendezvous level
    must offer both as distinct steps.
    """

    active: ProcId
    passive: ProcId
    msg: str
    payload: Value = None
    out_index: int = 0

    @property
    def remote(self) -> int:
        party = self.passive if self.active == HOME_ID else self.active
        assert isinstance(party, int)
        return party

    def describe(self) -> str:
        def name(p: ProcId) -> str:
            return "h" if p == HOME_ID else f"r{p}"

        return f"{name(self.active)}!{self.msg} ⇄ {name(self.passive)}"


RendezvousAction = Union[TauStep, RendezvousStep]


class RendezvousSystem:
    """Executable rendezvous semantics for ``protocol`` with ``n`` remotes."""

    def __init__(self, protocol: Protocol, n_remotes: int) -> None:
        if n_remotes < 1:
            raise SemanticsError("need at least one remote node")
        self.protocol = protocol
        self.n_remotes = n_remotes

    # -- construction -------------------------------------------------------

    def initial_state(self) -> RvState:
        home = ProcState(self.protocol.home.initial_state,
                         self.protocol.home.initial_env)
        remote = ProcState(self.protocol.remote.initial_state,
                           self.protocol.remote.initial_env)
        return RvState(home=home, remotes=(remote,) * self.n_remotes)

    # -- transition enumeration ---------------------------------------------

    def actions(self, state: RvState) -> list[RendezvousAction]:
        return list(self._iter_actions(state))

    def _iter_actions(self, state: RvState) -> Iterator[RendezvousAction]:
        yield from self._tau_actions(state)
        yield from self._home_active_rendezvous(state)
        yield from self._remote_active_rendezvous(state)

    def _tau_actions(self, state: RvState) -> Iterator[TauStep]:
        home_def = self.protocol.home.state(state.home.state)
        for guard in home_def.taus:
            if guard.enabled(state.home.env):
                yield TauStep(proc=HOME_ID, label=guard.label)
        for i, proc in enumerate(state.remotes):
            for guard in self.protocol.remote.state(proc.state).taus:
                if guard.enabled(proc.env):
                    yield TauStep(proc=i, label=guard.label)

    def _home_active_rendezvous(self, state: RvState) -> Iterator[RendezvousStep]:
        home_def = self.protocol.home.state(state.home.state)
        for idx, guard in enumerate(home_def.outputs):
            if not guard.enabled(state.home.env):
                continue
            assert guard.target is not None
            target = guard.target.eval(state.home.env)
            if not 0 <= target < self.n_remotes:
                raise SemanticsError(
                    f"home output {guard.describe()} targets remote "
                    f"{target}, outside 0..{self.n_remotes - 1}"
                )
            remote = state.remotes[target]
            payload = guard.eval_payload(state.home.env)
            for r_guard in self.protocol.remote.state(remote.state).inputs:
                if r_guard.msg == guard.msg and r_guard.accepts(
                        remote.env, -1, payload):
                    yield RendezvousStep(active=HOME_ID, passive=target,
                                         msg=guard.msg, payload=payload,
                                         out_index=idx)
                    break  # one matching input is one rendezvous offer

    def _remote_active_rendezvous(self, state: RvState) -> Iterator[RendezvousStep]:
        home_def = self.protocol.home.state(state.home.state)
        for i, proc in enumerate(state.remotes):
            for idx, guard in enumerate(
                    self.protocol.remote.state(proc.state).outputs):
                if not guard.enabled(proc.env):
                    continue
                payload = guard.eval_payload(proc.env)
                for h_guard in home_def.inputs:
                    if h_guard.msg == guard.msg and h_guard.accepts(
                            state.home.env, i, payload):
                        yield RendezvousStep(active=i, passive=HOME_ID,
                                             msg=guard.msg, payload=payload,
                                             out_index=idx)
                        break

    # -- transition application ----------------------------------------------

    def apply(self, state: RvState, action: RendezvousAction) -> RvState:
        if isinstance(action, TauStep):
            return self._apply_tau(state, action)
        return self._apply_rendezvous(state, action)

    def _apply_tau(self, state: RvState, action: TauStep) -> RvState:
        if action.proc == HOME_ID:
            proc, process_def = state.home, self.protocol.home
        else:
            proc, process_def = state.remotes[action.proc], self.protocol.remote
        guard = self._find_tau(process_def.state(proc.state).taus, action.label,
                               proc, process_def.name)
        moved = proc.moved(guard.to, guard.apply_update(proc.env))
        if action.proc == HOME_ID:
            return state.with_home(moved)
        return state.with_remote(action.proc, moved)

    @staticmethod
    def _find_tau(taus: Iterable[Tau], label: str, proc: ProcState,
                  process_name: str) -> Tau:
        for guard in taus:
            if guard.label == label and guard.enabled(proc.env):
                return guard
        raise SemanticsError(
            f"tau {label!r} not enabled in {process_name}.{proc.state}"
        )

    def _apply_rendezvous(self, state: RvState, action: RendezvousStep) -> RvState:
        if action.active == HOME_ID:
            return self._apply_home_active(state, action)
        return self._apply_remote_active(state, action)

    def _apply_home_active(self, state: RvState, action: RendezvousStep) -> RvState:
        remote_idx = action.passive
        assert isinstance(remote_idx, int)
        home_def = self.protocol.home.state(state.home.state)
        out_guard = self._output_at(
            home_def.outputs, state.home.env, action,
            f"home state {state.home.state!r}")
        assert out_guard.target is not None
        if out_guard.target.eval(state.home.env) != remote_idx:
            raise SemanticsError(
                f"home output {out_guard.describe()} does not target "
                f"r{remote_idx}")
        remote = state.remotes[remote_idx]
        in_guard = self._matching_input(
            self.protocol.remote.state(remote.state).inputs,
            remote.env, action.msg, -1, action.payload)
        new_home = state.home.moved(
            out_guard.to, out_guard.apply_update(state.home.env))
        new_remote = remote.moved(
            in_guard.to, in_guard.complete(remote.env, -1, action.payload))
        return state.with_home(new_home).with_remote(remote_idx, new_remote)

    def _apply_remote_active(self, state: RvState, action: RendezvousStep) -> RvState:
        remote_idx = action.active
        assert isinstance(remote_idx, int)
        remote = state.remotes[remote_idx]
        out_guard = self._output_at(
            self.protocol.remote.state(remote.state).outputs, remote.env,
            action, f"remote r{remote_idx} state {remote.state!r}")
        in_guard = self._matching_input(
            self.protocol.home.state(state.home.state).inputs,
            state.home.env, action.msg, remote_idx, action.payload)
        new_remote = remote.moved(
            out_guard.to, out_guard.apply_update(remote.env))
        new_home = state.home.moved(
            in_guard.to,
            in_guard.complete(state.home.env, remote_idx, action.payload))
        return state.with_home(new_home).with_remote(remote_idx, new_remote)

    @staticmethod
    def _output_at(outputs: tuple[Output, ...], env, action: RendezvousStep,
                   where: str) -> Output:
        """The output guard ``action.out_index`` names, verified enabled.

        Resolving by index (not by first (msg, payload) match) is what
        keeps two same-message output guards distinct — the refined
        semantics can take either, so the rendezvous level must too.
        """
        if not 0 <= action.out_index < len(outputs):
            raise SemanticsError(
                f"{where} has no output guard #{action.out_index}")
        guard = outputs[action.out_index]
        if (guard.msg != action.msg or not guard.enabled(env)
                or guard.eval_payload(env) != action.payload):
            raise SemanticsError(
                f"{where}: output guard #{action.out_index} does not offer "
                f"{action.msg!r} with payload {action.payload!r}")
        return guard

    @staticmethod
    def _matching_input(inputs: Iterable[Input], env, msg: str, sender: int,
                        payload: Value) -> Input:
        for guard in inputs:
            if guard.msg == msg and guard.accepts(env, sender, payload):
                return guard
        raise SemanticsError(f"no input guard accepts {msg!r} from {sender}")

    # -- convenience ---------------------------------------------------------

    def successors(self, state: RvState) -> list[tuple[RendezvousAction, RvState]]:
        return [(action, self.apply(state, action))
                for action in self.actions(state)]

    def is_progress(self, action: RendezvousAction) -> bool:
        """Progress-criterion labelling: rendezvous completions are progress."""
        return isinstance(action, RendezvousStep)
