"""Shared global-state containers for both semantic levels.

A *global state* is what the model checker hashes and stores: the control
state and variable environment of the home node and of every remote node,
plus (at the asynchronous level only) buffers and in-flight messages.  The
rendezvous-level :class:`RvState` lives here; the richer asynchronous state
lives in :mod:`repro.semantics.asynchronous` but reuses :class:`ProcState`.

Process identities: the home node is :data:`HOME_ID`; remote nodes are
``0 .. n-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..csp.env import Env

__all__ = ["HOME_ID", "ProcId", "ProcState", "RvState"]

#: Identity of the home node in transition labels and message records.
HOME_ID = "h"

ProcId = Union[str, int]  # HOME_ID or a remote index


@dataclass(frozen=True)
class ProcState:
    """Control state name plus variable environment of one process."""

    state: str
    env: Env

    def moved(self, state: str, env: Env | None = None) -> "ProcState":
        return ProcState(state=state, env=self.env if env is None else env)

    def canonical_key(self) -> tuple:
        """Compact primitive encoding for fingerprinting (see
        :mod:`repro.check.store`)."""
        return (self.state, self.env.canonical_key())

    def __getstate__(self) -> tuple:
        return (self.state, self.env)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(("state", "env"), state):
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        if len(self.env) == 0:
            return self.state
        body = ",".join(f"{k}={v!r}" for k, v in self.env.items())
        return f"{self.state}[{body}]"


@dataclass(frozen=True)
class RvState:
    """Global state of the rendezvous-level transition system.

    Hashed once per instance: the model checker's visited set probes each
    state many times, and the structural hash over nested dataclasses is
    the hot path.  The cache is an ordinary attribute (not a field), so
    it is invisible to ``==``/``replace`` and dropped on pickling —
    cached hashes must never cross a process boundary, where the string
    hash seed differs.
    """

    home: ProcState
    remotes: tuple[ProcState, ...]

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hash((self.home, self.remotes))
            object.__setattr__(self, "_hash_cache", cached)
        return int(cached)

    def canonical_key(self) -> tuple:
        """Compact primitive encoding for fingerprinting (see
        :mod:`repro.check.store`)."""
        return ("rv", self.home.canonical_key(),
                tuple(r.canonical_key() for r in self.remotes))

    def __getstate__(self) -> tuple:
        return (self.home, self.remotes)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(("home", "remotes"), state):
            object.__setattr__(self, name, value)

    @property
    def n_remotes(self) -> int:
        return len(self.remotes)

    def with_home(self, home: ProcState) -> "RvState":
        return RvState(home=home, remotes=self.remotes)

    def with_remote(self, index: int, proc: ProcState) -> "RvState":
        remotes = list(self.remotes)
        remotes[index] = proc
        return RvState(home=self.home, remotes=tuple(remotes))

    def describe(self) -> str:
        remotes = " ".join(
            f"r{i}:{p.describe()}" for i, p in enumerate(self.remotes)
        )
        return f"h:{self.home.describe()} {remotes}"
