"""Shared global-state containers for both semantic levels.

A *global state* is what the model checker hashes and stores: the control
state and variable environment of the home node and of every remote node,
plus (at the asynchronous level only) buffers and in-flight messages.  The
rendezvous-level :class:`RvState` lives here; the richer asynchronous state
lives in :mod:`repro.semantics.asynchronous` but reuses :class:`ProcState`.

Process identities: the home node is :data:`HOME_ID`; remote nodes are
``0 .. n-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..csp.env import Env

__all__ = ["HOME_ID", "ProcId", "ProcState", "RvState"]

#: Identity of the home node in transition labels and message records.
HOME_ID = "h"

ProcId = Union[str, int]  # HOME_ID or a remote index


@dataclass(frozen=True)
class ProcState:
    """Control state name plus variable environment of one process."""

    state: str
    env: Env

    def moved(self, state: str, env: Env | None = None) -> "ProcState":
        return ProcState(state=state, env=self.env if env is None else env)

    def describe(self) -> str:
        if len(self.env) == 0:
            return self.state
        body = ",".join(f"{k}={v!r}" for k, v in self.env.items())
        return f"{self.state}[{body}]"


@dataclass(frozen=True)
class RvState:
    """Global state of the rendezvous-level transition system."""

    home: ProcState
    remotes: tuple[ProcState, ...]

    @property
    def n_remotes(self) -> int:
        return len(self.remotes)

    def with_home(self, home: ProcState) -> "RvState":
        return RvState(home=home, remotes=self.remotes)

    def with_remote(self, index: int, proc: ProcState) -> "RvState":
        remotes = list(self.remotes)
        remotes[index] = proc
        return RvState(home=self.home, remotes=tuple(remotes))

    def describe(self) -> str:
        remotes = " ".join(
            f"r{i}:{p.describe()}" for i, p in enumerate(self.remotes)
        )
        return f"h:{self.home.describe()} {remotes}"
