"""Operational semantics: rendezvous level and asynchronous (refined) level."""

from .asynchronous import AsyncState, AsyncSystem, Step
from .network import ACK, NACK, NOTE, REPL, REQ, Channels, Msg
from .rendezvous import RendezvousStep, RendezvousSystem, TauStep
from .state import HOME_ID, ProcState, RvState

__all__ = [
    "ACK", "AsyncState", "AsyncSystem", "Channels", "HOME_ID", "Msg",
    "NACK", "NOTE", "ProcState", "REPL", "REQ", "RendezvousStep",
    "RendezvousSystem", "RvState", "Step", "TauStep",
]
