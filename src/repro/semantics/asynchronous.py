"""Operational semantics of refined (asynchronous) protocols.

This module executes a :class:`~repro.refine.plan.RefinedProtocol` — the
output of the paper's refinement procedure — implementing Tables 1 and 2
verbatim:

**Remote node (Table 1).**  One buffer slot for a request from home.

* C1/C2 — in an active communication state, send a request for rendezvous
  and enter a transient state; a pending buffered home request is deleted
  (the home will treat our request as an *implicit nack* for it).
* C3 — in a passive communication state, a buffered home request that
  satisfies a guard is acked (completing the rendezvous); otherwise nacked.
* T1/T2 — in the transient state, an ack completes the rendezvous; a nack
  triggers an immediate retransmission.
* T3 — a request from home arriving in a transient state is dropped.

**Home node (Table 2).**  A k >= 2 slot buffer whose last free slot is
reserved for requests that can complete a rendezvous in the current state
(*progress buffer*), plus one more slot reserved while in a transient state
for the awaited remote's message (*ack buffer*).

* C1 — complete a rendezvous with a satisfying buffered request (ack it).
* C2 — otherwise, pick the next output guard (cyclic scan, resumed after
  nacks), reserve the ack buffer (nacking a buffered request if needed —
  they are all non-satisfying here, or C1 would have fired), send a request
  and go transient.
* T1/T2 — ack completes; nack returns to the communication state and the
  scan moves to the next output guard.
* T3 — a request from the awaited remote is an implicit nack; it takes the
  reserved ack-buffer slot and the home returns to the communication state.
* T4/T5/T6 — other remotes' requests are buffered if >2 slots are free,
  buffered into the progress slot if exactly 2 are free *and* satisfying,
  and nacked otherwise.

The section 3.3 request/reply fusion and the fire-and-forget extension
(hand-designed-protocol modelling) alter only which acknowledgements are
exchanged; see :mod:`repro.refine.reqreply` for the static side.

Design note: process decisions (which guard to fire) are *deterministic*
given the local view, as in a real protocol implementation; all remaining
nondeterminism — message delivery interleaving and autonomous tau choices —
is enumerated by :meth:`AsyncSystem.successors`, which is what the model
checker explores.  The discrete-event simulator drives the same transition
core through :meth:`AsyncSystem.steps`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..refine.compiled import CompiledEngine

from ..csp.ast import Input, Output, ProcessDef, Protocol, StateDef
from ..csp.env import Env, Value
from ..errors import SemanticsError
from ..refine.plan import RefinedProtocol
from ..refine.transitions import (
    HOME as HOME_ROLE,
    KIND_NOTE,
    KIND_REPLY,
    REMOTE as REMOTE_ROLE,
    StepTable,
    TransitionSpec,
    build_step_table,
)
from .network import ACK, NACK, NOTE, REPL, REQ, Channels, Msg
from .rendezvous import RendezvousStep
from .state import HOME_ID, ProcId

__all__ = [
    "IDLE",
    "TRANS",
    "BufEntry",
    "HomeNode",
    "RemoteNode",
    "AsyncState",
    "DeliverToHome",
    "DeliverToRemote",
    "HomeStep",
    "HomeTau",
    "RemoteSend",
    "RemoteC3",
    "RemoteTau",
    "AsyncAction",
    "Step",
    "StepFootprint",
    "ENGINE_NAMES",
    "AsyncSystem",
]

IDLE = "idle"
TRANS = "trans"


# ---------------------------------------------------------------------------
# state containers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BufEntry:
    """One buffered request: who sent it, what rendezvous it asks for."""

    sender: ProcId
    msg: str
    payload: Value = None
    note: bool = False  # fire-and-forget entry: cannot be nacked or evicted

    def canonical_key(self) -> tuple:
        return (self.sender, self.msg, self.payload, self.note)

    def __getstate__(self) -> tuple:
        return (self.sender, self.msg, self.payload, self.note)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(("sender", "msg", "payload", "note"), state):
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        who = "h" if self.sender == HOME_ID else f"r{self.sender}"
        tag = "~" if self.note else ""
        return f"{tag}{who}:{self.msg}"


@dataclass(frozen=True)
class HomeNode:
    """Home-side control: AST state + refinement bookkeeping + buffer."""

    state: str
    env: Env
    mode: str = IDLE
    #: cyclic-scan position for the C2 output-guard rotation (row T2)
    out_idx: int = 0
    #: remote we are awaiting an ack/nack/reply from (mode == TRANS)
    awaiting: Optional[int] = None
    #: index (into the state's outputs tuple) of the pending output guard
    pending_out: Optional[int] = None
    buffer: tuple[BufEntry, ...] = ()

    _FIELDS = ("state", "env", "mode", "out_idx", "awaiting",
               "pending_out", "buffer")

    def __hash__(self) -> int:
        # Same formula as the dataclass-generated hash (the field tuple),
        # memoized like AsyncState.__hash__: home nodes are shared across
        # many successor states, so the visited store re-hashes each one
        # many times.  __getstate__ keeps the cache out of pickles.
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hash((self.state, self.env, self.mode, self.out_idx,
                           self.awaiting, self.pending_out, self.buffer))
            object.__setattr__(self, "_hash_cache", cached)
        return int(cached)

    def canonical_key(self) -> tuple:
        # Memoized like AsyncState.__hash__: store probes recompute the
        # key on every lookup, and the cache lives outside _FIELDS so the
        # compact __getstate__ never pickles it.
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = (self.state, self.env.canonical_key(), self.mode,
                      self.out_idx, self.awaiting, self.pending_out,
                      tuple(e.canonical_key() for e in self.buffer))
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self._FIELDS)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self._FIELDS, state):
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        tag = self.state if self.mode == IDLE else \
            f"{self.state}→r{self.awaiting}?"
        buf = ",".join(e.describe() for e in self.buffer)
        return f"{tag}{{{buf}}}"


@dataclass(frozen=True)
class RemoteNode:
    """Remote-side control: AST state + transient flag + 1-slot buffer."""

    state: str
    env: Env
    mode: str = IDLE
    pending_out: Optional[int] = None
    buf: Optional[BufEntry] = None

    _FIELDS = ("state", "env", "mode", "pending_out", "buf")

    def __hash__(self) -> int:
        # Memoized field-tuple hash; see HomeNode.__hash__.
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hash((self.state, self.env, self.mode,
                           self.pending_out, self.buf))
            object.__setattr__(self, "_hash_cache", cached)
        return int(cached)

    def canonical_key(self) -> tuple:
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = (self.state, self.env.canonical_key(), self.mode,
                      self.pending_out,
                      None if self.buf is None else self.buf.canonical_key())
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self._FIELDS)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self._FIELDS, state):
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        tag = self.state if self.mode == IDLE else f"{self.state}*"
        return tag + (f"{{{self.buf.describe()}}}" if self.buf else "")


@dataclass(frozen=True)
class AsyncState:
    """Global asynchronous state: all nodes plus the network.

    Hashed once per instance (see :class:`~repro.semantics.state.RvState`
    for the rationale): asynchronous states are deeply nested, and
    recomputing the structural hash on every visited-set probe dominated
    exploration profiles.  The cache is an ordinary attribute, invisible
    to ``==``/``replace`` and deliberately dropped by the compact
    ``__getstate__`` — a cached hash computed under one process's string
    hash seed is poison in another's dictionaries.
    """

    home: HomeNode
    remotes: tuple[RemoteNode, ...]
    channels: Channels

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hash((self.home, self.remotes, self.channels))
            object.__setattr__(self, "_hash_cache", cached)
        return int(cached)

    def canonical_key(self) -> tuple:
        """Compact primitive encoding for fingerprinting (see
        :mod:`repro.check.store`).

        Memoized exactly like ``__hash__`` — the fingerprint store calls
        this on every probe, and rebuilding the nested key tuple used to
        dominate its profiles.  ``__getstate__`` keeps the cache out of
        pickles.
        """
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            cached = ("async", self.home.canonical_key(),
                      tuple(r.canonical_key() for r in self.remotes),
                      self.channels.canonical_key())
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def __getstate__(self) -> tuple:
        return (self.home, self.remotes, self.channels)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(("home", "remotes", "channels"), state):
            object.__setattr__(self, name, value)

    def with_home(self, home: HomeNode) -> "AsyncState":
        return replace(self, home=home)

    def with_remote(self, i: int, node: RemoteNode) -> "AsyncState":
        remotes = self.remotes[:i] + (node,) + self.remotes[i + 1:]
        return replace(self, remotes=remotes)

    def with_channels(self, channels: Channels) -> "AsyncState":
        return replace(self, channels=channels)

    def describe(self) -> str:
        remotes = " ".join(f"r{i}:{r.describe()}"
                           for i, r in enumerate(self.remotes))
        return (f"h:{self.home.describe()} {remotes} "
                f"net:{self.channels.describe()}")


# ---------------------------------------------------------------------------
# actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeliverToHome:
    """Deliver the head of remote(i) -> home channel."""

    remote: int

    def describe(self) -> str:
        return f"deliver r{self.remote}→h"


@dataclass(frozen=True)
class DeliverToRemote:
    """Deliver the head of home -> remote(i) channel."""

    remote: int

    def describe(self) -> str:
        return f"deliver h→r{self.remote}"


@dataclass(frozen=True)
class HomeStep:
    """The home's (deterministic) communication-state decision.

    ``kind`` is ``"C1"`` (complete a buffered rendezvous), ``"C2"`` (send a
    request and go transient) or ``"REPLY"`` (emit a fused reply).
    """

    kind: str
    detail: str = ""

    def describe(self) -> str:
        return f"home.{self.kind}" + (f"({self.detail})" if self.detail else "")


@dataclass(frozen=True)
class HomeTau:
    label: str

    def describe(self) -> str:
        return f"home.τ:{self.label}"


@dataclass(frozen=True)
class RemoteSend:
    """Remote ``i`` goes active: rows C1/C2 of Table 1 (or a NOTE send)."""

    remote: int

    def describe(self) -> str:
        return f"r{self.remote}.send"


@dataclass(frozen=True)
class RemoteC3:
    """Remote ``i`` processes the buffered home request (row C3)."""

    remote: int

    def describe(self) -> str:
        return f"r{self.remote}.C3"


@dataclass(frozen=True)
class RemoteTau:
    remote: int
    label: str

    def describe(self) -> str:
        return f"r{self.remote}.τ:{self.label}"


AsyncAction = (DeliverToHome | DeliverToRemote | HomeStep | HomeTau
               | RemoteSend | RemoteC3 | RemoteTau)


@dataclass(frozen=True)
class StepFootprint:
    """The (node, channel, buffer-slot) objects one step touches.

    This is the independence interface the partial-order reduction in
    :mod:`repro.check.por` builds on: two steps whose footprints are
    disjoint commute.  Channels are split into *head* (pop side) and
    *tail* (push side) objects — popping the head of a non-empty FIFO
    commutes with pushing its tail, which is what makes deliveries
    independent of the sends feeding the same channel.

    :param owner: which node class the action belongs to — ``HOME_ID``
        for home decisions/taus and deliveries *to* home, the remote
        index for everything touching remote ``i``.
    :param writes: field-level write set, as ``("h", field)`` for home
        fields and ``("r", i, field)`` for remote ``i``'s fields
        (``buf`` is the remote's single buffer slot; ``buffer`` the
        home's k-slot buffer).
    :param pop: ``(channel index, popped message kind)`` for deliveries,
        ``None`` otherwise.
    :param pushes: channel indices receiving a message, in send order.
    """

    owner: ProcId
    writes: frozenset[tuple]
    pop: Optional[tuple[int, str]]
    pushes: tuple[int, ...]


@dataclass(frozen=True)
class Step:
    """One enabled transition with its observables.

    ``completes`` lists rendezvous that *finish* on this step (each
    rendezvous of the underlying protocol is reported exactly once, at the
    moment its second party commits).  ``sends`` lists messages injected
    into the network by this step, for message-count metrics.
    """

    action: AsyncAction
    state: AsyncState
    completes: tuple[RendezvousStep, ...] = ()
    sends: tuple[Msg, ...] = ()

    def footprint(self, origin: AsyncState) -> StepFootprint:
        """Compute this step's footprint relative to its origin state.

        Writes are obtained by structural field diff of ``origin``
        against the successor — the semantics layer cannot silently grow
        an effect the footprint misses.  Channel effects are reported
        separately (``pop``/``pushes``) because FIFO head and tail are
        distinct objects for commutation purposes.
        """
        action = self.action
        if isinstance(action, (DeliverToRemote, RemoteSend, RemoteC3,
                               RemoteTau)):
            owner: ProcId = action.remote
        else:
            owner = HOME_ID
        pop: Optional[tuple[int, str]] = None
        if isinstance(action, DeliverToHome):
            chan = Channels.to_home(action.remote)
            pop = (chan, origin.channels.queues[chan][0].kind)
        elif isinstance(action, DeliverToRemote):
            chan = Channels.to_remote(action.remote)
            pop = (chan, origin.channels.queues[chan][0].kind)
        writes: set[tuple] = set()
        if self.state.home is not origin.home:
            for name in HomeNode._FIELDS:
                if getattr(self.state.home, name) != getattr(origin.home,
                                                             name):
                    writes.add(("h", name))
        for i, (old, new) in enumerate(zip(origin.remotes,
                                           self.state.remotes)):
            if new is not old:
                for name in RemoteNode._FIELDS:
                    if getattr(new, name) != getattr(old, name):
                        writes.add(("r", i, name))
        pushes: list[int] = []
        for c, (old_q, new_q) in enumerate(zip(origin.channels.queues,
                                               self.state.channels.queues)):
            base = len(old_q) - (1 if pop is not None and pop[0] == c else 0)
            pushes.extend([c] * (len(new_q) - base))
        return StepFootprint(owner=owner, writes=frozenset(writes),
                             pop=pop, pushes=tuple(pushes))


# ---------------------------------------------------------------------------
# the system
# ---------------------------------------------------------------------------


#: Step-engine choices for :class:`AsyncSystem`.  ``interpreted`` walks
#: the guard AST per expansion and is the differential ground truth;
#: ``compiled`` runs the protocol-specialized module generated by
#: :mod:`repro.refine.compiled` (byte-identical steps and successors,
#: typically several times faster).
ENGINE_NAMES = ("interpreted", "compiled")


class AsyncSystem:
    """Executable asynchronous semantics for a refined protocol."""

    def __init__(self, refined: RefinedProtocol, n_remotes: int, *,
                 table: Optional[StepTable] = None,
                 engine: str = "interpreted") -> None:
        if n_remotes < 1:
            raise SemanticsError("need at least one remote node")
        if engine not in ENGINE_NAMES:
            raise SemanticsError(
                f"unknown engine {engine!r}; choose from "
                f"{', '.join(ENGINE_NAMES)}")
        self.refined = refined
        self.protocol: Protocol = refined.protocol
        self.plan = refined.plan
        self.n_remotes = n_remotes
        self.engine = engine
        self.capacity = self.plan.config.home_buffer_capacity
        # The Tables 1/2 control data (rewind/fast-forward/reply targets,
        # request kinds) comes from the step table, the same record the
        # certificate checker verifies — one transition schema, no drift.
        # Passing a mutated table injects faults for differential testing.
        self.table: StepTable = (table if table is not None
                                 else build_step_table(refined))
        self._reply_of = self.table.reply_of
        self._reply_msgs = self.table.reply_msgs
        self._notes = self.table.notes
        self._remote_fused = self.table.fused_requests(REMOTE_ROLE)
        self._home_fused = self.table.fused_requests(HOME_ROLE)
        self._compiled: Optional[CompiledEngine] = None
        if engine == "compiled":
            # Lazy import: the compiler depends on this module.  The
            # engine is built from the *same* (possibly mutated) table,
            # so fault injection behaves identically in both engines.
            from ..refine.compiled import compile_system
            self._compiled = compile_system(refined, self.table, n_remotes)

    # -- construction --------------------------------------------------------

    def initial_state(self) -> AsyncState:
        home = HomeNode(state=self.protocol.home.initial_state,
                        env=self.protocol.home.initial_env)
        remote = RemoteNode(state=self.protocol.remote.initial_state,
                            env=self.protocol.remote.initial_env)
        return AsyncState(home=home, remotes=(remote,) * self.n_remotes,
                          channels=Channels.empty(self.n_remotes))

    # -- public enumeration API ----------------------------------------------

    def steps(self, state: AsyncState) -> list[Step]:
        """All enabled transitions, with completion/send observables."""
        if self._compiled is not None:
            return self._compiled.steps(state)
        out: list[Step] = []
        for i in range(self.n_remotes):
            if state.channels.head_to_home(i) is not None:
                out.append(self._deliver_to_home(state, i))
            if state.channels.head_to_remote(i) is not None:
                out.append(self._deliver_to_remote(state, i))
        # One StateDef lookup per node per state; the guard helpers reuse
        # it instead of re-fetching per decision.
        if state.home.mode == IDLE:
            home_def = self.protocol.home.state(state.home.state)
            home_step = self._home_decision(state, home_def)
            if home_step is not None:
                out.append(home_step)
            out.extend(self._home_taus(state, home_def))
        for i in range(self.n_remotes):
            node = state.remotes[i]
            if node.mode == IDLE:
                out.extend(self._remote_steps(
                    state, i, self.protocol.remote.state(node.state)))
        return out

    def successors(self, state: AsyncState) -> list[tuple[AsyncAction, AsyncState]]:
        # The compiled engine's lean path skips Step construction (and
        # the completes/sends observables) entirely; order and states
        # are byte-identical to the interpreted enumeration.
        if self._compiled is not None:
            return self._compiled.successors(state)
        return [(s.action, s.state) for s in self.steps(state)]

    def apply(self, state: AsyncState, action: AsyncAction) -> AsyncState:
        for step in self.steps(state):
            if step.action == action:
                return step.state
        raise SemanticsError(f"action {action!r} not enabled")

    # -- home: message delivery ----------------------------------------------

    def _deliver_to_home(self, state: AsyncState, i: int) -> Step:
        msg, channels = state.channels.pop(Channels.to_home(i))
        base = state.with_channels(channels)
        action = DeliverToHome(remote=i)
        home = base.home

        if msg.kind == REQ:
            return self._home_receive_request(base, i, msg, action)

        if msg.kind == NOTE:
            # fire-and-forget notification: always enters the buffer (the
            # sender has moved on and can never be nacked).
            assert msg.msg is not None
            entry = BufEntry(sender=i, msg=msg.msg, payload=msg.payload,
                             note=True)
            new_home = replace(home, buffer=home.buffer + (entry,))
            return Step(action=action, state=base.with_home(new_home))

        # ACK / NACK / REPL are only meaningful in a transient state
        # awaiting this remote (rows T1-T2); anything else is a protocol or
        # library bug.
        if home.mode != TRANS or home.awaiting != i:
            raise SemanticsError(
                f"home received {msg.describe()} from r{i} but is not "
                f"awaiting it (state {home.describe()})")
        out_guard = self._home_pending_output(home)
        spec = self._home_pending_spec(home)

        if msg.kind == NACK:  # row T2
            new_home = replace(
                home, state=spec.rewind_to, mode=IDLE, awaiting=None,
                pending_out=None,
                out_idx=self._next_out_idx(self.protocol.home, home))
            return Step(action=action, state=base.with_home(new_home))

        # Payload expressions are effect-free functions of the sender's
        # environment, which is frozen while the sender is transient — so
        # the value observed at completion equals the one sent with the
        # request.  Evaluate once here and reuse below instead of
        # re-evaluating per branch.
        request_payload = out_guard.eval_payload(home.env)

        if msg.kind == ACK:  # row T1
            env = out_guard.apply_update(home.env)
            new_home = HomeNode(state=spec.forward_to, env=env, mode=IDLE,
                                out_idx=0, buffer=home.buffer)
            completes = (RendezvousStep(active=HOME_ID, passive=i,
                                        msg=out_guard.msg,
                                        payload=request_payload),)
            return Step(action=action, state=base.with_home(new_home),
                        completes=completes)

        if msg.kind == REPL:  # fused reply: completes request + reply
            reply_msg = spec.fused_reply
            if reply_msg is None or msg.msg != reply_msg:
                raise SemanticsError(
                    f"home got unexpected reply {msg.describe()} while "
                    f"awaiting the reply to {out_guard.msg!r}")
            assert spec.reply_to is not None
            env = out_guard.apply_update(home.env)
            mid_state = self.protocol.home.state(spec.reply_to)
            in_guard = self._find_input(mid_state, reply_msg, env, i,
                                        msg.payload, "home")
            env = in_guard.complete(env, i, msg.payload)
            new_home = HomeNode(state=in_guard.to, env=env, mode=IDLE,
                                out_idx=0, buffer=home.buffer)
            completes = (
                RendezvousStep(active=HOME_ID, passive=i, msg=out_guard.msg,
                               payload=request_payload),
                RendezvousStep(active=i, passive=HOME_ID, msg=reply_msg,
                               payload=msg.payload),
            )
            return Step(action=action, state=base.with_home(new_home),
                        completes=completes)

        raise SemanticsError(f"unknown message kind {msg.kind!r}")

    def _home_receive_request(self, base: AsyncState, i: int, msg: Msg,
                              action: DeliverToHome) -> Step:
        """Buffering rules: progress/ack reservation, implicit nack (T3-T6)."""
        home = base.home
        assert msg.msg is not None
        entry = BufEntry(sender=i, msg=msg.msg, payload=msg.payload)

        if home.mode == TRANS and home.awaiting == i:
            # Row T3: implicit nack.  The request takes the reserved
            # ack-buffer slot and the home re-enters its communication state.
            spec = self._home_pending_spec(home)
            new_home = replace(
                home, state=spec.rewind_to, mode=IDLE, awaiting=None,
                pending_out=None,
                out_idx=self._next_out_idx(self.protocol.home, home))
            if self._free_slots(home) >= 1:
                new_home = replace(new_home, buffer=new_home.buffer + (entry,))
                return Step(action=action, state=base.with_home(new_home))
            if self.plan.config.reserve_ack_buffer:
                raise SemanticsError(
                    "ack-buffer reservation violated: home is transient "
                    f"with a full buffer ({home.describe()})")
            # ablation: no ack buffer was reserved, so no slot is
            # guaranteed — the request must be nacked outright.
            nack = Msg(kind=NACK)
            channels = base.channels.send_to_remote(i, nack)
            return Step(action=action,
                        state=base.with_home(new_home).with_channels(channels),
                        sends=(nack,))

        satisfies = self._satisfies_current(home, i, msg.msg, msg.payload)
        reserved = 0
        if self.plan.config.reserve_progress_buffer and not satisfies:
            reserved += 1
        if home.mode == TRANS and self.plan.config.reserve_ack_buffer:
            reserved += 1
        if self._free_slots(home) > reserved:
            new_home = replace(home, buffer=home.buffer + (entry,))
            return Step(action=action, state=base.with_home(new_home))
        # rows T6 / the communication-state analogue: nack the request
        nack = Msg(kind=NACK)
        channels = base.channels.send_to_remote(i, nack)
        return Step(action=action, state=base.with_channels(channels),
                    sends=(nack,))

    # -- home: decisions -------------------------------------------------------

    def _home_decision(self, state: AsyncState,
                       state_def: StateDef) -> Optional[Step]:
        """Rows C1/C2 of Table 2 plus fused-reply emission (deterministic).

        The caller guarantees ``home.mode == IDLE`` and passes the home's
        current :class:`StateDef`.
        """
        if not state_def.is_communication:
            return None

        c1 = self._home_c1(state, state_def)
        if c1 is not None:
            return c1
        return self._home_c2_or_reply(state, state_def)

    def _home_c1(self, state: AsyncState, state_def: StateDef) -> Optional[Step]:
        home = state.home
        for pos, entry in enumerate(home.buffer):
            guard = self._matching_input(state_def, home.env, entry)
            if guard is None:
                continue
            env = guard.complete(home.env, entry.sender, entry.payload)
            buffer = home.buffer[:pos] + home.buffer[pos + 1:]
            new_home = HomeNode(state=guard.to, env=env, mode=IDLE,
                                out_idx=0, buffer=buffer)
            new_state = state.with_home(new_home)
            sends: tuple[Msg, ...] = ()
            completes: tuple[RendezvousStep, ...] = ()
            assert isinstance(entry.sender, int)
            if entry.note:
                # fire-and-forget: consumption is the completion point
                completes = (RendezvousStep(active=entry.sender,
                                            passive=HOME_ID, msg=entry.msg,
                                            payload=entry.payload),)
            elif entry.msg in self._remote_fused:
                # fused: no ack; the eventual reply acknowledges it.  The
                # completion is reported when the requester gets the reply.
                pass
            else:
                ack = Msg(kind=ACK)
                new_state = new_state.with_channels(
                    new_state.channels.send_to_remote(entry.sender, ack))
                sends = (ack,)
            return Step(action=HomeStep(kind="C1", detail=entry.describe()),
                        state=new_state, completes=completes, sends=sends)
        return None

    def _home_c2_or_reply(self, state: AsyncState,
                          state_def: StateDef) -> Optional[Step]:
        home = state.home
        outputs = state_def.outputs
        if not outputs:
            return None
        n = len(outputs)
        for offset in range(n):
            idx = (home.out_idx + offset) % n
            guard = outputs[idx]
            if not guard.enabled(home.env):
                continue
            assert guard.target is not None
            target = guard.target.eval(home.env)
            if not 0 <= target < self.n_remotes:
                raise SemanticsError(
                    f"home output {guard.describe()} targets r{target}")
            spec = self.table.spec(HOME_ROLE, home.state, idx)
            if spec.kind == KIND_REPLY:
                return self._home_reply(state, guard, idx, target)
            if spec.kind == KIND_NOTE:
                raise SemanticsError(
                    "fire-and-forget home outputs are not supported")
            # condition (c): pointless to request a remote that is itself
            # actively requesting us
            if any(e.sender == target and not e.note for e in home.buffer):
                continue
            return self._home_c2(state, guard, idx, target)
        return None

    def _home_reply(self, state: AsyncState, guard: Output, idx: int,
                    target: int) -> Step:
        """Emit a fused reply: the requester is waiting, no ack needed."""
        home = state.home
        payload = guard.eval_payload(home.env)
        repl = Msg(kind=REPL, msg=guard.msg, payload=payload)
        channels = state.channels.send_to_remote(target, repl)
        new_home = HomeNode(state=guard.to, env=guard.apply_update(home.env),
                            mode=IDLE, out_idx=0, buffer=home.buffer)
        return Step(action=HomeStep(kind="REPLY", detail=f"{guard.msg}→r{target}"),
                    state=state.with_home(new_home).with_channels(channels),
                    sends=(repl,))

    def _home_c2(self, state: AsyncState, guard: Output, idx: int,
                 target: int) -> Optional[Step]:
        """Row C2: allocate the ack buffer, send the request, go transient."""
        home = state.home
        channels = state.channels
        sends: list[Msg] = []
        buffer = home.buffer
        if self._free_slots(home) < 1:
            # free a slot by nacking a buffered request (they are all
            # non-satisfying here, or C1 would have fired).  NOTE entries
            # cannot be nacked; if everything is a NOTE we cannot proceed.
            victim_pos = next((p for p, e in enumerate(buffer) if not e.note),
                              None)
            if victim_pos is None:
                return None
            victim = buffer[victim_pos]
            assert isinstance(victim.sender, int)
            nack = Msg(kind=NACK)
            channels = channels.send_to_remote(victim.sender, nack)
            sends.append(nack)
            buffer = buffer[:victim_pos] + buffer[victim_pos + 1:]
        req = Msg(kind=REQ, msg=guard.msg, payload=guard.eval_payload(home.env))
        channels = channels.send_to_remote(target, req)
        sends.append(req)
        new_home = replace(home, mode=TRANS, awaiting=target,
                           pending_out=idx, buffer=buffer)
        return Step(action=HomeStep(kind="C2", detail=f"{guard.msg}→r{target}"),
                    state=state.with_home(new_home).with_channels(channels),
                    sends=tuple(sends))

    def _home_taus(self, state: AsyncState,
                   state_def: StateDef) -> Iterator[Step]:
        home = state.home
        if state_def.is_communication:
            return
        for guard in state_def.taus:
            if guard.enabled(home.env):
                new_home = HomeNode(state=guard.to,
                                    env=guard.apply_update(home.env),
                                    mode=IDLE, out_idx=0, buffer=home.buffer)
                yield Step(action=HomeTau(label=guard.label),
                           state=state.with_home(new_home))

    # -- remote: message delivery ----------------------------------------------

    def _deliver_to_remote(self, state: AsyncState, i: int) -> Step:
        msg, channels = state.channels.pop(Channels.to_remote(i))
        base = state.with_channels(channels)
        action = DeliverToRemote(remote=i)
        node = base.remotes[i]

        if msg.kind == REQ:
            if node.mode == TRANS:
                # Row T3: ignore requests from home while transient
                return Step(action=action, state=base)
            if node.buf is not None:
                raise SemanticsError(
                    f"remote r{i} single-slot buffer overflow "
                    f"({node.describe()} receiving {msg.describe()})")
            assert msg.msg is not None
            entry = BufEntry(sender=HOME_ID, msg=msg.msg, payload=msg.payload)
            return Step(action=action,
                        state=base.with_remote(i, replace(node, buf=entry)))

        if node.mode != TRANS:
            raise SemanticsError(
                f"remote r{i} received {msg.describe()} while not transient")
        out_guard = self._remote_pending_output(node)
        spec = self._remote_pending_spec(node)
        # Evaluated once per delivery (see the home-side twin above): the
        # remote's env is frozen while transient, so the retransmitted
        # request and the completion observable must carry the same value.
        request_payload = out_guard.eval_payload(node.env)

        if msg.kind == NACK:  # row T2: retransmit immediately
            retry = Msg(kind=REQ, msg=out_guard.msg, payload=request_payload)
            channels2 = base.channels.send_to_home(i, retry)
            return Step(action=action, state=base.with_channels(channels2),
                        sends=(retry,))

        if msg.kind == ACK:  # row T1
            env = out_guard.apply_update(node.env)
            new_node = RemoteNode(state=spec.forward_to, env=env, mode=IDLE)
            completes = (RendezvousStep(active=i, passive=HOME_ID,
                                        msg=out_guard.msg,
                                        payload=request_payload),)
            return Step(action=action, state=base.with_remote(i, new_node),
                        completes=completes)

        if msg.kind == REPL:
            reply_msg = spec.fused_reply
            if reply_msg is None or msg.msg != reply_msg:
                raise SemanticsError(
                    f"remote r{i} got unexpected reply {msg.describe()} "
                    f"while awaiting the reply to {out_guard.msg!r}")
            assert spec.reply_to is not None
            env = out_guard.apply_update(node.env)
            mid_state = self.protocol.remote.state(spec.reply_to)
            in_guard = self._find_input(mid_state, reply_msg, env, -1,
                                        msg.payload, f"remote r{i}")
            env = in_guard.complete(env, -1, msg.payload)
            new_node = RemoteNode(state=in_guard.to, env=env, mode=IDLE)
            completes = (
                RendezvousStep(active=i, passive=HOME_ID, msg=out_guard.msg,
                               payload=request_payload),
                RendezvousStep(active=HOME_ID, passive=i, msg=reply_msg,
                               payload=msg.payload),
            )
            return Step(action=action, state=base.with_remote(i, new_node),
                        completes=completes)

        raise SemanticsError(f"unknown message kind {msg.kind!r}")

    # -- remote: decisions -------------------------------------------------------

    def _remote_steps(self, state: AsyncState, i: int,
                      state_def: StateDef) -> Iterator[Step]:
        node = state.remotes[i]
        outputs = state_def.outputs
        if outputs:
            guard = outputs[0]  # validated: active states have exactly one
            if guard.enabled(node.env):
                yield self._remote_send(state, i, guard)
            return
        if node.buf is not None and state_def.is_communication:
            yield self._remote_c3(state, i, state_def)
        for guard in state_def.taus:
            if guard.enabled(node.env):
                new_node = replace(node, state=guard.to,
                                   env=guard.apply_update(node.env))
                yield Step(action=RemoteTau(remote=i, label=guard.label),
                           state=state.with_remote(i, new_node))

    def _remote_send(self, state: AsyncState, i: int, guard: Output) -> Step:
        """Rows C1/C2 of Table 1 (plus the fire-and-forget extension)."""
        node = state.remotes[i]
        payload = guard.eval_payload(node.env)
        spec = self.table.spec(REMOTE_ROLE, node.state, 0)
        if spec.kind == KIND_NOTE:
            note = Msg(kind=NOTE, msg=guard.msg, payload=payload)
            channels = state.channels.send_to_home(i, note)
            new_node = RemoteNode(state=spec.forward_to,
                                  env=guard.apply_update(node.env),
                                  mode=IDLE, buf=node.buf)
            return Step(action=RemoteSend(remote=i),
                        state=state.with_remote(i, new_node)
                                  .with_channels(channels),
                        sends=(note,))
        req = Msg(kind=REQ, msg=guard.msg, payload=payload)
        channels = state.channels.send_to_home(i, req)
        # row C2: deleting a pending home request constitutes the implicit
        # nack — the home will learn of it from our request's arrival.
        new_node = RemoteNode(state=node.state, env=node.env, mode=TRANS,
                              pending_out=0, buf=None)
        return Step(action=RemoteSend(remote=i),
                    state=state.with_remote(i, new_node)
                              .with_channels(channels),
                    sends=(req,))

    def _remote_c3(self, state: AsyncState, i: int,
                   state_def: StateDef) -> Step:
        """Row C3: ack a satisfying home request, nack otherwise."""
        node = state.remotes[i]
        entry = node.buf
        assert entry is not None
        guard = self._matching_input(state_def, node.env, entry)
        if guard is None:
            nack = Msg(kind=NACK)
            channels = state.channels.send_to_home(i, nack)
            new_node = replace(node, buf=None)
            return Step(action=RemoteC3(remote=i),
                        state=state.with_remote(i, new_node)
                                  .with_channels(channels),
                        sends=(nack,))

        env = guard.complete(node.env, -1, entry.payload)
        if entry.msg in self._home_fused:
            # responder side of a home-initiated fused pair: perform local
            # actions only, then answer with the reply (which also serves
            # as the ack of the request).
            return self._remote_fused_response(state, i, entry, guard, env)
        ack = Msg(kind=ACK)
        channels = state.channels.send_to_home(i, ack)
        new_node = RemoteNode(state=guard.to, env=env, mode=IDLE)
        completes = (RendezvousStep(active=HOME_ID, passive=i, msg=entry.msg,
                                    payload=entry.payload),)
        return Step(action=RemoteC3(remote=i),
                    state=state.with_remote(i, new_node)
                              .with_channels(channels),
                    completes=completes, sends=(ack,))

    def _remote_fused_response(self, state: AsyncState, i: int,
                               entry: BufEntry, guard: Input,
                               env: Env) -> Step:
        cursor = self.protocol.remote.state(guard.to)
        hops = 0
        while cursor.is_internal and len(cursor.guards) == 1:
            tau = cursor.taus[0]
            if not tau.enabled(env):
                raise SemanticsError(
                    f"fused-response local action {tau.describe()} disabled")
            env = tau.apply_update(env)
            cursor = self.protocol.remote.state(tau.to)
            hops += 1
            if hops > len(self.protocol.remote.states):
                raise SemanticsError("fused response stuck in internal loop")
        reply_msg = self._reply_of[entry.msg]
        if not (len(cursor.guards) == 1
                and isinstance(cursor.guards[0], Output)
                and cursor.guards[0].msg == reply_msg):
            raise SemanticsError(
                f"fused response: expected sole output {reply_msg!r} "
                f"in state {cursor.name!r}")
        out_guard = cursor.guards[0]
        payload = out_guard.eval_payload(env)
        repl = Msg(kind=REPL, msg=reply_msg, payload=payload)
        channels = state.channels.send_to_home(i, repl)
        new_node = RemoteNode(state=out_guard.to,
                              env=out_guard.apply_update(env), mode=IDLE)
        return Step(action=RemoteC3(remote=i),
                    state=state.with_remote(i, new_node)
                              .with_channels(channels),
                    sends=(repl,))

    # -- helpers -----------------------------------------------------------------

    def _free_slots(self, home: HomeNode) -> int:
        """Free request-buffer slots.

        Fire-and-forget notes do not count against the k-slot request
        buffer: they can never be refused, so a hand-designed protocol
        using them implicitly requires *dedicated* buffering for them over
        and above the paper's k slots (the fairness benchmark measures how
        much).  Counting them here would instead let a note steal the
        reserved ack-buffer slot and break the T3 implicit-nack guarantee —
        which is exactly what happened when this library first model-checked
        the hand-designed migratory protocol at three nodes.
        """
        return self.capacity - sum(1 for e in home.buffer if not e.note)

    def _satisfies_current(self, home: HomeNode, sender: int, msg: str,
                           payload: Value) -> bool:
        """Would this request complete a rendezvous in the home's current
        communication state?  (The progress-buffer criterion.)"""
        state_def = self.protocol.home.state(home.state)
        entry = BufEntry(sender=sender, msg=msg, payload=payload)
        return self._matching_input(state_def, home.env, entry) is not None

    @staticmethod
    def _matching_input(state_def: StateDef, env: Env,
                        entry: BufEntry) -> Optional[Input]:
        sender = entry.sender if isinstance(entry.sender, int) else -1
        for guard in state_def.inputs:
            if guard.msg == entry.msg and guard.accepts(env, sender,
                                                        entry.payload):
                return guard
        return None

    def _home_pending_output(self, home: HomeNode) -> Output:
        if home.pending_out is None:
            raise SemanticsError("home has no pending output in TRANS mode")
        return self.protocol.home.state(home.state).outputs[home.pending_out]

    def _remote_pending_output(self, node: RemoteNode) -> Output:
        if node.pending_out is None:
            raise SemanticsError("remote has no pending output in TRANS mode")
        return self.protocol.remote.state(node.state).outputs[node.pending_out]

    def _home_pending_spec(self, home: HomeNode) -> TransitionSpec:
        if home.pending_out is None:
            raise SemanticsError("home has no pending output in TRANS mode")
        return self.table.spec(HOME_ROLE, home.state, home.pending_out)

    def _remote_pending_spec(self, node: RemoteNode) -> TransitionSpec:
        if node.pending_out is None:
            raise SemanticsError("remote has no pending output in TRANS mode")
        return self.table.spec(REMOTE_ROLE, node.state, node.pending_out)

    def _next_out_idx(self, process: ProcessDef, home: HomeNode) -> int:
        outputs = process.state(home.state).outputs
        if not outputs or home.pending_out is None:
            return 0
        return (home.pending_out + 1) % len(outputs)

    @staticmethod
    def _find_input(state_def: StateDef, msg: str, env: Env, sender: int,
                    payload: Value, who: str) -> Input:
        for guard in state_def.inputs:
            if guard.msg == msg and guard.accepts(env, sender, payload):
                return guard
        raise SemanticsError(
            f"{who}: no input guard in state {state_def.name!r} accepts "
            f"the fused reply {msg!r}")
