"""repro — reproduction of *Deriving Efficient Cache Coherence Protocols
through Refinement* (Nalumasu & Gopalakrishnan, IPPS 1998 / UUCS-97-009).

Quickstart::

    from repro import migratory_protocol, refine, RendezvousSystem, AsyncSystem
    from repro import explore, check_progress, check_simulation

    protocol = migratory_protocol()                 # Figures 2-3
    refined = refine(protocol)                      # Tables 1-2 + section 3.3
    print(explore(RendezvousSystem(protocol, 4)).describe())
    print(explore(AsyncSystem(refined, 2)).describe())
    print(check_simulation(AsyncSystem(refined, 2)).describe())  # Equation 1

Layering (bottom up): :mod:`repro.csp` (specification language),
:mod:`repro.semantics` (rendezvous and asynchronous operational semantics),
:mod:`repro.refine` (the refinement procedure and its soundness witness),
:mod:`repro.check` (explicit-state model checking), :mod:`repro.protocols`
(the protocol library), :mod:`repro.sim` (discrete-event DSM simulator),
:mod:`repro.viz` (state-machine rendering).
"""

from .analysis import (
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze_protocol,
    analyze_refined,
)
from .csp.ast import DATA, HOME, Protocol
from .csp.builder import ProcessBuilder, inp, out, protocol, tau
from .csp.env import Env
from .csp.validate import validate_protocol
from .check.explorer import explore
from .check.properties import assert_safe, check_progress
from .check.simulation import check_simulation
from .errors import (
    BudgetExceeded,
    CheckError,
    PropertyViolation,
    RefinementError,
    ReproError,
    SemanticsError,
    SpecError,
    ValidationError,
)
from .refine.abstraction import abstract_state
from .refine.engine import refine
from .refine.plan import FusedPair, RefinedProtocol, RefinementConfig
from .refine.reqreply import fusability_report
from .protocols.handwritten import handwritten_migratory
from .protocols.invalidate import invalidate_protocol
from .protocols.invariants import (
    INVALIDATE_SPEC,
    MESI_SPEC,
    MIGRATORY_SPEC,
    MSI_SPEC,
    async_structural_invariants,
    coherence_invariants,
)
from .protocols.mesi import mesi_protocol
from .protocols.migratory import migratory_protocol
from .protocols.msi import msi_protocol
from .semantics.asynchronous import AsyncSystem
from .semantics.rendezvous import RendezvousSystem

__version__ = "0.1.0"

__all__ = [
    "AnalysisReport",
    "AsyncSystem",
    "BudgetExceeded",
    "CheckError",
    "DATA",
    "Diagnostic",
    "Env",
    "FusedPair",
    "HOME",
    "INVALIDATE_SPEC",
    "MIGRATORY_SPEC",
    "MESI_SPEC",
    "MSI_SPEC",
    "ProcessBuilder",
    "PropertyViolation",
    "Protocol",
    "RefinedProtocol",
    "RefinementConfig",
    "RefinementError",
    "RendezvousSystem",
    "ReproError",
    "SemanticsError",
    "Severity",
    "SpecError",
    "ValidationError",
    "abstract_state",
    "analyze_protocol",
    "analyze_refined",
    "assert_safe",
    "async_structural_invariants",
    "check_progress",
    "check_simulation",
    "coherence_invariants",
    "explore",
    "fusability_report",
    "handwritten_migratory",
    "inp",
    "invalidate_protocol",
    "mesi_protocol",
    "migratory_protocol",
    "msi_protocol",
    "out",
    "protocol",
    "refine",
    "tau",
    "validate_protocol",
]
