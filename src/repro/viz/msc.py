"""ASCII message-sequence charts from simulation traces.

Renders the :class:`~repro.sim.trace.TraceEvent` log of a simulator run as
the classic protocol-engineering diagram: one vertical lifeline per node
(home first, then the remotes), time flowing downward, arrows for message
*deliveries* (a send shows as the arrow's origin annotation), and ``✓``
marks for completed rendezvous.

Example (migratory, one acquire)::

    time       h                 r0
    10.00      │◀───req:req──────┤
    10.00      ├────repl:gr─────▶│
    17.20      │                 ✓ req, gr

Use ``Simulator(..., record_trace=True)`` and pass ``simulator.trace``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..sim.trace import TraceEvent

__all__ = ["render_counterexample_msc", "render_msc"]

_LANE_WIDTH = 18


def _lane_names(n_remotes: int) -> list[str]:
    return ["h"] + [f"r{i}" for i in range(n_remotes)]


def render_msc(events: Iterable[TraceEvent], n_remotes: int,
               *, max_events: Optional[int] = None,
               show_sends: bool = False) -> str:
    """Render a trace as an ASCII message-sequence chart.

    :param show_sends: also print a row when a message *enters* the
        network (off by default — the delivery row usually tells the
        story, and contended runs double in length otherwise).
    """
    lanes = _lane_names(n_remotes)
    column = {name: index for index, name in enumerate(lanes)}

    header = "time".ljust(11) + "".join(
        name.center(_LANE_WIDTH) for name in lanes)
    lines = [header]

    shown = [e for e in events if show_sends or e.kind != "send"]
    for event in shown[:max_events]:
        lines.append(_render_row(event, lanes, column))
    if max_events is not None and len(shown) > max_events:
        lines.append(f"... ({len(shown) - max_events} more events)")
    return "\n".join(lines)


def render_counterexample_msc(cex: Any, n_remotes: int,
                              *, max_events: Optional[int] = None) -> str:
    """Render an explorer :class:`~repro.check.stats.Counterexample`
    over rendezvous actions as a message-sequence chart.

    Rendezvous steps become delivery arrows from the active to the
    passive party; tau steps become ``✓`` marks on their process's
    lifeline.  Used by ``repro paramverify`` to show concrete coherence
    refutation witnesses; works for any trace whose steps are
    :class:`~repro.semantics.rendezvous.TauStep` /
    :class:`~repro.semantics.rendezvous.RendezvousStep` actions.
    """
    from ..semantics.rendezvous import RendezvousStep, TauStep
    from ..semantics.state import HOME_ID

    def lane(proc: Any) -> str:
        return "h" if proc == HOME_ID else f"r{proc}"

    events = []
    for index, step in enumerate(cex.steps):
        time = float(index)
        if isinstance(step, RendezvousStep):
            events.append(TraceEvent(
                time=time, kind="deliver", src=lane(step.active),
                dst=lane(step.passive), label=step.msg,
                payload=step.payload))
        elif isinstance(step, TauStep):
            who = lane(step.proc)
            events.append(TraceEvent(time=time, kind="complete", src=who,
                                     dst=who, label=f"τ:{step.label}"))
        else:  # abstract/foreign actions: annotate on the home lifeline
            describe = getattr(step, "describe", None)
            label = describe() if callable(describe) else repr(step)
            events.append(TraceEvent(time=time, kind="complete", src="h",
                                     dst="h", label=label))
    return render_msc(events, n_remotes, max_events=max_events)


def _render_row(event: TraceEvent, lanes: list[str],
                column: dict[str, int]) -> str:
    time_text = f"{event.time:<11.2f}"
    if event.kind == "complete":
        cells = []
        for name in lanes:
            if name == event.dst:
                cells.append(f"✓ {event.label}".center(_LANE_WIDTH))
            elif name == event.src:
                cells.append("✓".center(_LANE_WIDTH))
            else:
                cells.append("│".center(_LANE_WIDTH))
        return time_text + "".join(cells)

    src_col, dst_col = column[event.src], column[event.dst]
    left, right = min(src_col, dst_col), max(src_col, dst_col)
    rightward = dst_col > src_col
    label = event.label
    if event.kind == "send":
        label += " (sent)"

    cells = []
    for index, name in enumerate(lanes):
        if index < left or index > right:
            cells.append("│".center(_LANE_WIDTH))
        elif index == left:
            cells.append("├" + "─" * (_LANE_WIDTH - 1) if rightward
                         else "◀" + "─" * (_LANE_WIDTH - 1))
        elif index == right:
            head = ("▶" if rightward else "┤")
            cells.append("─" * (_LANE_WIDTH - 1) + head)
        else:
            cells.append("─" * _LANE_WIDTH)
    row = time_text + "".join(cells)
    # splice the label into the middle of the arrow
    body_start = 11 + left * _LANE_WIDTH + 2
    body_end = 11 + (right + 1) * _LANE_WIDTH - 2
    middle = (body_start + body_end - len(label)) // 2
    if middle > body_start:
        row = row[:middle] + label + row[middle + len(label):]
    return row
