"""Rendering of protocol state machines (DOT and plain text)."""

from .ascii import process_ascii, protocol_summary, refined_ascii
from .dot import process_dot, refined_dot
from .msc import render_msc

__all__ = ["process_ascii", "process_dot", "protocol_summary",
           "refined_ascii", "refined_dot", "render_msc"]
