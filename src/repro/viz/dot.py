"""Graphviz DOT rendering of rendezvous and refined state machines.

``process_dot`` draws a rendezvous-level process — Figures 1, 2 and 3 of
the paper.  ``refined_dot`` draws the *refined* machine — Figures 4 and 5 —
by materializing the transient states the refinement introduces (shown
dotted, as in the paper), the ack/nack edges, the implicit-nack edge
(``[nack]``), the transient self-loop on ignored requests (``h??*``) and
the fused request/reply short-cuts.

``flow_dot`` draws a derived *flow graph*
(:class:`~repro.analysis.flows.FlowGraph`): stable home states as double
circles, one dashed cluster per flow with its SEND/RECV/WAIT event chain,
entry edges from the stable state each flow leaves and exit edges back to
the stable states it can land in.

The output is plain DOT text: render with ``dot -Tpng`` if Graphviz is
available, or read directly — node/edge labels follow the paper's
``??``/``!!`` notation for asynchronous receives/sends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..csp.ast import Input, Output, ProcessDef, ProcessKind, StateDef, Tau
from ..refine.plan import RefinedProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.flows import FlowGraph

__all__ = ["flow_dot", "process_dot", "refined_dot"]


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def process_dot(process: ProcessDef, title: str | None = None) -> str:
    """Render a rendezvous-level process as a DOT digraph."""
    lines = [f'digraph "{_escape(title or process.name)}" {{',
             "  rankdir=LR;",
             '  node [shape=circle, fontsize=11];',
             f'  __start [shape=point, label=""];',
             f'  __start -> "{_escape(process.initial_state)}";']
    for state in process.states.values():
        shape = "circle" if state.is_communication else "doublecircle"
        lines.append(f'  "{_escape(state.name)}" [shape={shape}];')
        for guard in state.guards:
            label = guard.describe()
            style = "dashed" if isinstance(guard, Tau) else "solid"
            lines.append(
                f'  "{_escape(state.name)}" -> "{_escape(guard.to)}" '
                f'[label="{_escape(label)}", style={style}];')
    lines.append("}")
    return "\n".join(lines)


def reply_destination(process: ProcessDef, guard: Output,
                      reply: str) -> str:
    """Where a fused reply lands: past the intermediate reply-wait state."""
    mid = process.state(guard.to)
    for candidate in mid.inputs:
        if candidate.msg == reply:
            return candidate.to
    return guard.to


def refined_dot(refined: RefinedProtocol, side: str,
                title: str | None = None) -> str:
    """Render one side of the refined machine (``"home"``/``"remote"``)."""
    if side == ProcessKind.HOME:
        process = refined.protocol.home
    elif side == ProcessKind.REMOTE:
        process = refined.protocol.remote
    else:
        raise ValueError(f"side must be 'home' or 'remote', got {side!r}")

    plan = refined.plan
    home_side = side == ProcessKind.HOME
    peer = "r" if home_side else "h"

    lines = [f'digraph "{_escape(title or f"{process.name} (refined)")}" {{',
             "  rankdir=LR;",
             "  node [shape=circle, fontsize=11];",
             '  __start [shape=point, label=""];',
             f'  __start -> "{_escape(process.initial_state)}";']

    def edge(src: str, dst: str, label: str, dotted: bool = False) -> None:
        style = ", style=dotted" if dotted else ""
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}" '
                     f'[label="{_escape(label)}"{style}];')

    for state in process.states.values():
        lines.append(f'  "{_escape(state.name)}";')
        for guard in state.taus:
            edge(state.name, guard.to, guard.describe(), dotted=False)
        for guard in state.inputs:
            _render_input(edge, plan, process, state, guard, home_side, peer)
        for idx, guard in enumerate(state.outputs):
            _render_output(lines, edge, plan, process, state, guard, idx,
                           home_side, peer)
    lines.append("}")
    return "\n".join(lines)


def _peer_name(guard, home_side: bool) -> str:
    if not home_side:
        return "h"
    pattern = getattr(guard, "sender", None) or getattr(guard, "target", None)
    return pattern.describe() if pattern is not None else "r(?)"


def _render_input(edge, plan, process: ProcessDef, state: StateDef,
                  guard: Input, home_side: bool, peer: str) -> None:
    """Passive side: buffered requests acked (C3/C1) or consumed fused."""
    who = _peer_name(guard, home_side)
    fused_request = plan.is_fused_request(guard.msg,
                                          sender_is_home=not home_side)
    note = guard.msg in plan.fire_and_forget
    if fused_request and not home_side:
        # responder of a home-initiated pair: the reply edge is drawn from
        # the consuming state straight through the local chain
        reply = plan.reply_of[guard.msg]
        edge(state.name, guard.to, f"{who}??{guard.msg} ⇒ …!!{reply}")
        return
    if guard.msg in plan.reply_msgs:
        # reply inputs are consumed inside the requester's transient wait;
        # drawn dotted for reference only
        edge(state.name, guard.to, f"{who}??{guard.msg} (in transient)",
             dotted=True)
        return
    suffix = "" if (fused_request or note) else f" / {who}!!ack"
    edge(state.name, guard.to, f"{who}??{guard.msg}{suffix}")


def _render_output(lines, edge, plan, process: ProcessDef, state: StateDef,
                   guard: Output, idx: int, home_side: bool,
                   peer: str) -> None:
    who = _peer_name(guard, home_side)
    if guard.msg in plan.fire_and_forget:
        edge(state.name, guard.to, f"{who}!!{guard.msg} (no ack)")
        return
    if home_side and guard.msg in plan.reply_msgs:
        # fused reply: sent without awaiting any acknowledgement
        edge(state.name, guard.to, f"{who}!!{guard.msg} (reply)")
        return
    if not home_side and guard.msg in plan.reply_msgs:
        edge(state.name, guard.to, f"{who}!!{guard.msg} (reply)")
        return

    trans = f"{state.name}·{guard.msg}"
    lines.append(f'  "{_escape(trans)}" [style=dotted, '
                 f'label="{_escape(trans)}"];')
    edge(state.name, trans, f"{who}!!{guard.msg}")

    fused = plan.is_fused_request(guard.msg, sender_is_home=home_side)
    if fused:
        reply = plan.reply_of[guard.msg]
        edge(trans, reply_destination(process, guard, reply),
             f"{who}??{reply}", dotted=True)
    else:
        edge(trans, guard.to, f"{who}??ack", dotted=True)

    if home_side:
        # explicit or implicit nack returns the home to the communication
        # state, where the next output guard is attempted (row T2/T3)
        edge(trans, state.name, "[nack]", dotted=True)
        edge(trans, trans, "r(x)??msg/nack", dotted=True)
    else:
        edge(trans, trans, "h??nack / retransmit", dotted=True)
        edge(trans, trans, "h??*", dotted=True)


def flow_dot(graph: "FlowGraph", title: str | None = None) -> str:
    """Render a derived flow graph as a DOT digraph.

    Stable home states are shared double-circle nodes; each flow becomes
    a dashed cluster holding its event chain (WAIT events shown as
    diamonds), with an entry edge from the stable state the flow leaves
    and exit edges to the stable states it can land in.
    """
    lines = [f'digraph "{_escape(title or f"{graph.protocol} flows")}" {{',
             "  rankdir=LR;",
             "  node [fontsize=11];"]
    for state in sorted(graph.stable_states):
        lines.append(f'  "{_escape(state)}" [shape=doublecircle];')
    for i, flow in enumerate(graph.flows):
        nodes = [f"f{i}e{j}" for j in range(len(flow.events))]
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f'    label="{_escape(flow.name)} ({flow.kind})";')
        lines.append("    style=dashed; fontsize=10;")
        for node, event in zip(nodes, flow.events):
            shape = "diamond" if event.kind == "wait" else "box"
            lines.append(f'    {node} [shape={shape}, '
                         f'label="{_escape(event.describe())}"];')
        for src, dst in zip(nodes, nodes[1:]):
            lines.append(f"    {src} -> {dst};")
        lines.append("  }")
        if nodes:
            if flow.entry_state in graph.stable_states:
                lines.append(f'  "{_escape(flow.entry_state)}" -> {nodes[0]} '
                             "[style=dotted];")
            for exit_state in sorted(flow.exit_states):
                if exit_state in graph.stable_states:
                    lines.append(f'  {nodes[-1]} -> "{_escape(exit_state)}" '
                                 "[style=dotted];")
    lines.append("}")
    return "\n".join(lines)
