"""Plain-text rendering of protocol state machines (terminal-friendly).

One line per transition, grouped by source state, using the paper's
notation: ``?``/``!`` for rendezvous guards, ``??``/``!!`` for refined
asynchronous actions, ``τ`` for autonomous decisions, and ``(dotted)``
markers for the refinement's transient states.
"""

from __future__ import annotations

from ..csp.ast import ProcessDef, ProcessKind
from ..refine.plan import RefinedProtocol
from .dot import reply_destination

__all__ = ["process_ascii", "refined_ascii", "protocol_summary"]


def process_ascii(process: ProcessDef) -> str:
    """Text table of a rendezvous-level process (Figures 1-3 style)."""
    lines = [f"process {process.name} ({process.kind}), "
             f"initial state {process.initial_state}"]
    if len(process.initial_env):
        bindings = ", ".join(f"{k}={v!r}"
                             for k, v in process.initial_env.items())
        lines.append(f"  vars: {bindings}")
    for state in process.states.values():
        kind = ("internal" if state.is_internal else
                "communication" if state.is_communication else "terminal")
        lines.append(f"  {state.name} [{kind}]")
        for guard in state.guards:
            lines.append(f"    {guard.describe():<24} -> {guard.to}")
    return "\n".join(lines)


def refined_ascii(refined: RefinedProtocol, side: str) -> str:
    """Text rendering of one refined machine (Figures 4-5 style)."""
    process = (refined.protocol.home if side == ProcessKind.HOME
               else refined.protocol.remote)
    plan = refined.plan
    home_side = side == ProcessKind.HOME
    lines = [f"refined {process.name} [{plan.describe()}]"]
    for state in process.states.values():
        lines.append(f"  {state.name}")
        for guard in state.taus:
            lines.append(f"    {guard.describe():<30} -> {guard.to}")
        for guard in state.inputs:
            fused = plan.is_fused_request(guard.msg,
                                          sender_is_home=not home_side)
            note = guard.msg in plan.fire_and_forget
            if fused and not home_side:
                reply = plan.reply_of[guard.msg]
                lines.append(f"    ??{guard.msg} ⇒ !!{reply:<18} -> "
                             f"(fused response)")
            elif guard.msg in plan.reply_msgs:
                lines.append(f"    ??{guard.msg} (reply){'':<13} "
                             f"-> {guard.to}  (consumed in transient wait)")
            else:
                suffix = "" if (fused or note) else " / !!ack"
                lines.append(f"    ??{guard.msg}{suffix:<18} -> {guard.to}")
        for guard in state.outputs:
            if guard.msg in plan.fire_and_forget:
                lines.append(f"    !!{guard.msg} (no ack){'':<12} -> {guard.to}")
            elif guard.msg in plan.reply_msgs:
                lines.append(f"    !!{guard.msg} (reply){'':<13} -> {guard.to}")
            else:
                trans = f"{state.name}·{guard.msg}"
                fused = plan.is_fused_request(guard.msg,
                                              sender_is_home=home_side)
                if fused:
                    reply = plan.reply_of[guard.msg]
                    wait = f"??{reply}"
                    landing = reply_destination(process, guard, reply)
                else:
                    wait, landing = "??ack", guard.to
                lines.append(f"    !!{guard.msg:<26} -> {trans} (dotted)")
                lines.append(f"      {trans}: {wait} -> {landing}"
                             + ("; [nack] -> retry next guard"
                                if home_side else
                                "; ??nack -> retransmit; ??* ignored"))
    return "\n".join(lines)


def protocol_summary(refined: RefinedProtocol) -> str:
    """One-paragraph summary of a refinement result."""
    plan = refined.plan
    proto = refined.protocol
    n_home = len(proto.home.states)
    n_remote = len(proto.remote.states)
    transients_home = sum(len(s.outputs) for s in proto.home.states.values()
                          if s.outputs)
    transients_remote = sum(len(s.outputs)
                            for s in proto.remote.states.values())
    return (
        f"{proto.name}: home {n_home} states (+{transients_home} transient), "
        f"remote {n_remote} states (+{transients_remote} transient); "
        f"{plan.describe()}"
    )
