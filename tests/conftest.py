"""Shared fixtures: canonical protocols and small refined systems."""

from __future__ import annotations

import pytest

from repro import (
    AsyncSystem,
    RefinementConfig,
    RendezvousSystem,
    invalidate_protocol,
    migratory_protocol,
    msi_protocol,
    refine,
)


@pytest.fixture(scope="session")
def migratory():
    return migratory_protocol()


@pytest.fixture(scope="session")
def migratory_rw():
    return migratory_protocol(explicit_rw=True)


@pytest.fixture(scope="session")
def invalidate():
    return invalidate_protocol()


@pytest.fixture(scope="session")
def msi():
    return msi_protocol()


@pytest.fixture(scope="session")
def migratory_refined(migratory):
    return refine(migratory)


@pytest.fixture(scope="session")
def migratory_refined_plain(migratory):
    """Refined without the request/reply optimization (pure Tables 1-2)."""
    return refine(migratory, RefinementConfig(use_reqreply=False))


@pytest.fixture(scope="session")
def invalidate_refined(invalidate):
    return refine(invalidate)


@pytest.fixture(scope="session")
def msi_refined(msi):
    return refine(msi)


@pytest.fixture
def migratory_rv2(migratory):
    return RendezvousSystem(migratory, 2)


@pytest.fixture
def migratory_async2(migratory_refined):
    return AsyncSystem(migratory_refined, 2)
