"""Property-based tests for symmetry normalization.

The defining algebraic property: normalization is invariant under remote
permutations — permuting a state's remote identities (consistently through
envs, buffers, channels) and normalizing gives the same representative as
normalizing the original.  Checked on states sampled from real reachable
sets under random permutations.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import AsyncSystem, RendezvousSystem, explore, migratory_protocol
from repro.check.symmetry import normalize
from repro.protocols.symmetry import MIGRATORY_SYMMETRY
from repro.semantics.asynchronous import AsyncState, BufEntry, HomeNode
from repro.semantics.network import Channels
from repro.semantics.state import ProcState, RvState

N = 3

_protocol = migratory_protocol()
_rv_states = list(explore(RendezvousSystem(_protocol, N),
                          keep_graph=True).graph)

from repro import refine  # noqa: E402

_async_states = list(explore(AsyncSystem(refine(_protocol), N),
                             keep_graph=True).graph)


def permute_rv(state: RvState, perm: list[int]) -> RvState:
    """Apply a remote permutation consistently (old i -> perm[i])."""
    remotes = [None] * N
    for old, proc in enumerate(state.remotes):
        remotes[perm[old]] = proc
    changes = {}
    for var in ("o", "j"):
        value = state.home.env[var]
        if isinstance(value, int):
            changes[var] = perm[value]
    env = state.home.env.update(changes) if changes else state.home.env
    return RvState(home=ProcState(state.home.state, env),
                   remotes=tuple(remotes))


def permute_async(state: AsyncState, perm: list[int]) -> AsyncState:
    remotes = [None] * N
    for old, node in enumerate(state.remotes):
        remotes[perm[old]] = node
    queues = [()] * (2 * N)
    for old in range(N):
        queues[Channels.to_remote(perm[old])] = \
            state.channels.queues[Channels.to_remote(old)]
        queues[Channels.to_home(perm[old])] = \
            state.channels.queues[Channels.to_home(old)]
    buffer = tuple(
        BufEntry(sender=perm[e.sender] if isinstance(e.sender, int)
                 else e.sender, msg=e.msg, payload=e.payload, note=e.note)
        for e in state.home.buffer)
    changes = {}
    for var in ("o", "j"):
        value = state.home.env[var]
        if isinstance(value, int):
            changes[var] = perm[value]
    env = state.home.env.update(changes) if changes else state.home.env
    awaiting = (perm[state.home.awaiting]
                if isinstance(state.home.awaiting, int)
                else state.home.awaiting)
    home = HomeNode(state=state.home.state, env=env, mode=state.home.mode,
                    out_idx=state.home.out_idx, awaiting=awaiting,
                    pending_out=state.home.pending_out, buffer=buffer)
    return AsyncState(home=home, remotes=tuple(remotes),
                      channels=Channels(queues=tuple(queues)))


perms = st.permutations(list(range(N)))


class TestOrbitInvariance:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(_rv_states), perms)
    def test_rv_normalization_permutation_invariant(self, state, perm):
        permuted = permute_rv(state, list(perm))
        assert normalize(state, MIGRATORY_SYMMETRY) == \
            normalize(permuted, MIGRATORY_SYMMETRY)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(_async_states), perms)
    def test_async_normalization_permutation_invariant(self, state, perm):
        permuted = permute_async(state, list(perm))
        assert normalize(state, MIGRATORY_SYMMETRY) == \
            normalize(permuted, MIGRATORY_SYMMETRY)

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(_async_states))
    def test_idempotence(self, state):
        once = normalize(state, MIGRATORY_SYMMETRY)
        assert normalize(once, MIGRATORY_SYMMETRY) == once

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(_async_states), perms)
    def test_permutation_preserves_env_sanity(self, state, perm):
        """The permutation helper itself keeps the env well-formed."""
        permuted = permute_async(state, list(perm))
        for var in ("o", "j"):
            value = permuted.home.env[var]
            assert value is None or 0 <= value < N
