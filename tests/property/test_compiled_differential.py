"""Compiled-engine differential: the interpreter is the ground truth.

:mod:`repro.refine.compiled` generates a protocol-specialized successor
module from the same :class:`~repro.refine.transitions.StepTable` the
interpreter consults.  Its only correctness argument is agreement with
the interpreted semantics, so this suite cross-checks the two engines
on *randomly generated* protocols (the strongest evidence available —
the library protocols alone would only exercise the table rows they
happen to contain):

* state/transition/deadlock counts, including budget-truncated runs
  (identical counts under truncation require identical successor
  *order*, not just identical sets);
* invariant and progress verdicts;
* step-level observables (``completes``/``sends``), which carry the
  payload values — this is also the regression assertion for the
  hot-path bug where ``eval_payload`` ran more than once per guard: the
  value sent with a request and the value observed at its completion
  must be the same;
* a seeded :meth:`StepTable.mutate` fault injection: a corrupted table
  row must be flagged by the compiled engine exactly as the interpreter
  flags it (same exception, same message), never silently absorbed.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import AsyncSystem, refine
from repro.check.explorer import explore
from repro.check.properties import check_progress
from repro.errors import SemanticsError
from repro.gen import GeneratorParams, random_protocol
from repro.protocols.invariants import async_structural_invariants
from repro.protocols.migratory import migratory_protocol
from repro.refine.transitions import build_step_table

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

lenient = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large,
                                          HealthCheck.filter_too_much])


@st.composite
def protocols(draw):
    seed = draw(st.integers(0, 10_000))
    return random_protocol(seed, SMALL)


def engine_pair(protocol, n=2):
    refined = refine(protocol)
    return (AsyncSystem(refined, n),
            AsyncSystem(refined, n, engine="compiled"))


def counts(result):
    return (result.n_states, result.n_transitions, result.deadlock_count,
            result.completed, result.stop_reason)


class TestRandomProtocolDifferential:
    @lenient
    @given(protocols())
    def test_counts_and_deadlocks_agree(self, protocol):
        interp, comp = engine_pair(protocol)
        # State budgets only: a wall-clock budget would truncate the two
        # runs at different frontiers and void the comparison.
        a = explore(interp, max_states=2500, allow_deadlock=True)
        b = explore(comp, max_states=2500, allow_deadlock=True)
        assert counts(a) == counts(b)

    @lenient
    @given(protocols(), st.integers(0, 500))
    def test_truncated_budgets_agree(self, protocol, budget):
        interp, comp = engine_pair(protocol)
        a = explore(interp, max_states=budget, allow_deadlock=True)
        b = explore(comp, max_states=budget, allow_deadlock=True)
        assert counts(a) == counts(b)

    @lenient
    @given(protocols())
    def test_invariant_verdicts_agree(self, protocol):
        interp, comp = engine_pair(protocol)
        invs = async_structural_invariants(2)
        a = explore(interp, max_states=2500, invariants=invs,
                    allow_deadlock=True)
        b = explore(comp, max_states=2500, invariants=invs,
                    allow_deadlock=True)
        assert counts(a) == counts(b)
        assert [v.property_name for v in a.violations] \
            == [v.property_name for v in b.violations]

    @lenient
    @given(protocols())
    def test_progress_verdicts_agree(self, protocol):
        interp, comp = engine_pair(protocol)
        a = check_progress(interp, max_states=2500)
        b = check_progress(comp, max_states=2500)
        assume(a.completed and b.completed)
        assert (a.ok, a.n_states, a.n_sccs, a.n_terminal_sccs,
                len(a.deadlocks), len(a.livelocks)) \
            == (b.ok, b.n_states, b.n_sccs, b.n_terminal_sccs,
                len(b.deadlocks), len(b.livelocks))


class TestStepObservableParity:
    """Byte-level agreement of the full ``steps()`` enumeration.

    Beyond (action, state) pairs this compares the ``completes`` and
    ``sends`` observables, whose payload fields are the values the
    engines evaluated from the guard payload expressions — the
    "both sites agree" assertion for the eval-once bugfix.
    """

    @lenient
    @given(protocols())
    def test_steps_identical_on_reachable_states(self, protocol):
        interp, comp = engine_pair(protocol)
        result = explore(interp, max_states=400, keep_graph=True,
                         allow_deadlock=True)
        for state in list(result.graph or {})[:200]:
            a = interp.steps(state)
            b = comp.steps(state)
            assert len(a) == len(b)
            for sa, sb in zip(a, b):
                assert sa.action == sb.action
                assert sa.state == sb.state
                assert sa.completes == sb.completes
                assert sa.sends == sb.sends


class TestSeededMutant:
    """Fault injection through :meth:`StepTable.mutate`.

    Each corrupted row drives the semantics into an inconsistency that
    the interpreter reports as a :class:`SemanticsError`; the compiled
    engine bakes the same (mutated) table into its generated module and
    must raise the identical error — a mutant silently absorbed by the
    compiled engine would mean its specialization dropped a check.
    """

    MUTATIONS = [
        ("reply_to_wrong",
         dict(role="remote", state="I", out_index=0),
         dict(reply_to="I")),
        ("fused_reply_dropped",
         dict(role="remote", state="I", out_index=0),
         dict(fused_reply=None, reply_to=None)),
        ("home_reply_to_wrong",
         dict(role="home", state="I1", out_index=0),
         dict(reply_to="I1")),
    ]

    @pytest.mark.parametrize("name,where,changes", MUTATIONS,
                             ids=[m[0] for m in MUTATIONS])
    def test_mutant_flagged_identically(self, name, where, changes):
        refined = refine(migratory_protocol())
        mutant = build_step_table(refined).mutate(**where, **changes)
        errors = {}
        for engine in ("interpreted", "compiled"):
            system = AsyncSystem(refined, 2, table=mutant, engine=engine)
            with pytest.raises(SemanticsError) as exc:
                explore(system, max_states=4000, allow_deadlock=True)
            errors[engine] = str(exc.value)
        assert errors["interpreted"] == errors["compiled"]

    def test_healthy_table_not_flagged(self):
        refined = refine(migratory_protocol())
        table = build_step_table(refined)
        for engine in ("interpreted", "compiled"):
            result = explore(AsyncSystem(refined, 2, table=table,
                                         engine=engine),
                             max_states=4000, allow_deadlock=True)
            assert result.completed
