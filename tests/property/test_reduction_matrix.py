"""Driver/store/reduction/engine parity matrix.

:mod:`tests.property.test_explorer_parity` pins byte-identical counts
between the sequential and parallel drivers on unreduced systems.  The
reductions and the compiled step engine must not break that contract:
for every cell of

    {interpreted, compiled} x {sequential, parallel, partitioned}
        x {exact, fingerprint} x {symmetry off, on} x {por off, on}

the twelve engine/driver/store variants of the *same* reduction
combination must report identical ``n_states``/``n_transitions``/
``deadlock_count``/``stop_reason`` — including runs truncated mid-level
by a state budget, where a single out-of-order expansion (or a single
reordered successor from the compiled engine) would shift the counts.
Across combinations, reduction only ever shrinks the state count.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.explorer import explore
from repro.check.parallel import SystemSpec, build_system, explore_parallel
from repro.check.partitioned import explore_partitioned

PROTOCOLS = [("migratory", 2), ("invalidate", 2)]
REDUCTIONS = [(False, False), (False, True), (True, False), (True, True)]
ENGINES = ("interpreted", "compiled")


def spec_for(protocol, n, symmetry, por):
    return SystemSpec(protocol, "async", n, symmetry=symmetry, por=por)


def counts(result):
    return (result.n_states, result.n_transitions, result.deadlock_count,
            result.completed, result.stop_reason)


def variants(spec, **budgets):
    """The twelve engine/driver/store runs of one reduction combination:
    {sequential, work-stealing parallel, owner-computes partitioned}
    x {exact, fingerprint} x {interpreted, compiled}."""
    runs = {}
    for engine in ENGINES:
        espec = replace(spec, engine=engine)
        runs[f"{engine}-seq-exact"] = explore(
            build_system(espec), name="matrix",
            reductions=espec.reductions(), **budgets)
        runs[f"{engine}-seq-fingerprint"] = explore(
            build_system(espec), name="matrix", store="fingerprint",
            reductions=espec.reductions(), **budgets)
        runs[f"{engine}-par-exact"] = explore_parallel(
            espec, workers=2, fanout_threshold=4, chunk_size=16, **budgets)
        runs[f"{engine}-par-fingerprint"] = explore_parallel(
            espec, workers=2, fanout_threshold=4, chunk_size=16,
            store="fingerprint", **budgets)
        runs[f"{engine}-part-exact"] = explore_partitioned(
            espec, partitions=2, **budgets)
        runs[f"{engine}-part-fingerprint"] = explore_partitioned(
            espec, partitions=2, store="fingerprint", **budgets)
    return runs


@pytest.mark.parametrize("protocol,n", PROTOCOLS,
                         ids=[f"{p}-{n}" for p, n in PROTOCOLS])
class TestFullRuns:
    def test_all_cells_agree(self, protocol, n):
        baseline_states = None
        for symmetry, por in REDUCTIONS:
            spec = spec_for(protocol, n, symmetry, por)
            runs = variants(spec)
            reference = counts(runs["interpreted-seq-exact"])
            for name, result in runs.items():
                assert counts(result) == reference, \
                    f"{name} diverges on {spec} ({symmetry=}, {por=})"
                assert result.completed
            if baseline_states is None:
                # (off, off) cell of the interpreted oracle
                baseline_states = runs["interpreted-seq-exact"].n_states
            assert runs["interpreted-seq-exact"].n_states <= baseline_states

    def test_reductions_recorded(self, protocol, n):
        spec = spec_for(protocol, n, symmetry=True, por=True)
        runs = variants(spec)
        for result in runs.values():
            assert result.reductions == ("por", "symmetry")
            assert result.n_enabled >= result.n_transitions

    def test_por_alone_shrinks_states(self, protocol, n):
        full = explore(build_system(spec_for(protocol, n, False, False)))
        por = explore(build_system(spec_for(protocol, n, False, True)))
        assert por.n_states < full.n_states
        assert por.deadlock_count == full.deadlock_count


class TestTruncatedRuns:
    """Budget truncation must hit the same wall in every variant."""

    @pytest.mark.parametrize("symmetry,por", REDUCTIONS,
                             ids=["plain", "por", "sym", "sym+por"])
    @pytest.mark.parametrize("budget", [50, 200])
    def test_fixed_budgets(self, symmetry, por, budget):
        spec = spec_for("migratory", 2, symmetry, por)
        runs = variants(spec, max_states=budget)
        reference = counts(runs["interpreted-seq-exact"])
        for name, result in runs.items():
            assert counts(result) == reference, f"{name} diverges"
        if reference[0] >= budget:
            assert not runs["interpreted-seq-exact"].completed
            assert runs["interpreted-seq-exact"].stop_reason \
                == f"state budget {budget} exceeded"

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(budget=st.integers(0, 400),
           reduction=st.integers(0, len(REDUCTIONS) - 1),
           proto=st.integers(0, len(PROTOCOLS) - 1))
    def test_randomized_budgets(self, budget, reduction, proto):
        symmetry, por = REDUCTIONS[reduction]
        protocol, n = PROTOCOLS[proto]
        spec = spec_for(protocol, n, symmetry, por)
        runs = variants(spec, max_states=budget)
        reference = counts(runs["interpreted-seq-exact"])
        for name, result in runs.items():
            assert counts(result) == reference, f"{name} diverges"
