"""Property: partition routing is a pure function of the state.

Owner-computes correctness rests on every process agreeing on which
partition owns a state: the fingerprint is a salted blake2b over the
canonical encoding (no ``PYTHONHASHSEED`` dependence), and the router
is an arithmetic range split.  A single disagreement between a fork
child, a spawn child, and the parent would silently drop or duplicate
states, so we check the assignment byte-for-byte across start methods.
"""

import multiprocessing as mp

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.store import fingerprint, partition_index, partition_of

fingerprints = st.integers(min_value=0, max_value=2**64 - 1)
partition_counts = st.integers(min_value=1, max_value=256)


@given(fp=fingerprints, partitions=partition_counts)
def test_index_always_in_range(fp, partitions):
    assert 0 <= partition_index(fp, partitions) < partitions


@given(fps=st.lists(fingerprints, min_size=2, max_size=16),
       partitions=partition_counts)
def test_ranges_contiguous(fps, partitions):
    # sorting by fingerprint must sort by partition: contiguous ranges
    indices = [partition_index(fp, partitions) for fp in sorted(fps)]
    assert indices == sorted(indices)


@given(partitions=st.integers(min_value=1, max_value=64))
def test_full_range_covered(partitions):
    # the first and last fingerprints land on the first and last
    # partition, so no partition's range is empty at the extremes
    assert partition_index(0, partitions) == 0
    assert partition_index(2**64 - 1, partitions) == partitions - 1


@given(seed=st.integers(min_value=0, max_value=2**32),
       partitions=st.integers(min_value=1, max_value=16))
@settings(max_examples=25, deadline=None)
def test_assignment_stable_within_process(seed, partitions):
    state = ("state", seed, frozenset({seed % 7, "flag"}))
    assert partition_of(state, partitions) == \
        partition_index(fingerprint(state), partitions)
    assert partition_of(state, partitions) == partition_of(state, partitions)


def _child_assignments(states, partitions, out):
    out.extend([partition_of(state, partitions) for state in states])


def test_assignment_stable_across_processes_and_start_methods():
    """fork and spawn children must route exactly like the parent.

    spawn re-imports everything in a fresh interpreter (fresh hash
    randomization, fresh module state), so this fails loudly if routing
    ever picks up an ambient dependence.
    """
    states = [("state", i, frozenset({i % 5})) for i in range(64)]
    partitions = 7
    parent = [partition_of(state, partitions) for state in states]
    for method in ("fork", "spawn"):
        ctx = mp.get_context(method)
        with ctx.Manager() as manager:
            out = manager.list()
            proc = ctx.Process(target=_child_assignments,
                               args=(states, partitions, out))
            proc.start()
            proc.join(60)
            assert proc.exitcode == 0
            assert list(out) == parent, f"{method} child disagrees"
