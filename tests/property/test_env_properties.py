"""Property-based tests for Env (persistent map laws)."""

from hypothesis import given, strategies as st

from repro.csp.env import Env

keys = st.text(alphabet="abcdefg", min_size=1, max_size=3)
values = st.one_of(st.integers(-5, 5), st.none(),
                   st.frozensets(st.integers(0, 3), max_size=3))
envs = st.dictionaries(keys, values, max_size=5).map(Env)


class TestMapLaws:
    @given(envs, keys, values)
    def test_set_then_get(self, env, key, value):
        declared = Env({**env.as_dict(), key: None})
        assert declared.set(key, value)[key] == value

    @given(envs, keys, values)
    def test_set_preserves_other_keys(self, env, key, value):
        declared = Env({**env.as_dict(), key: None})
        updated = declared.set(key, value)
        for other in declared:
            if other != key:
                assert updated[other] == declared[other]

    @given(envs, keys, values, values)
    def test_last_set_wins(self, env, key, v1, v2):
        declared = Env({**env.as_dict(), key: None})
        assert declared.set(key, v1).set(key, v2)[key] == v2

    @given(envs)
    def test_hash_equals_on_reconstruction(self, env):
        clone = Env(env.as_dict())
        assert clone == env
        assert hash(clone) == hash(env)

    @given(envs, keys, values)
    def test_original_untouched(self, env, key, value):
        declared = Env({**env.as_dict(), key: None})
        snapshot = declared.as_dict()
        declared.set(key, value)
        assert declared.as_dict() == snapshot

    @given(envs)
    def test_iteration_sorted(self, env):
        listed = list(env)
        assert listed == sorted(listed)
