"""Property-based soundness: refinement is correct for the whole class.

The paper's central theorem is argued once for the rule schema; here we
machine-check its consequences on *randomly generated* protocols inside the
restricted specification class — the strongest evidence this library can
offer for "our synthesis procedure applies to large classes of DSM
protocols".  For every generated protocol:

* the refinement plan is accepted (validation, fusion checks);
* Equation 1 (bounded weak simulation) holds over the full asynchronous
  state space at 2 remotes;
* the abstraction function is total on reachable states;
* structural invariants of the semantics hold everywhere.

State spaces are capped; runs that exceed the cap are discarded via
``assume`` (they are rare with the default generator parameters).
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro import AsyncSystem, RefinementConfig, refine
from repro.check.explorer import explore
from repro.check.simulation import check_simulation
from repro.gen import GeneratorParams, random_protocol
from repro.protocols.invariants import async_structural_invariants
from repro.refine.abstraction import abstract_state

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

# filter_too_much is suppressed because the conditional properties below
# (progress transfer especially) discard non-qualifying protocols with
# ``assume`` by design; whether the health check trips depends only on
# which seeds hypothesis happens to draw.
lenient = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large,
                                          HealthCheck.filter_too_much])


@st.composite
def protocols(draw):
    seed = draw(st.integers(0, 10_000))
    return random_protocol(seed, SMALL)


class TestRefinementSoundness:
    @lenient
    @given(protocols())
    def test_weak_simulation_holds(self, protocol):
        refined = refine(protocol)
        report = check_simulation(AsyncSystem(refined, 2),
                                  max_states=3000, max_seconds=5)
        assume(report.exploration.completed)
        assert report.ok, report.describe()

    @lenient
    @given(protocols())
    def test_plain_refinement_exact_equation_1(self, protocol):
        refined = refine(protocol, RefinementConfig(use_reqreply=False))
        report = check_simulation(AsyncSystem(refined, 2), max_depth=1,
                                  max_states=3000, max_seconds=5)
        assume(report.exploration.completed)
        assert report.ok, report.describe()

    @lenient
    @given(protocols())
    def test_abstraction_total_and_structure_invariant(self, protocol):
        refined = refine(protocol)
        system = AsyncSystem(refined, 2)
        result = explore(system, max_states=3000, max_seconds=5,
                         invariants=async_structural_invariants(2),
                         allow_deadlock=True)
        assume(result.completed)
        assert not result.violations, result.violations[0].describe()
        for state in list(explore(system, max_states=3000, keep_graph=True,
                                  allow_deadlock=True).graph or {})[:500]:
            abstract_state(system, state)  # must never raise

    @lenient
    @given(protocols(), st.integers(2, 4))
    def test_buffer_capacity_never_exceeded(self, protocol, k):
        refined = refine(protocol, RefinementConfig(home_buffer_capacity=k))
        result = explore(AsyncSystem(refined, 2), max_states=2000,
                         max_seconds=5,
                         invariants=async_structural_invariants(k),
                         allow_deadlock=True)
        assert not result.violations


class TestProgressTransfer:
    """Paper section 2.5: 'the refinement process guarantees that at least
    one of the refined remote nodes makes forward progress, if forward
    progress is possible in the rendezvous protocol' — checked as a
    conditional property on random protocols."""

    @lenient
    @given(protocols())
    def test_rendezvous_progress_implies_async_progress(self, protocol):
        from repro.check.properties import check_progress
        from repro.semantics.rendezvous import RendezvousSystem
        rendezvous = check_progress(RendezvousSystem(protocol, 2),
                                    max_states=3000, max_seconds=3)
        assume(rendezvous.completed and rendezvous.ok)
        asynchronous = check_progress(AsyncSystem(refine(protocol), 2),
                                      max_states=8000, max_seconds=6)
        assume(asynchronous.completed)
        assert asynchronous.ok, asynchronous.describe()


class TestGeneratorAgreementAcrossLevels:
    @lenient
    @given(protocols())
    def test_async_initial_abstraction_matches(self, protocol):
        from repro.semantics.rendezvous import RendezvousSystem
        refined = refine(protocol)
        system = AsyncSystem(refined, 2)
        assert abstract_state(system, system.initial_state()) == \
            RendezvousSystem(protocol, 2).initial_state()
