"""Differential soundness of partial-order reduction.

The ample-set argument in :mod:`repro.check.por` is a paper proof; this
suite machine-checks its consequences.  Full and reduced exploration of
the same system must agree on everything the reduction promises to
preserve:

* deadlock existence and exact deadlock-state counts (both presets —
  ample sets are singletons of enabled steps, so the reduced graph
  neither hides nor invents terminal states);
* invariant verdicts under ``preserve="invariants"`` — the coherence and
  structural predicates hold on the reduced reachable set iff they hold
  on the full one;
* progress and response conclusions — ample steps complete no
  rendezvous, so the completion-labelled SCC analysis survives;
* and, the point of it all, ``n_states`` never grows.

Library protocols pin the real systems; hypothesis-random protocols
extend the evidence to the generator's whole specification class, the
same move :mod:`tests.property.test_random_protocols` makes for the
refinement theorem itself.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro import AsyncSystem, refine
from repro.check.explorer import explore
from repro.check.por import PRESERVE_COUNTS, PRESERVE_INVARIANTS, PORSystem
from repro.check.properties import check_progress
from repro.check.response import check_response, grant_edge, remote_in_state
from repro.check.symmetry import SymmetricSystem
from repro.errors import ReproError
from repro.gen import GeneratorParams, random_protocol
from repro.protocols.invariants import (
    INVALIDATE_SPEC,
    MIGRATORY_SPEC,
    async_structural_invariants,
    coherence_invariants,
)
from repro.protocols.symmetry import symmetry_spec_for

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

lenient = settings(max_examples=15, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large,
                                          HealthCheck.filter_too_much])


@st.composite
def protocols(draw):
    seed = draw(st.integers(0, 10_000))
    return random_protocol(seed, SMALL)


def library_systems(migratory_refined, invalidate_refined):
    return [
        ("migratory", AsyncSystem(migratory_refined, 2), MIGRATORY_SPEC),
        ("migratory", AsyncSystem(migratory_refined, 3), MIGRATORY_SPEC),
        ("invalidate", AsyncSystem(invalidate_refined, 2), INVALIDATE_SPEC),
    ]


class TestLibraryProtocols:
    def test_deadlocks_and_state_counts(self, migratory_refined,
                                        invalidate_refined):
        for _, system, _ in library_systems(migratory_refined,
                                            invalidate_refined):
            full = explore(system, allow_deadlock=True)
            assert full.completed
            for preserve in (PRESERVE_COUNTS, PRESERVE_INVARIANTS):
                red = explore(PORSystem(system, preserve=preserve),
                              allow_deadlock=True)
                assert red.completed
                assert red.deadlock_count == full.deadlock_count
                assert red.n_states <= full.n_states
                assert red.n_transitions <= full.n_transitions

    def test_invariant_verdicts_agree(self, migratory_refined,
                                      invalidate_refined):
        for _name, system, spec in library_systems(migratory_refined,
                                                   invalidate_refined):
            invariants = (coherence_invariants(spec)
                          + async_structural_invariants(system.n_remotes))
            full = explore(system, invariants=invariants,
                           allow_deadlock=True)
            red = explore(PORSystem(system), invariants=invariants,
                          allow_deadlock=True)
            assert full.completed and red.completed
            assert not full.violations  # library protocols are coherent
            assert not red.violations

    def test_progress_agrees(self, migratory_refined, invalidate_refined):
        for _, system, _ in library_systems(migratory_refined,
                                            invalidate_refined):
            full = check_progress(system, max_states=200_000)
            red = check_progress(PORSystem(system), max_states=200_000)
            assert full.completed and red.completed
            assert red.ok == full.ok

    def test_response_agrees_including_negative_verdict(
            self, migratory_refined):
        """Per-remote starvation (migratory n=3, remote 0 requesting) is
        a *False* response verdict on the full system — the reduced run
        must reproduce it, and the single-remote True verdict too."""
        request = lambda s: (s.remotes[0].mode == "trans"  # noqa: E731
                             and s.remotes[0].state == "I")
        for n, expected_ok in ((3, False), (1, True)):
            system = AsyncSystem(migratory_refined, n)
            for wrapped in (system, PORSystem(system)):
                report = check_response(wrapped, request=request,
                                        response=grant_edge(0, {"gr"}),
                                        max_states=200_000)
                assert report.completed
                assert report.n_request_states > 0
                assert report.ok == expected_ok

    def test_response_helper_predicates_survive_reduction(
            self, invalidate_refined):
        system = AsyncSystem(invalidate_refined, 2)
        request = remote_in_state(0, {"I"})
        full = check_response(system, request=request,
                              response=lambda *a: True,
                              max_states=200_000)
        red = check_response(PORSystem(system), request=request,
                             response=lambda *a: True,
                             max_states=200_000)
        assert full.completed and red.completed
        assert red.ok == full.ok
        assert red.n_request_states > 0

    def test_symmetry_composition_preserves_deadlock_verdict(
            self, migratory_refined, invalidate_refined):
        for name, refined in (("migratory", migratory_refined),
                              ("invalidate", invalidate_refined)):
            spec = symmetry_spec_for(name)
            system = AsyncSystem(refined, 3)
            sym = explore(SymmetricSystem(system, spec),
                          allow_deadlock=True)
            sym_por = explore(
                SymmetricSystem(PORSystem(system,
                                          preserve=PRESERVE_COUNTS), spec),
                allow_deadlock=True)
            assert sym.completed and sym_por.completed
            assert sym_por.deadlock_count == sym.deadlock_count
            assert sym_por.n_states <= sym.n_states


class TestRandomProtocols:
    """The reduction argument never consults protocol specifics beyond
    the step-table schema — so it must hold across the generator's whole
    class, not just the four library protocols."""

    @lenient
    @given(protocols())
    def test_deadlock_and_count_agreement(self, protocol):
        try:
            refined = refine(protocol)
        except ReproError:
            assume(False)
        system = AsyncSystem(refined, 2)
        full = explore(system, max_states=4000, max_seconds=10,
                       allow_deadlock=True)
        assume(full.completed)
        for preserve in (PRESERVE_COUNTS, PRESERVE_INVARIANTS):
            red = explore(PORSystem(system, preserve=preserve),
                          allow_deadlock=True, max_states=4000,
                          max_seconds=10)
            assert red.completed
            assert red.deadlock_count == full.deadlock_count
            assert red.n_states <= full.n_states

    @lenient
    @given(protocols())
    def test_structural_invariant_agreement(self, protocol):
        try:
            refined = refine(protocol)
        except ReproError:
            assume(False)
        system = AsyncSystem(refined, 2)
        invariants = async_structural_invariants(2)
        full = explore(system, invariants=invariants, max_states=4000,
                       max_seconds=10, allow_deadlock=True,
                       stop_on_violation=False)
        assume(full.completed)
        red = explore(PORSystem(system), invariants=invariants,
                      max_states=4000, max_seconds=10,
                      allow_deadlock=True, stop_on_violation=False)
        assert red.completed
        full_names = {v.property_name for v in full.violations}
        red_names = {v.property_name for v in red.violations}
        assert red_names == full_names
