"""Property-based soundness of the parameterized coherence verdict.

Like the P45xx differential, the coherence checker makes a one-sided
claim: it may fail to discharge a coherent protocol (inconclusive
verdicts are allowed and counted), but a ``discharged`` verdict is a
theorem for *every* node count — so bounded exploration must never be
able to refute it.  Two directions are pinned here:

* over hypothesis-random protocols with synthesized coherence specs,
  a discharge implies the explicit-state explorer finds no violation
  at n = 2..4 (the same oracle the bench harness commits);
* over the library protocols, corrupting one refined control target
  with :meth:`~repro.refine.transitions.StepTable.mutate` must not
  produce a machine that is simultaneously coherence-violating *and*
  certified — a discharge only transfers to the asynchronous machine
  through a clean P44xx certificate, so the certificate must convict
  any mutant the coherence oracle convicts.
"""

from hypothesis import (
    HealthCheck,
    assume,
    given,
    note,
    settings,
    strategies as st,
)

from repro import AsyncSystem, refine
from repro.analysis.coherencecheck import check_coherence
from repro.analysis.diagnostics import Severity
from repro.analysis.simulation import check_certificate
from repro.check.explorer import explore
from repro.errors import ReproError
from repro.gen import GeneratorParams, random_protocol
from repro.protocols import (
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
)
from repro.protocols.invariants import (
    COHERENCE_SPECS,
    CoherenceSpec,
    coherence_invariants,
)
from repro.refine.transitions import build_step_table
from repro.semantics.rendezvous import RendezvousSystem

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

lenient = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large,
                                          HealthCheck.filter_too_much])

#: per-instance oracle budget; generated protocols are tiny, so a
#: truncated run means something is badly wrong — treat it as such
ORACLE_BUDGET = 50_000

FACTORIES = {
    "invalidate": invalidate_protocol,
    "mesi": mesi_protocol,
    "migratory": migratory_protocol,
    "msi": msi_protocol,
}


@st.composite
def specced_protocols(draw):
    """A random protocol plus a synthesized coherence spec over disjoint
    exclusive/shared subsets of its remote states."""
    seed = draw(st.integers(0, 10_000))
    protocol = random_protocol(seed, SMALL)
    states = sorted(protocol.remote.states)
    exclusive = frozenset(
        draw(st.sets(st.sampled_from(states), min_size=1)))
    rest = sorted(set(states) - exclusive)
    shared = (frozenset(draw(st.sets(st.sampled_from(rest))))
              if rest else frozenset())
    spec = CoherenceSpec(name=protocol.name, exclusive=exclusive,
                         shared=shared)
    return protocol, spec


def violation_found(protocol, spec, n: int) -> bool:
    result = explore(RendezvousSystem(protocol, n),
                     name=f"{protocol.name}-coherence-oracle-{n}",
                     invariants=list(coherence_invariants(spec)),
                     stop_on_violation=False, allow_deadlock=True,
                     max_states=ORACLE_BUDGET)
    assert result.completed, f"coherence oracle truncated at n={n}"
    return bool(result.violations)


class TestStaticVerdictIsSound:
    @lenient
    @given(specced_protocols())
    def test_discharged_implies_no_bounded_violation(self, case):
        protocol, spec = case
        verdict = check_coherence(protocol, spec)
        note(f"verdict: {verdict.status}, {verdict.candidates} candidate "
             f"lemma(s), {verdict.iterations} iteration(s)")
        if not verdict.discharged:
            # incompleteness is allowed; soundness only binds discharges
            return
        for n in (2, 3, 4):
            assert not violation_found(protocol, spec, n), (
                f"discharged verdict refuted by exploration at n={n}")

    @lenient
    @given(specced_protocols())
    def test_refutations_carry_a_real_witness(self, case):
        protocol, spec = case
        verdict = check_coherence(protocol, spec)
        if verdict.status != "refuted":
            return
        # a refutation is a concrete two-node trace, so the two-node
        # oracle must agree (the checker replays it before reporting)
        assert verdict.witness is not None
        assert violation_found(protocol, spec, 2)


def has_errors(report) -> bool:
    return any(d.severity >= Severity.ERROR for d in report.diagnostics)


def async_coherence_violated(refined, table, spec) -> bool:
    """Bounded coherence verdict on a (possibly mutant) refined machine.

    A raised semantics error counts as a conviction — the mutant broke
    the machine either way.  Truncating without a violation is *not*
    evidence of one.
    """
    try:
        result = explore(AsyncSystem(refined, 2, table=table),
                         name=f"{refined.name}-mutant-coherence",
                         invariants=list(coherence_invariants(spec)),
                         stop_on_violation=False, allow_deadlock=True,
                         max_states=4_000, max_seconds=5)
    except ReproError:
        return True
    return bool(result.violations)


class TestMutantsCannotLaunderADischarge:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    @given(st.data())
    def test_certificate_convicts_coherence_breaking_mutants(self, data):
        name = data.draw(st.sampled_from(sorted(COHERENCE_SPECS)),
                         label="protocol")
        protocol = FACTORIES[name]()
        spec = COHERENCE_SPECS[name]
        assert check_coherence(protocol, spec).discharged

        refined = refine(protocol)
        table = build_step_table(refined)
        rows = list(table)
        row = rows[data.draw(st.integers(0, len(rows) - 1), label="row")]
        process = (refined.protocol.home if row.role == "home"
                   else refined.protocol.remote)
        target = data.draw(st.sampled_from(sorted(process.states)),
                           label="target")
        field = data.draw(st.sampled_from(["rewind_to", "forward_to"]),
                          label="field")
        assume(getattr(row, field) != target)
        mutant = table.mutate(row.role, row.state, row.out_index,
                              **{field: target})

        try:
            report = check_certificate(refined, table=mutant)
        except ReproError:
            # the checker refused to even enumerate obligations for the
            # corrupted table — the discharge cannot transfer through it
            return
        assume(report.complete)
        if async_coherence_violated(refined, mutant, spec):
            assert has_errors(report), (
                f"mutant {field}={target!r} on {row.describe()} violates "
                f"coherence but the certificate is clean — the discharged "
                f"static verdict would be laundered onto a broken machine")
