"""Differential testing: symbolic certificate vs explicit-state explorer.

The certificate checker discharges commutation obligations over symbolic
two-node closures; :func:`repro.check.simulation.check_simulation`
checks the same Equation 1 by brute force over the asynchronous
reachable set.  On random protocols — and on random *mutants* of their
step tables — the two must agree:

* a clean certificate implies the explorer finds no simulation failure
  (the closure over all rendezvous contexts covers every edge the
  explorer can reach from the initial one);
* any mutant the explorer convicts must already have been flagged by
  the certificate (no false negatives), since a wrong verdict here is
  exactly the "silently unsound refinement" failure mode the P44xx
  family exists to prevent.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro import AsyncSystem, refine
from repro.analysis.diagnostics import Severity
from repro.analysis.simulation import check_certificate
from repro.check.simulation import check_simulation
from repro.errors import ReproError
from repro.gen import GeneratorParams, random_protocol
from repro.refine.transitions import build_step_table

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

lenient = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large,
                                          HealthCheck.filter_too_much])


@st.composite
def protocols(draw):
    seed = draw(st.integers(0, 10_000))
    return random_protocol(seed, SMALL)


def has_errors(report) -> bool:
    return any(d.severity >= Severity.ERROR for d in report.diagnostics)


def explorer_convicts(refined, table) -> bool:
    """Explicit-state verdict on a (possibly mutant) step table.

    A raised semantics/abstraction error is as much a conviction as a
    failed simulation edge — the mutant broke the refinement either way.
    """
    try:
        sim = check_simulation(AsyncSystem(refined, 2, table=table),
                               max_states=4000, max_seconds=5)
    except ReproError:
        return True
    assume(sim.exploration.completed)
    return not sim.ok


class TestAgreementOnSoundRefinements:
    @lenient
    @given(protocols())
    def test_clean_certificate_implies_clean_exploration(self, protocol):
        refined = refine(protocol)  # the gate itself re-checks this
        report = check_certificate(refined)
        assume(report.complete)
        assert report.ok, report.describe()
        assert not explorer_convicts(refined, build_step_table(refined))


class TestAgreementOnMutants:
    @lenient
    @given(protocols(), st.data())
    def test_explorer_convictions_are_certificate_errors(self, protocol,
                                                         data):
        """Corrupt one control target at random; if the explorer can tell,
        the certificate must have said so first."""
        refined = refine(protocol)
        table = build_step_table(refined)
        specs = list(table)
        assume(specs)
        spec = specs[data.draw(st.integers(0, len(specs) - 1),
                               label="row")]
        process = (refined.protocol.home if spec.role == "home"
                   else refined.protocol.remote)
        target = data.draw(st.sampled_from(sorted(process.states)),
                           label="target")
        field = data.draw(st.sampled_from(["rewind_to", "forward_to"]),
                          label="field")
        assume(getattr(spec, field) != target)
        mutant = table.mutate(spec.role, spec.state, spec.out_index,
                              **{field: target})

        report = check_certificate(refined, table=mutant)
        assume(report.complete)
        if explorer_convicts(refined, mutant):
            assert has_errors(report), (
                f"explorer convicts mutant {field}={target!r} on "
                f"{spec.describe()} but certificate is clean")

    @lenient
    @given(protocols(), st.data())
    def test_certificate_always_flags_the_static_mismatch(self, protocol,
                                                          data):
        """Whatever the dynamic outcome, a corrupted table always
        disagrees with the AST-derived one — P4404 is unconditional."""
        refined = refine(protocol)
        table = build_step_table(refined)
        specs = list(table)
        assume(specs)
        spec = specs[data.draw(st.integers(0, len(specs) - 1),
                               label="row")]
        process = (refined.protocol.home if spec.role == "home"
                   else refined.protocol.remote)
        target = data.draw(st.sampled_from(sorted(process.states)),
                           label="target")
        assume(spec.rewind_to != target)
        mutant = table.mutate(spec.role, spec.state, spec.out_index,
                              rewind_to=target)
        report = check_certificate(refined, table=mutant)
        assert any(d.code == "P4404" for d in report.diagnostics)
