"""Property-based: every generated protocol lints clean at error severity.

``repro.gen.random_protocol`` constructs protocols *inside* the paper's
restricted class by design; the analysis suite formalizes that class as
error-severity diagnostics.  If the two ever disagree — the generator
emits something the linter rejects, or the linter's restrictions drift
from the generator's guarantees — a real bug exists on one side or the
other, so this property pins them together.
"""

from hypothesis import given, settings, strategies as st

from repro import analyze_protocol, analyze_refined, refine
from repro.gen import GeneratorParams, random_protocol

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

lenient = settings(max_examples=25, deadline=None)


@st.composite
def protocols(draw):
    seed = draw(st.integers(0, 10_000))
    return random_protocol(seed, SMALL)


class TestGeneratedProtocolsLintClean:
    @lenient
    @given(protocols())
    def test_no_error_diagnostics(self, protocol):
        report = analyze_protocol(protocol)
        assert report.errors == (), report.render_text()

    @lenient
    @given(protocols())
    def test_refined_no_error_diagnostics(self, protocol):
        report = analyze_refined(refine(protocol))
        assert report.errors == (), report.render_text()
        # the transient inventory is always reported
        assert "P3403" in report.codes()

    @lenient
    @given(protocols())
    def test_buffer_demand_is_the_node_count(self, protocol):
        from repro.analysis import home_buffer_bound, remote_demand
        # without fire-and-forget every remote demands at most one slot
        assert remote_demand(protocol.remote, frozenset()) in (0, 1)
        bound = home_buffer_bound(protocol, 5)
        assert bound is not None and bound <= 5
