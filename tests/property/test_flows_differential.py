"""Property-based soundness of the parameterized (P45xx) verdict.

The flow-based analysis makes a deliberately one-sided claim: it may
*fail* to discharge a deadlock-free protocol (incompleteness is allowed
and counted), but it must never stamp ``deadlock-free-any-N`` on a
protocol that bounded exploration can refute.  This suite pins that
direction against the explicit-state explorer at n = 2..4 — the same
oracle the simulation-certificate differential uses — over the library
protocols and hypothesis-random protocols from the generator.
"""

from hypothesis import given, note, settings, strategies as st

from repro.analysis.paramcheck import check_parameterized
from repro.check.explorer import explore
from repro.gen import GeneratorParams, random_protocol
from repro.protocols import (
    invalidate_protocol,
    mesi_protocol,
    migratory_protocol,
    msi_protocol,
)
from repro.semantics.rendezvous import RendezvousSystem

SMALL = GeneratorParams(n_remote_states=3, n_home_states=3,
                        n_remote_msgs=2, n_home_msgs=2)

lenient = settings(max_examples=25, deadline=None)

#: per-instance exploration budget; generated protocols are tiny, so a
#: truncated run means something is badly wrong — treat it as such
ORACLE_BUDGET = 50_000


@st.composite
def protocols(draw):
    seed = draw(st.integers(0, 10_000))
    return random_protocol(seed, SMALL)


def deadlock_found(protocol, n: int) -> bool:
    result = explore(RendezvousSystem(protocol, n),
                     name=f"{protocol.name}-oracle-{n}",
                     max_states=ORACLE_BUDGET)
    assert result.completed, f"oracle truncated at n={n}"
    return bool(result.deadlocks)


class TestStaticVerdictIsSound:
    @lenient
    @given(protocols())
    def test_discharged_implies_no_bounded_deadlock(self, protocol):
        verdict = check_parameterized(protocol)
        note(f"verdict: {verdict.verdict}, "
             f"{len(verdict.graph.flows)} flow(s), "
             f"complete={verdict.graph.complete}")
        if not verdict.discharged:
            # incompleteness is allowed; soundness only binds discharges
            return
        for n in (2, 3, 4):
            assert not deadlock_found(protocol, n), (
                f"static pass discharged {protocol.name!r} but exploration "
                f"finds a deadlock at n={n}")

    @lenient
    @given(protocols())
    def test_refuted_protocols_carry_an_obligation(self, protocol):
        # contrapositive sanity: a bounded deadlock at the witness size
        # must leave a P45xx obligation (never a clean discharge)
        if deadlock_found(protocol, 2):
            verdict = check_parameterized(protocol)
            assert not verdict.discharged
            assert any(d.code in {"P4501", "P4502", "P4503", "P4504",
                                  "P4507", "P4508"}
                       for d in verdict.obligations)

    @lenient
    @given(protocols())
    def test_verdict_is_deterministic(self, protocol):
        first = check_parameterized(protocol)
        second = check_parameterized(protocol)
        assert first.discharged == second.discharged
        assert [d.code for d in first.obligations] == \
            [d.code for d in second.obligations]


class TestLibraryProtocolsAgree:
    def test_discharges_match_exploration(self):
        # symmetry reduction preserves deadlock existence and keeps the
        # n=4 library instances inside the oracle budget
        from repro.check.symmetry import SymmetricSystem
        from repro.protocols.symmetry import symmetry_spec_for

        factories = {"migratory": migratory_protocol,
                     "invalidate": invalidate_protocol,
                     "mesi": mesi_protocol,
                     "msi": msi_protocol}
        for name, factory in factories.items():
            protocol = factory()
            verdict = check_parameterized(protocol)
            assert verdict.discharged, name
            spec = symmetry_spec_for(name)
            for n in (2, 3, 4):
                system = SymmetricSystem(RendezvousSystem(protocol, n), spec)
                result = explore(system, name=f"{name}-oracle-{n}",
                                 max_states=ORACLE_BUDGET,
                                 reductions=("symmetry",))
                assert result.completed, (name, n)
                assert not result.deadlocks, (name, n)
