"""Property-based tests for the channel model (FIFO/persistence laws)."""

from hypothesis import given, strategies as st

from repro.semantics.network import ACK, NACK, NOTE, REPL, REQ, Channels, Msg

messages = st.builds(
    Msg,
    kind=st.sampled_from([REQ, ACK, NACK, REPL, NOTE]),
    msg=st.one_of(st.none(), st.sampled_from(["req", "gr", "inv"])),
    payload=st.one_of(st.none(), st.integers(0, 3)),
)


class TestFifoLaws:
    @given(st.lists(messages, max_size=8))
    def test_pop_order_equals_push_order(self, msgs):
        ch = Channels.empty(1)
        for msg in msgs:
            ch = ch.send_to_home(0, msg)
        popped = []
        while ch.queues[Channels.to_home(0)]:
            msg, ch = ch.pop(Channels.to_home(0))
            popped.append(msg)
        assert popped == msgs

    @given(st.lists(st.tuples(st.integers(0, 2), messages), max_size=12))
    def test_channels_independent(self, sends):
        ch = Channels.empty(3)
        expected: dict[int, list[Msg]] = {0: [], 1: [], 2: []}
        for remote, msg in sends:
            ch = ch.send_to_home(remote, msg)
            expected[remote].append(msg)
        for remote in range(3):
            assert list(ch.queues[Channels.to_home(remote)]) == \
                expected[remote]

    @given(st.lists(messages, max_size=6))
    def test_total_in_flight_counts(self, msgs):
        ch = Channels.empty(2)
        for i, msg in enumerate(msgs):
            if i % 2:
                ch = ch.send_to_home(i % 2, msg)
            else:
                ch = ch.send_to_remote(i % 2, msg)
        assert ch.total_in_flight == len(msgs)
        assert len(list(ch.in_flight())) == len(msgs)

    @given(st.lists(messages, min_size=1, max_size=6))
    def test_persistence(self, msgs):
        ch = Channels.empty(1)
        for msg in msgs:
            ch = ch.send_to_home(0, msg)
        before = ch
        _msg, after = ch.pop(Channels.to_home(0))
        assert before.total_in_flight == len(msgs)
        assert after.total_in_flight == len(msgs) - 1
