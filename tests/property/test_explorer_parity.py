"""Differential parity: sequential vs parallel vs fingerprint explorers.

The acceptance bar for the parallel rewrite is *byte-identical counts*:
for the same system and the same budgets, ``explore_parallel`` and the
fingerprint-store explorer must report exactly the ``n_states``,
``n_transitions``, ``deadlock_count`` and ``stop_reason`` of the
sequential exact-store run — including runs truncated mid-level by
``max_states``.  These tests pin that contract at hand-picked exact
boundaries and at hypothesis-randomized budgets.

Parallel runs here force small ``fanout_threshold``/``chunk_size`` so
the pool actually engages on these miniature state spaces.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.explorer import explore
from repro.check.parallel import SystemSpec, build_system, explore_parallel

SPECS = [
    SystemSpec("migratory", "rendezvous", 3),
    SystemSpec("migratory", "async", 2),
    SystemSpec("invalidate", "rendezvous", 2),
    SystemSpec("invalidate", "async", 2),
]

_FULL = {spec: explore(build_system(spec)) for spec in SPECS}


def counts(result):
    return (result.n_states, result.n_transitions, result.deadlock_count,
            result.completed, result.stop_reason)


def sequential(spec, **budgets):
    return explore(build_system(spec), name="parity", **budgets)


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"{s.protocol}-{s.level}")
class TestUnbudgetedParity:
    def test_fingerprint_matches_exact(self, spec):
        fp = explore(build_system(spec), store="fingerprint")
        assert counts(fp) == counts(_FULL[spec])
        assert fp.fingerprint_collisions == 0

    def test_parallel_matches_sequential(self, spec):
        par = explore_parallel(spec, workers=2, fanout_threshold=4,
                               chunk_size=16)
        assert counts(par) == counts(_FULL[spec])

    def test_parallel_fingerprint_matches_too(self, spec):
        par = explore_parallel(spec, workers=2, fanout_threshold=4,
                               chunk_size=16, store="fingerprint")
        assert counts(par) == counts(_FULL[spec])


class TestExactBudgetBoundaries:
    """max_states at, one below, and one above the full state count."""

    @pytest.mark.parametrize("spec", SPECS[:2],
                             ids=lambda s: f"{s.protocol}-{s.level}")
    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_boundary(self, spec, delta):
        budget = _FULL[spec].n_states + delta
        seq = sequential(spec, max_states=budget)
        par = explore_parallel(spec, workers=2, fanout_threshold=4,
                               chunk_size=16, max_states=budget)
        fp = explore(build_system(spec), name="parity",
                     store="fingerprint", max_states=budget)
        assert counts(par) == counts(seq)
        assert counts(fp) == counts(seq)
        if delta < 0:
            assert not seq.completed
            assert seq.stop_reason == f"state budget {budget} exceeded"
        else:
            assert seq.completed

    @pytest.mark.parametrize("budget", [0, 1, 2])
    def test_tiny_budgets(self, budget):
        spec = SPECS[0]
        seq = sequential(spec, max_states=budget)
        par = explore_parallel(spec, workers=2, fanout_threshold=1,
                               chunk_size=2, max_states=budget)
        assert counts(par) == counts(seq)


class TestRandomizedBudgets:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec_idx=st.integers(0, len(SPECS) - 1),
           budget=st.integers(0, 400))
    def test_state_budget_parity(self, spec_idx, budget):
        spec = SPECS[spec_idx]
        seq = sequential(spec, max_states=budget)
        par = explore_parallel(spec, workers=2, fanout_threshold=4,
                               chunk_size=16, max_states=budget)
        fp = explore(build_system(spec), name="parity",
                     store="fingerprint", max_states=budget)
        assert counts(par) == counts(seq)
        assert counts(fp) == counts(seq)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(budget=st.integers(0, 200),
           chunk=st.integers(1, 64),
           threshold=st.integers(1, 32))
    def test_chunking_never_changes_counts(self, budget, chunk, threshold):
        spec = SPECS[1]
        seq = sequential(spec, max_states=budget)
        par = explore_parallel(spec, workers=2, fanout_threshold=threshold,
                               chunk_size=chunk, max_states=budget)
        assert counts(par) == counts(seq)


class TestTimeBudget:
    def test_zero_time_budget_same_stop_reason(self):
        spec = SPECS[1]
        seq = sequential(spec, max_seconds=0.0)
        par = explore_parallel(spec, workers=2, fanout_threshold=1,
                               chunk_size=2, max_seconds=0.0)
        assert not seq.completed and not par.completed
        assert seq.stop_reason == par.stop_reason == \
            "time budget 0.0s exceeded"
        assert par.n_states == seq.n_states


class TestMemoryAccounting:
    def test_parallel_reports_approx_bytes(self):
        par = explore_parallel(SPECS[0], workers=2, fanout_threshold=4,
                               chunk_size=16)
        assert par.approx_bytes > 0

    def test_fingerprint_leaner_than_exact(self):
        spec = SPECS[1]
        exact = explore(build_system(spec))
        fp = explore(build_system(spec), store="fingerprint")
        assert 0 < fp.approx_bytes < exact.approx_bytes
