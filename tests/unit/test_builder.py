"""Unit tests for the fluent builder (repro.csp.builder)."""

import pytest

from repro.csp.ast import AnySender, ProcessKind, VarTarget
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.errors import SpecError


class TestProcessBuilder:
    def test_first_state_is_initial(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("t", to="b"))
        b.state("b", out("m", to="a"))
        assert b.build().initial_state == "a"

    def test_explicit_initial_overrides(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("t", to="b"))
        b.state("b", out("m", to="a"), initial=True)
        assert b.build().initial_state == "b"

    def test_variables_become_initial_env(self):
        b = ProcessBuilder.remote("r", d=0, flag=None)
        b.state("a", tau("t", to="a"))
        env = b.build().initial_env
        assert env["d"] == 0 and env["flag"] is None

    def test_kind_recorded(self):
        b = ProcessBuilder.home("h")
        b.state("a", inp("m", sender=AnySender(), to="a"))
        assert b.build().kind == ProcessKind.HOME

    def test_duplicate_state_rejected(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("t", to="a"))
        with pytest.raises(SpecError):
            b.state("a", tau("t", to="a"))

    def test_empty_process_rejected(self):
        with pytest.raises(SpecError):
            ProcessBuilder.remote("r").build()

    def test_dangling_target_rejected_at_build(self):
        b = ProcessBuilder.remote("r")
        b.state("a", tau("t", to="ghost"))
        with pytest.raises(SpecError):
            b.build()

    def test_chaining(self):
        proc = (ProcessBuilder.remote("r")
                .state("a", tau("t", to="b"))
                .state("b", out("m", to="a"))
                .build())
        assert set(proc.states) == {"a", "b"}


class TestAddressingChecks:
    def test_home_output_needs_target(self):
        b = ProcessBuilder.home("h")
        with pytest.raises(SpecError):
            b.state("a", out("m", to="a"))

    def test_home_input_needs_sender(self):
        b = ProcessBuilder.home("h")
        with pytest.raises(SpecError):
            b.state("a", inp("m", to="a"))

    def test_remote_output_rejects_target(self):
        b = ProcessBuilder.remote("r")
        with pytest.raises(SpecError):
            b.state("a", out("m", target=VarTarget("j"), to="a"))

    def test_remote_input_rejects_sender(self):
        b = ProcessBuilder.remote("r")
        with pytest.raises(SpecError):
            b.state("a", inp("m", sender=AnySender(), to="a"))

    def test_remote_input_rejects_bind_sender(self):
        b = ProcessBuilder.remote("r")
        with pytest.raises(SpecError):
            b.state("a", inp("m", bind_sender="who", to="a"))


class TestProtocolAssembly:
    def test_accepts_builders(self):
        h = ProcessBuilder.home("h")
        h.state("a", inp("m", sender=AnySender(), to="a"))
        r = ProcessBuilder.remote("r")
        r.state("a", out("m", to="a"))
        proto = protocol("p", h, r)
        assert proto.name == "p"
        assert proto.home.kind == ProcessKind.HOME

    def test_accepts_prebuilt_processes(self):
        h = ProcessBuilder.home("h")
        h.state("a", inp("m", sender=AnySender(), to="a"))
        r = ProcessBuilder.remote("r")
        r.state("a", out("m", to="a"))
        proto = protocol("p", h.build(), r.build())
        assert proto.remote.name == "r"
