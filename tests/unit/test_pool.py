"""Unit tests for the multi-line buffer-pool study (repro.sim.pool)."""

import pytest

from repro import migratory_protocol, refine
from repro.sim import SyntheticWorkload
from repro.sim.pool import PoolReport, simulate_pool


@pytest.fixture(scope="module")
def refined():
    return refine(migratory_protocol())


def workload(line):
    return SyntheticWorkload(seed=500 + line, think_time=100.0,
                             hold_time=30.0)


class TestSimulatePool:
    def test_basic_run(self, refined):
        report = simulate_pool(refined, 3, 4, workload, until=3_000.0)
        assert report.n_lines == 4
        assert len(report.line_peaks) == 4
        assert len(report.per_line_metrics) == 4
        assert report.naive_capacity == 8

    def test_peak_bounded_by_line_peaks(self, refined):
        report = simulate_pool(refined, 3, 4, workload, until=3_000.0)
        assert report.peak_demand <= sum(report.line_peaks)
        assert report.peak_demand >= max(report.line_peaks, default=0)

    def test_mean_below_peak(self, refined):
        report = simulate_pool(refined, 3, 6, workload, until=3_000.0)
        assert 0.0 <= report.mean_demand <= report.peak_demand

    def test_multiplexing_improves_with_lines(self, refined):
        small = simulate_pool(refined, 3, 4, workload, until=5_000.0)
        large = simulate_pool(refined, 3, 32, workload, until=5_000.0)
        # aggregate peak grows sublinearly in the line count
        assert large.peak_demand < large.n_lines / small.n_lines \
            * max(1, small.peak_demand)
        assert large.multiplexing_ratio >= small.multiplexing_ratio

    def test_deterministic(self, refined):
        a = simulate_pool(refined, 3, 4, workload, until=2_000.0, seed=9)
        b = simulate_pool(refined, 3, 4, workload, until=2_000.0, seed=9)
        assert a.peak_demand == b.peak_demand
        assert a.mean_demand == b.mean_demand

    def test_describe(self, refined):
        report = simulate_pool(refined, 3, 4, workload, until=1_000.0)
        text = report.describe()
        assert "naive capacity" in text and "shared pool" in text

    def test_idle_lines_contribute_nothing(self, refined):
        class Never:
            def choose(self, now, options):
                return None

        report = simulate_pool(refined, 3, 4, lambda line: Never(),
                               until=1_000.0)
        assert report.peak_demand == 0
        assert report.multiplexing_ratio == float("inf")


class TestPoolReportArithmetic:
    def test_ratio(self):
        report = PoolReport(n_lines=10, n_remotes=4, per_line_capacity=2,
                            peak_demand=5, mean_demand=1.0,
                            line_peaks=[1] * 10)
        assert report.naive_capacity == 20
        assert report.multiplexing_ratio == 4.0
