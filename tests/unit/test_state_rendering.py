"""Unit tests for state describe() renderings (debugging surfaces)."""

from repro.csp.env import Env
from repro.semantics.asynchronous import (
    AsyncState,
    BufEntry,
    HomeNode,
    RemoteNode,
    TRANS,
)
from repro.semantics.network import ACK, REQ, Channels, Msg
from repro.semantics.state import HOME_ID, ProcState, RvState


class TestProcState:
    def test_describe_plain(self):
        assert ProcState("V", Env()).describe() == "V"

    def test_describe_with_env(self):
        text = ProcState("E", Env({"o": 2})).describe()
        assert text == "E[o=2]"

    def test_moved_keeps_env_by_default(self):
        proc = ProcState("A", Env({"x": 1}))
        assert proc.moved("B").env is proc.env
        assert proc.moved("B").state == "B"


class TestRvState:
    def test_describe_lists_everyone(self):
        state = RvState(home=ProcState("F", Env()),
                        remotes=(ProcState("I", Env()),
                                 ProcState("V", Env())))
        text = state.describe()
        assert "h:F" in text and "r0:I" in text and "r1:V" in text

    def test_with_remote_replaces_one(self):
        state = RvState(home=ProcState("F", Env()),
                        remotes=(ProcState("I", Env()),
                                 ProcState("I", Env())))
        updated = state.with_remote(1, ProcState("V", Env()))
        assert updated.remotes[0].state == "I"
        assert updated.remotes[1].state == "V"
        assert state.remotes[1].state == "I"  # original untouched


class TestAsyncRendering:
    def test_home_idle_describe(self):
        home = HomeNode(state="E", env=Env(),
                        buffer=(BufEntry(1, "req"),))
        text = home.describe()
        assert "E" in text and "r1:req" in text

    def test_home_transient_describe(self):
        home = HomeNode(state="I1", env=Env(), mode=TRANS, awaiting=0,
                        pending_out=0)
        assert "→r0?" in home.describe()

    def test_note_entries_marked(self):
        entry = BufEntry(0, "LR", note=True)
        assert entry.describe().startswith("~")

    def test_home_buffer_entry_from_home_side(self):
        entry = BufEntry(HOME_ID, "inv")
        assert entry.describe() == "h:inv"

    def test_remote_describe_with_buffer(self):
        node = RemoteNode(state="V", env=Env(), buf=BufEntry("h", "inv"))
        assert "V{h:inv}" == node.describe()

    def test_remote_transient_star(self):
        node = RemoteNode(state="I", env=Env(), mode=TRANS, pending_out=0)
        assert node.describe() == "I*"

    def test_async_state_describe_includes_network(self):
        channels = Channels.empty(1).send_to_home(
            0, Msg(kind=REQ, msg="req")).send_to_remote(0, Msg(kind=ACK))
        state = AsyncState(home=HomeNode(state="F", env=Env()),
                           remotes=(RemoteNode(state="I", env=Env()),),
                           channels=channels)
        text = state.describe()
        assert "net:" in text
        assert "r0→h" in text and "h→r0" in text
