"""Unit tests for the explicit-state explorer (repro.check.explorer)."""

from repro.check.explorer import explore


class ChainSystem:
    """0 -> 1 -> ... -> n (a deadlock at the end unless looped)."""

    def __init__(self, n, loop=False):
        self.n = n
        self.loop = loop

    def initial_state(self):
        return 0

    def successors(self, state):
        if state < self.n:
            return [(("step", state), state + 1)]
        return [(("loop", state), 0)] if self.loop else []


class DiamondSystem:
    """Branching system: 0 -> {1, 2} -> 3 -> 0."""

    def initial_state(self):
        return 0

    def successors(self, state):
        return {
            0: [("a", 1), ("b", 2)],
            1: [("c", 3)],
            2: [("d", 3)],
            3: [("e", 0)],
        }[state]


class TestBasicExploration:
    def test_counts(self):
        result = explore(ChainSystem(9, loop=True), name="chain")
        assert result.n_states == 10
        assert result.n_transitions == 10
        assert result.completed and result.ok

    def test_diamond_visits_each_state_once(self):
        result = explore(DiamondSystem())
        assert result.n_states == 4
        assert result.n_transitions == 5

    def test_deadlock_detection_with_trace(self):
        result = explore(ChainSystem(3))
        assert len(result.deadlocks) == 1
        trace = result.deadlocks[0]
        assert trace.states[-1] == 3
        assert len(trace.steps) == 3  # BFS yields the shortest witness

    def test_allow_deadlock(self):
        result = explore(ChainSystem(3), allow_deadlock=True)
        assert result.deadlocks == []
        assert result.ok


class TestBudgets:
    def test_state_budget_marks_unfinished(self):
        result = explore(ChainSystem(1000, loop=True), max_states=50)
        assert not result.completed
        assert "state budget" in result.stop_reason
        assert result.cell() == "Unfinished"

    def test_time_budget(self):
        class Slow(ChainSystem):
            def successors(self, state):
                import time
                time.sleep(0.01)
                return super().successors(state)

        result = explore(Slow(10_000, loop=True), max_seconds=0.05)
        assert not result.completed
        assert "time budget" in result.stop_reason


class TestInvariants:
    def test_violation_found_with_shortest_trace(self):
        result = explore(ChainSystem(10, loop=True),
                         invariants=[("below-5", lambda s: s < 5)])
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.property_name == "below-5"
        assert violation.states[-1] == 5
        assert len(violation.steps) == 5

    def test_stop_on_violation_halts_early(self):
        result = explore(ChainSystem(100, loop=True),
                         invariants=[("below-5", lambda s: s < 5)])
        assert result.n_states < 100
        assert not result.completed

    def test_collect_all_violations(self):
        result = explore(ChainSystem(10, loop=True),
                         invariants=[("below-5", lambda s: s < 5),
                                     ("below-7", lambda s: s < 7)],
                         stop_on_violation=False)
        names = {v.property_name for v in result.violations}
        assert names == {"below-5", "below-7"}
        assert result.completed

    def test_initial_state_checked(self):
        result = explore(ChainSystem(3),
                         invariants=[("never", lambda s: False)])
        assert result.violations
        assert result.violations[0].states == [0]


class TestGraphRetention:
    def test_graph_kept_on_request(self):
        result = explore(DiamondSystem(), keep_graph=True)
        assert result.graph is not None
        assert set(result.graph) == {0, 1, 2, 3}
        assert [s for _a, s in result.graph[0]] == [1, 2]

    def test_graph_absent_by_default(self):
        assert explore(DiamondSystem()).graph is None


class TestResultRendering:
    def test_cell_format(self):
        result = explore(ChainSystem(3, loop=True))
        states, seconds = result.cell().split("/")
        assert int(states) == 4
        assert float(seconds) >= 0

    def test_describe_mentions_status(self):
        good = explore(ChainSystem(2, loop=True), name="tiny")
        assert "tiny" in good.describe() and "complete" in good.describe()
        bad = explore(ChainSystem(100, loop=True), max_states=5)
        assert "UNFINISHED" in bad.describe()

    def test_approx_bytes_positive(self):
        assert explore(ChainSystem(5, loop=True)).approx_bytes > 0
