"""Unit tests for the channel model (repro.semantics.network)."""

import pytest

from repro.semantics.network import ACK, NACK, NOTE, REPL, REQ, Channels, Msg


class TestMsg:
    def test_describe_ack_nack(self):
        assert Msg(kind=ACK).describe() == "ack"
        assert Msg(kind=NACK).describe() == "nack"

    def test_describe_req_with_payload(self):
        text = Msg(kind=REQ, msg="gr", payload=7).describe()
        assert "req" in text and "gr" in text and "7" in text

    def test_hashable(self):
        assert hash(Msg(kind=REPL, msg="gr")) == hash(Msg(kind=REPL, msg="gr"))


class TestChannels:
    def test_empty(self):
        ch = Channels.empty(3)
        assert ch.n_remotes == 3
        assert ch.total_in_flight == 0
        assert ch.head_to_home(0) is None
        assert ch.head_to_remote(2) is None

    def test_fifo_order_per_channel(self):
        ch = Channels.empty(1)
        ch = ch.send_to_home(0, Msg(kind=REQ, msg="a"))
        ch = ch.send_to_home(0, Msg(kind=REQ, msg="b"))
        first, ch = ch.pop(Channels.to_home(0))
        second, ch = ch.pop(Channels.to_home(0))
        assert (first.msg, second.msg) == ("a", "b")

    def test_channels_are_independent(self):
        ch = Channels.empty(2)
        ch = ch.send_to_home(0, Msg(kind=REQ, msg="a"))
        ch = ch.send_to_remote(1, Msg(kind=ACK))
        assert ch.head_to_home(0).msg == "a"
        assert ch.head_to_home(1) is None
        assert ch.head_to_remote(1).kind == ACK
        assert ch.head_to_remote(0) is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Channels.empty(1).pop(0)

    def test_push_is_persistent(self):
        ch = Channels.empty(1)
        ch2 = ch.send_to_home(0, Msg(kind=NOTE, msg="LR"))
        assert ch.total_in_flight == 0
        assert ch2.total_in_flight == 1

    def test_in_flight_enumeration(self):
        ch = Channels.empty(2)
        ch = ch.send_to_home(1, Msg(kind=REQ, msg="x"))
        ch = ch.send_to_remote(0, Msg(kind=ACK))
        flights = list(ch.in_flight())
        assert (0, "to_remote", Msg(kind=ACK)) in flights
        assert (1, "to_home", Msg(kind=REQ, msg="x")) in flights
        assert len(flights) == 2

    def test_index_helpers(self):
        assert Channels.to_remote(3) == 6
        assert Channels.to_home(3) == 7

    def test_describe_empty(self):
        assert Channels.empty(2).describe() == "∅"

    def test_hashable_value_semantics(self):
        a = Channels.empty(1).send_to_home(0, Msg(kind=ACK))
        b = Channels.empty(1).send_to_home(0, Msg(kind=ACK))
        assert a == b and hash(a) == hash(b)
