"""Unit tests for the ``repro paramverify`` CLI subcommand."""

import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, main
from repro.protocols.invariants import COHERENCE_SPECS

from .test_coherencecheck import incoherent_invalidate


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["paramverify", "mesi"])
        assert args.budget == 50_000 and args.buffer == 2
        assert not args.json and not args.strict

    def test_all_accepted(self):
        args = build_parser().parse_args(["paramverify", "all"])
        assert args.protocol == "all"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["paramverify", "mosi"])


class TestTextOutput:
    def test_discharge_exits_zero(self, capsys):
        assert main(["paramverify", "migratory"]) == 0
        out = capsys.readouterr().out
        assert "parameterized coherence for migratory: discharged" in out
        assert "P4601" in out

    def test_all_protocols_discharge(self, capsys):
        assert main(["paramverify", "all", "--strict"]) == 0
        out = capsys.readouterr().out
        for name in ("invalidate", "mesi", "migratory", "msi"):
            assert f"parameterized coherence for {name}: discharged" in out

    def test_refutation_prints_msc_witness(self, capsys, monkeypatch):
        monkeypatch.setitem(cli.PROTOCOLS, "broken", incoherent_invalidate)
        monkeypatch.setitem(COHERENCE_SPECS, "broken",
                            COHERENCE_SPECS["invalidate"])
        assert main(["paramverify", "broken"]) == 0  # informational
        out = capsys.readouterr().out
        assert "refuted" in out
        assert "refutation witness" in out
        assert "P4602" in out
        assert "grW" in out  # the MSC shows the offending grant


class TestJsonOutput:
    def test_single_doc_parses(self, capsys):
        assert main(["paramverify", "msi", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["protocol"] == "msi"
        assert doc["status"] == "discharged"
        assert doc["candidates"] == doc["validated"]

    def test_all_is_one_json_array(self, capsys):
        assert main(["paramverify", "all", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["protocol"] for d in docs] == ["invalidate", "mesi",
                                                "migratory", "msi"]
        assert all(d["discharged"] for d in docs)


class TestExitCodes:
    def test_strict_fails_on_refutation(self, capsys, monkeypatch):
        monkeypatch.setitem(cli.PROTOCOLS, "broken", incoherent_invalidate)
        monkeypatch.setitem(COHERENCE_SPECS, "broken",
                            COHERENCE_SPECS["invalidate"])
        assert main(["paramverify", "broken", "--strict"]) == 1

    def test_strict_all_fails_when_an_early_protocol_is_broken(
            self, capsys, monkeypatch):
        # "broken" sorts first, so every clean protocol runs after it;
        # the verdict accumulator must not be washed out by a later
        # discharge (exit-code consistency with `repro flows --strict`)
        monkeypatch.setitem(cli.PROTOCOLS, "broken", incoherent_invalidate)
        monkeypatch.setitem(COHERENCE_SPECS, "broken",
                            COHERENCE_SPECS["invalidate"])
        assert main(["paramverify", "all", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "parameterized coherence for broken: refuted" in out
        assert "parameterized coherence for msi: discharged" in out


class TestFlowsStrictOrdering:
    def test_flows_strict_all_fails_when_an_early_protocol_is_broken(
            self, capsys, monkeypatch):
        # same accumulator regression, for the P45xx command
        from .test_paramcheck import deadlocker

        monkeypatch.setitem(cli.PROTOCOLS, "broken", deadlocker)
        assert main(["flows", "all", "--strict"]) == 1
        out = capsys.readouterr().out
        assert "P4502" in out
        assert "deadlock-free-any-N" in out  # later protocols still ran
