"""Unit tests for safety/progress checking (repro.check.properties)."""

import pytest

from repro.check.explorer import explore
from repro.check.properties import (
    ProgressReport,
    assert_safe,
    check_progress,
    tarjan_sccs,
)
from repro.errors import PropertyViolation


class GraphSystem:
    """System from an explicit labelled graph {node: [(next, progress)]}."""

    def __init__(self, graph, init=0):
        self.graph = graph
        self.init = init

    def initial_state(self):
        return self.init

    def successors(self, state):
        return [((state, nxt), nxt) for nxt, _p in self.graph[state]]

    def is_progress(self, action):
        src, dst = action
        return dict(self.graph[src]).get(dst, False)


class TestTarjan:
    def test_single_node_no_edge(self):
        assert tarjan_sccs([[]]) == [[0]]

    def test_simple_cycle(self):
        sccs = tarjan_sccs([[1], [2], [0]])
        assert sorted(sccs[0]) == [0, 1, 2]

    def test_two_components_reverse_topological(self):
        # 0 -> 1 <-> 2 ; component {1,2} must precede {0}
        sccs = tarjan_sccs([[1], [2], [1]])
        assert sorted(map(sorted, sccs), key=len) == [[0], [1, 2]]
        assert sorted(sccs[0]) == [1, 2]

    def test_self_loop(self):
        sccs = tarjan_sccs([[0, 1], []])
        assert [0] in sccs and [1] in sccs

    def test_large_chain_no_recursion_error(self):
        n = 50_000
        adjacency = [[i + 1] for i in range(n - 1)] + [[]]
        assert len(tarjan_sccs(adjacency)) == n


class TestAssertSafeCountOnly:
    def test_count_only_deadlocks_still_raise(self):
        """Parallel runs report deadlock counts without witness traces;
        assert_safe must not mistake the empty list for safety."""
        from repro.check.stats import ExplorationResult
        result = ExplorationResult(system_name="sys", n_states=5,
                                   n_transitions=8, seconds=0.1,
                                   completed=True, deadlock_count=2)
        with pytest.raises(PropertyViolation) as excinfo:
            assert_safe(result)
        assert "no witness trace" in str(excinfo.value)

    def test_clean_result_passes_through(self):
        from repro.check.stats import ExplorationResult
        result = ExplorationResult(system_name="sys", n_states=5,
                                   n_transitions=8, seconds=0.1,
                                   completed=True)
        assert assert_safe(result) is result


class TestCheckProgress:
    def test_progress_cycle_ok(self):
        system = GraphSystem({0: [(1, False)], 1: [(0, True)]})
        report = check_progress(system)
        assert report.ok
        assert report.n_terminal_sccs == 1

    def test_livelock_detected(self):
        # progress edge leads into a progress-free terminal cycle
        system = GraphSystem({0: [(1, True)], 1: [(2, False)],
                              2: [(1, False)]})
        report = check_progress(system)
        assert not report.ok
        assert report.livelocks and report.livelocks[0][0] == 2
        assert "livelock" in report.describe().lower() or "PROGRESS FAILS" in report.describe()

    def test_deadlock_detected(self):
        system = GraphSystem({0: [(1, True)], 1: []})
        report = check_progress(system)
        assert not report.ok
        assert report.deadlocks == [1]

    def test_non_terminal_progress_free_scc_ok(self):
        # a progress-free cycle you can always leave is not a livelock
        system = GraphSystem({
            0: [(1, False), (2, True)],
            1: [(0, False)],
            2: [(0, True)],
        })
        assert check_progress(system).ok

    def test_budget(self):
        system = GraphSystem({i: [((i + 1) % 1000, True)]
                              for i in range(1000)})
        report = check_progress(system, max_states=10)
        assert not report.completed
        assert "budget" in report.describe()

    def test_rendezvous_system_protocol_progress(self, migratory_rv2):
        assert check_progress(migratory_rv2).ok

    def test_async_system_protocol_progress(self, migratory_async2):
        assert check_progress(migratory_async2).ok


class TestAssertSafe:
    def test_passes_through_clean_result(self, migratory_rv2):
        result = explore(migratory_rv2)
        assert assert_safe(result) is result

    def test_raises_on_deadlock(self):
        class Dead:
            def initial_state(self):
                return 0

            def successors(self, state):
                return []

        with pytest.raises(PropertyViolation, match="deadlock"):
            assert_safe(explore(Dead()))

    def test_raises_on_violation_with_witness(self):
        class Loop:
            def initial_state(self):
                return 0

            def successors(self, state):
                return [("go", 1 - state)]

        result = explore(Loop(), invariants=[("zero", lambda s: s == 0)])
        with pytest.raises(PropertyViolation) as excinfo:
            assert_safe(result)
        assert excinfo.value.witness is not None

    def test_raises_budget_exceeded_on_unfinished(self):
        from repro.errors import BudgetExceeded

        class Big:
            def initial_state(self):
                return 0

            def successors(self, state):
                return [("go", state + 1)]

        with pytest.raises(BudgetExceeded, match="incomplete") as excinfo:
            assert_safe(explore(Big(), max_states=5))
        assert excinfo.value.stats is not None


class TestProgressReportRendering:
    def test_describe_ok(self):
        report = ProgressReport(ok=True, n_states=10, n_sccs=2,
                                n_terminal_sccs=1)
        assert "PROGRESS GUARANTEED" in report.describe()

    def test_describe_incomplete(self):
        report = ProgressReport(ok=False, n_states=5, n_sccs=0,
                                n_terminal_sccs=0, completed=False,
                                stop_reason="budget")
        assert "incomplete" in report.describe()
