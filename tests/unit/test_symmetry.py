"""Unit tests for symmetry reduction (repro.check.symmetry)."""

import pytest

from repro import (
    AsyncSystem,
    RendezvousSystem,
    explore,
)
from repro.check.symmetry import SymmetricSystem, normalize
from repro.errors import CheckError
from repro.protocols.symmetry import (
    INVALIDATE_SYMMETRY,
    MIGRATORY_SYMMETRY,
    MSI_SYMMETRY,
    symmetry_spec_for,
)


class TestNormalizeBasics:
    def test_initial_state_is_fixed_point(self, migratory):
        system = RendezvousSystem(migratory, 4)
        init = system.initial_state()
        assert normalize(init, MIGRATORY_SYMMETRY) == init

    def test_idempotent(self, migratory):
        system = RendezvousSystem(migratory, 3)
        state = system.initial_state()
        for action, nxt in system.successors(state):
            once = normalize(nxt, MIGRATORY_SYMMETRY)
            assert normalize(once, MIGRATORY_SYMMETRY) == once

    def test_orbit_members_collapse(self, migratory):
        """Grant to r0 vs grant to r2: same orbit, same representative."""
        from repro.semantics.rendezvous import RendezvousStep
        from repro.semantics.state import HOME_ID
        from repro.csp.ast import DATA
        system = RendezvousSystem(migratory, 3)

        def drive(i):
            s = system.initial_state()
            s = system.apply(s, RendezvousStep(i, HOME_ID, "req"))
            s = system.apply(s, RendezvousStep(HOME_ID, i, "gr",
                                               payload=DATA))
            return s

        assert drive(0) != drive(2)
        assert normalize(drive(0), MIGRATORY_SYMMETRY) == \
            normalize(drive(2), MIGRATORY_SYMMETRY)

    def test_unknown_state_type_rejected(self):
        with pytest.raises(CheckError):
            normalize(42, MIGRATORY_SYMMETRY)

    def test_spec_lookup(self):
        assert symmetry_spec_for("migratory") is MIGRATORY_SYMMETRY
        assert "S" in symmetry_spec_for("invalidate").set_vars
        assert "u" in MSI_SYMMETRY.id_vars
        with pytest.raises(KeyError):
            symmetry_spec_for("nope")


class TestSoundness:
    """The reduced system reaches exactly the orbit-representatives of the
    full system's reachable set (up to normalization ties)."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_rv_orbits_match(self, migratory, n):
        system = RendezvousSystem(migratory, n)
        full = explore(system, keep_graph=True)
        reduced = explore(SymmetricSystem(system, MIGRATORY_SYMMETRY),
                          keep_graph=True)
        full_orbits = {normalize(s, MIGRATORY_SYMMETRY)
                       for s in full.graph}
        # the reduced run must cover every orbit and introduce none
        reduced_states = set(reduced.graph)
        assert {normalize(s, MIGRATORY_SYMMETRY)
                for s in reduced_states} == full_orbits
        assert reduced.n_states <= full.n_states

    @pytest.mark.parametrize("n", [2, 3])
    def test_async_orbits_match(self, migratory_refined, n):
        system = AsyncSystem(migratory_refined, n)
        full = explore(system, keep_graph=True)
        reduced = explore(SymmetricSystem(system, MIGRATORY_SYMMETRY),
                          keep_graph=True)
        full_orbits = {normalize(s, MIGRATORY_SYMMETRY)
                       for s in full.graph}
        assert {normalize(s, MIGRATORY_SYMMETRY)
                for s in reduced.graph} == full_orbits

    def test_invalidate_orbits_match(self, invalidate):
        system = RendezvousSystem(invalidate, 3)
        full = explore(system, keep_graph=True)
        reduced = explore(SymmetricSystem(system, INVALIDATE_SYMMETRY),
                          keep_graph=True)
        full_orbits = {normalize(s, INVALIDATE_SYMMETRY)
                       for s in full.graph}
        assert {normalize(s, INVALIDATE_SYMMETRY)
                for s in reduced.graph} == full_orbits

    def test_symmetric_invariants_preserved(self, migratory):
        from repro import MIGRATORY_SPEC, coherence_invariants
        system = SymmetricSystem(RendezvousSystem(migratory, 4),
                                 MIGRATORY_SYMMETRY)
        result = explore(system,
                         invariants=coherence_invariants(MIGRATORY_SPEC))
        assert result.ok

    def test_violations_still_found_under_reduction(self, migratory):
        """An (artificial) symmetric invariant violation survives."""
        system = SymmetricSystem(RendezvousSystem(migratory, 3),
                                 MIGRATORY_SYMMETRY)
        result = explore(
            system,
            invariants=[("nobody-ever-holds",
                         lambda s: all(r.state != "V" for r in s.remotes))])
        assert result.violations


class TestReductionPower:
    def test_migratory_rendezvous_becomes_constant(self, migratory):
        sizes = [explore(SymmetricSystem(RendezvousSystem(migratory, n),
                                         MIGRATORY_SYMMETRY)).n_states
                 for n in (3, 6, 10)]
        # idle remotes are fully interchangeable: the orbit count saturates
        assert sizes[0] == sizes[1] == sizes[2]

    def test_invalidate_reduction_large(self, invalidate):
        full = explore(RendezvousSystem(invalidate, 4)).n_states
        reduced = explore(SymmetricSystem(RendezvousSystem(invalidate, 4),
                                          INVALIDATE_SYMMETRY)).n_states
        assert reduced * 10 < full

    def test_async_reduction(self, migratory_refined):
        full = explore(AsyncSystem(migratory_refined, 4)).n_states
        reduced = explore(
            SymmetricSystem(AsyncSystem(migratory_refined, 4),
                            MIGRATORY_SYMMETRY)).n_states
        assert reduced * 10 < full
