"""Unit tests for simulation metrics (repro.sim.metrics)."""

import pytest

from repro.semantics.network import ACK, NACK, REQ, Msg
from repro.semantics.rendezvous import RendezvousStep
from repro.semantics.state import HOME_ID
from repro.sim.metrics import SimMetrics, jain_index


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_one_node_hogs(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_is_fair(self):
        assert jain_index([]) == 1.0

    def test_all_zero_is_fair(self):
        assert jain_index([0, 0, 0]) == 1.0

    def test_bounds(self):
        for values in ([1, 2, 3], [7, 1], [100, 99, 98]):
            index = jain_index(values)
            assert 1 / len(values) <= index <= 1.0

    def test_scale_invariant(self):
        assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))


class TestSimMetricsAccumulation:
    def _metrics(self):
        return SimMetrics(n_remotes=3)

    def test_record_sends(self):
        m = self._metrics()
        m.record_sends(1.0, [Msg(kind=REQ, msg="req"), Msg(kind=ACK)])
        m.record_sends(2.0, [Msg(kind=NACK)])
        assert m.total_messages == 3
        assert m.messages_by_kind == {"REQ": 1, "ACK": 1, "NACK": 1}
        assert m.messages_by_type == {"req": 1}

    def test_record_completions_tracks_waits(self):
        m = self._metrics()
        m.record_completions(10.0, [RendezvousStep(0, HOME_ID, "req")])
        m.record_completions(50.0, [RendezvousStep(0, HOME_ID, "req")])
        m.record_completions(55.0, [RendezvousStep(1, HOME_ID, "req")])
        assert m.completions_by_remote == {0: 2, 1: 1}
        assert m.completions_by_type == {"req": 3}
        assert m.longest_wait[0] == pytest.approx(40.0)
        assert m.longest_wait[1] == pytest.approx(55.0)

    def test_messages_per_rendezvous(self):
        m = self._metrics()
        m.record_sends(1.0, [Msg(kind=REQ, msg="req")] * 4)
        m.record_completions(1.0, [RendezvousStep(0, HOME_ID, "req")] * 2)
        assert m.messages_per_rendezvous == 2.0

    def test_messages_per_rendezvous_no_completions(self):
        m = self._metrics()
        m.record_sends(1.0, [Msg(kind=REQ, msg="req")])
        assert m.messages_per_rendezvous == float("inf")

    def test_nack_rate(self):
        m = self._metrics()
        m.record_sends(1.0, [Msg(kind=REQ, msg="r"), Msg(kind=NACK),
                             Msg(kind=NACK), Msg(kind=ACK)])
        assert m.nack_rate == pytest.approx(0.5)
        assert SimMetrics(n_remotes=1).nack_rate == 0.0

    def test_starved_remotes(self):
        m = self._metrics()
        m.record_completions(1.0, [RendezvousStep(1, HOME_ID, "req")])
        assert m.starved_remotes == [0, 2]

    def test_fairness_uses_all_remotes(self):
        m = self._metrics()
        m.record_completions(1.0, [RendezvousStep(0, HOME_ID, "req")])
        assert m.fairness == pytest.approx(1 / 3)

    def test_buffer_occupancy(self):
        from repro.semantics.asynchronous import BufEntry
        m = self._metrics()
        m.record_buffer(1.0, (BufEntry(0, "req"),))
        m.record_buffer(2.0, (BufEntry(0, "req"), BufEntry(1, "LR",
                                                           note=True)))
        assert m.max_buffer_occupancy == (1, 1)

    def test_latency_percentiles(self):
        m = self._metrics()
        for value in range(1, 101):
            m.record_latency(float(value))
        pct = m.latency_percentiles((50, 90, 99))
        assert pct[50] == pytest.approx(50, abs=2)
        assert pct[90] == pytest.approx(90, abs=2)
        assert pct[99] == pytest.approx(99, abs=2)

    def test_latency_percentiles_empty(self):
        assert self._metrics().latency_percentiles() is None

    def test_describe_contains_key_fields(self):
        m = self._metrics()
        m.record_sends(1.0, [Msg(kind=REQ, msg="req")])
        m.record_completions(1.0, [RendezvousStep(0, HOME_ID, "req")])
        m.end_time = 100.0
        text = m.describe()
        assert "messages/rendezvous" in text
        assert "fairness" in text
