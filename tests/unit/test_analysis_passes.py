"""Unit tests for the analysis pass suite (repro.analysis)."""

import pytest

from repro.analysis import (
    Severity,
    analyze_protocol,
    analyze_refined,
    home_buffer_bound,
    patterns_may_overlap,
    remote_demand,
    unreachable_states,
)
from repro.csp.ast import (
    AnySender,
    PredSender,
    SetSender,
    VarSender,
    VarTarget,
)
from repro.csp.builder import ProcessBuilder, inp, out, protocol, tau
from repro.errors import ValidationError
from repro.protocols.handwritten import handwritten_migratory
from repro.refine import (
    FusedPair,
    RefinedProtocol,
    RefinementConfig,
    RefinementPlan,
    refine,
)
from repro.refine.plan import HOME_SIDE, REMOTE


def tiny_protocol(home_extra=(), remote_extra=()):
    """One-message ping protocol, optionally with extra states appended."""
    h = ProcessBuilder.home("h", j=None)
    h.state("a", inp("m", sender=AnySender(), to="a"))
    for name, guards in home_extra:
        h.state(name, *guards)
    r = ProcessBuilder.remote("r")
    r.state("a", out("m", to="a"))
    for name, guards in remote_extra:
        r.state(name, *guards)
    return protocol("tiny", h, r)


class TestCleanProtocols:
    def test_builtins_lint_clean_at_error_severity(
            self, migratory, invalidate, msi):
        for proto in (migratory, invalidate, msi):
            report = analyze_protocol(proto)
            assert report.ok, report.render_text()

    def test_refined_builtins_lint_clean(self, migratory_refined,
                                         invalidate_refined, msi_refined):
        for refined in (migratory_refined, invalidate_refined, msi_refined):
            report = analyze_refined(refined)
            assert report.ok, report.render_text()

    def test_passes_recorded(self, migratory):
        report = analyze_protocol(migratory)
        assert report.passes_run == ("restrictions", "reachability",
                                     "overlap", "fusability",
                                     "buffer-demand", "flows", "paramcheck",
                                     "coherence")

    def test_param_passes_can_be_excluded(self, migratory):
        report = analyze_protocol(migratory, include_param=False)
        assert report.passes_run == ("restrictions", "reachability",
                                     "overlap", "fusability", "buffer-demand")
        assert not {c for c in report.codes() if c.startswith("P45")}

    def test_select_narrows(self, migratory):
        report = analyze_protocol(migratory, select=["P3301"])
        assert report.codes() == {"P3301"}


class TestReachabilityPass:
    def test_unreachable_state_warned(self):
        proto = tiny_protocol(
            remote_extra=[("island", [out("m", to="island")])])
        report = analyze_protocol(proto)
        assert unreachable_states(proto.remote) == {"island"}
        found = [d for d in report if d.code == "P2501"]
        assert len(found) == 1
        assert found[0].location == "r.island"
        assert found[0].severity is Severity.WARNING

    def test_dead_guard_warned(self):
        # home sends "ghost" but the remote never inputs it
        proto = tiny_protocol(
            home_extra=[("g", [out("ghost", target=VarTarget("j"), to="a"),
                               inp("m", sender=AnySender(), to="a")])])
        report = analyze_protocol(proto)
        dead = [d for d in report if d.code == "P2502"]
        assert len(dead) == 1
        assert "ghost" in dead[0].message
        # ... even though "g" itself is unreachable, both findings appear
        assert any(d.code == "P2501" for d in report)

    def test_clean_protocol_has_neither(self):
        report = analyze_protocol(tiny_protocol())
        assert not report.codes() & {"P2501", "P2502"}


class TestOverlapPass:
    def test_two_anysenders_same_msg_flagged(self):
        h = ProcessBuilder.home("h")
        h.state("a",
                inp("m", sender=AnySender(), to="a"),
                inp("m", sender=AnySender(), to="a"))
        r = ProcessBuilder.remote("r")
        r.state("a", out("m", to="a"))
        report = analyze_protocol(protocol("p", h, r))
        overlaps = [d for d in report if d.code == "P2410"]
        assert len(overlaps) == 1
        assert overlaps[0].severity is Severity.WARNING

    def test_distinct_messages_not_flagged(self, migratory, invalidate):
        for proto in (migratory, invalidate):
            assert "P2410" not in analyze_protocol(proto).codes()

    def test_pattern_overlap_rules(self):
        assert patterns_may_overlap(AnySender(), VarSender("o"))
        assert patterns_may_overlap(PredSender(lambda e, s: False),
                                    SetSender("S"))
        assert patterns_may_overlap(VarSender("o"), VarSender("o"))
        assert not patterns_may_overlap(VarSender("o"), VarSender("t"))
        assert patterns_may_overlap(SetSender("S"), SetSender("S"))
        assert not patterns_may_overlap(SetSender("S"), SetSender("T"))
        assert not patterns_may_overlap(VarSender("o"), SetSender("S"))
        assert not patterns_may_overlap(None, AnySender())


class TestFusabilityPass:
    def test_migratory_pairs_reported_fusable(self, migratory):
        report = analyze_protocol(migratory, select=["P3301"])
        locations = {d.location for d in report}
        assert "migratory:req" in locations
        assert "migratory:inv" in locations

    def test_failures_name_the_condition(self, migratory):
        report = analyze_protocol(migratory, select=["P3302"])
        assert len(report) >= 1
        for d in report:
            assert "failed condition(s):" in d.message

    def test_fusability_diagnostics_are_informational(self, msi):
        report = analyze_protocol(msi)
        for d in report:
            if d.code.startswith("P33"):
                assert d.severity is Severity.INFO


class TestBufferDemandPass:
    def test_plain_remote_demands_one(self, migratory):
        assert remote_demand(migratory.remote, frozenset()) == 1
        assert home_buffer_bound(migratory, 4) == 4

    def test_input_only_remote_demands_zero(self):
        r = ProcessBuilder.remote("r")
        r.state("a", inp("m", to="a"))
        assert remote_demand(r.build(), frozenset()) == 0

    def test_fire_and_forget_chain_counts(self):
        hand = handwritten_migratory()
        demand = remote_demand(hand.protocol.remote, frozenset({"LR"}))
        assert demand == 2  # one unacked LR plus the blocking request

    def test_fire_and_forget_cycle_unbounded(self):
        r = ProcessBuilder.remote("r")
        r.state("a", out("n", to="a"))
        assert remote_demand(r.build(), frozenset({"n"})) is None

    def test_undersized_buffer_warns(self, migratory):
        report = analyze_protocol(migratory, nodes=4)  # bound 4 > k=2
        assert "P3201" in report.codes()
        assert "P3202" not in report.codes()

    def test_covering_buffer_noted(self, migratory):
        config = RefinementConfig(home_buffer_capacity=4)
        report = analyze_protocol(migratory, config=config, nodes=4)
        assert "P3202" in report.codes()
        assert "P3201" not in report.codes()

    def test_unbounded_demand_warned(self):
        h = ProcessBuilder.home("h")
        h.state("a", inp("n", sender=AnySender(), to="a"))
        r = ProcessBuilder.remote("r")
        r.state("a", out("n", to="a"))
        proto = protocol("noisy", h, r)
        config = RefinementConfig(fire_and_forget=frozenset({"n"}))
        report = analyze_protocol(proto, config=config)
        assert "P3203" in report.codes()
        assert {"P3201", "P3202"}.isdisjoint(report.codes())


def requester_reply_protocol():
    """Remote q -> home, home answers x; fusable shape not required."""
    h = ProcessBuilder.home("h", j=None)
    h.state("h0", inp("q", sender=AnySender(), bind_sender="j", to="h1"))
    h.state("h1", out("x", target=VarTarget("j"), to="h0"))
    r = ProcessBuilder.remote("r")
    r.state("s", out("q", to="w"))
    r.state("w", inp("x", to="s"))
    return protocol("qx", h, r)


class TestTransientPass:
    def test_inventory_reported(self, migratory_refined):
        report = analyze_refined(migratory_refined, select=["P3403"])
        assert len(report) == 1
        note = report.diagnostics[0]
        assert note.severity is Severity.INFO
        assert "remote" in note.message and "home" in note.message

    def test_fused_pair_without_reply_exit_is_error(self):
        # hand-assemble a plan fusing q with a reply the requester's
        # successor state never inputs
        proto = requester_reply_protocol()
        plan = RefinementPlan(
            fused=(FusedPair(request_msg="q", reply_msg="nope",
                             requester=REMOTE),))
        report = analyze_refined(RefinedProtocol(proto, plan))
        broken = [d for d in report if d.code == "P3401"]
        assert len(broken) == 1
        assert broken[0].severity is Severity.ERROR
        assert broken[0].location == "r.s"
        assert "'nope'" in broken[0].message

    def test_correct_fused_pair_accepted(self):
        proto = requester_reply_protocol()
        plan = RefinementPlan(
            fused=(FusedPair(request_msg="q", reply_msg="x",
                             requester=REMOTE),))
        report = analyze_refined(RefinedProtocol(proto, plan))
        assert "P3401" not in report.codes()

    def test_home_side_fused_pair_checked_too(self):
        # home sends x and waits for q back; successor h0 does input q
        proto = requester_reply_protocol()
        plan = RefinementPlan(
            fused=(FusedPair(request_msg="x", reply_msg="q",
                             requester=HOME_SIDE),))
        report = analyze_refined(RefinedProtocol(proto, plan))
        assert "P3401" not in report.codes()

    def test_fire_and_forget_to_remote_is_error(self):
        proto = requester_reply_protocol()
        plan = RefinementPlan(
            config=RefinementConfig(fire_and_forget=frozenset({"x"})))
        report = analyze_refined(RefinedProtocol(proto, plan))
        assert any(d.code == "P3402" and d.severity is Severity.ERROR
                   for d in report)

    def test_remote_to_home_fire_and_forget_allowed(self):
        hand = handwritten_migratory()
        assert "P3402" not in analyze_refined(hand).codes()


def buggy_protocol():
    """A protocol seeded with one instance of many distinct defects."""
    h = ProcessBuilder.home("bh", j=None)
    h.state("H0",
            inp("up", sender=AnySender(), to="H0"),
            inp("up", sender=AnySender(), to="H1"),   # P2410 overlap
            tau("oops", to="H0"))                     # P2408 tau in comm state
    h.state("H1", out("ghost", target=VarTarget("j"), to="H0"))  # P2502 dead
    h.state("HX", inp("up", sender=AnySender(), to="HX"))  # P2501 unreachable
    r = ProcessBuilder.remote("br")
    r.state("R0", out("up", to="R1"))
    r.state("R1", tau("spin", to="R2"))
    r.state("R2", tau("back", to="R1"))               # P2409 internal cycle
    r.state("R3")                                     # P2401 terminal
    return protocol("buggy", h, r)


class TestSeededBugProtocol:
    def test_triggers_many_distinct_codes(self):
        report = analyze_protocol(buggy_protocol())
        expected = {"P2401", "P2408", "P2409", "P2410", "P2501", "P2502"}
        assert expected <= report.codes()
        assert len(expected) >= 5  # acceptance criterion from the issue

    def test_every_error_has_a_hint(self):
        report = analyze_protocol(buggy_protocol())
        for d in report.errors:
            assert d.hint


class TestEngineGate:
    def test_refine_refuses_on_error_diagnostics(self):
        with pytest.raises(ValidationError) as excinfo:
            refine(buggy_protocol())
        message = str(excinfo.value)
        assert "P2408" in message and "P2401" in message
        assert excinfo.value.diagnostics
        assert all(d.severity is Severity.ERROR
                   for d in excinfo.value.diagnostics)

    def test_warnings_do_not_block_refinement(self):
        proto = tiny_protocol(
            remote_extra=[("island", [out("m", to="island")])])
        refined = refine(proto)  # P2501 is only a warning
        assert refined.protocol is proto
