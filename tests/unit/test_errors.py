"""Unit tests for the exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    BudgetExceeded,
    CheckError,
    PropertyViolation,
    RefinementError,
    ReproError,
    SemanticsError,
    SimulationError,
    SpecError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        SpecError, ValidationError, SemanticsError, RefinementError,
        CheckError, BudgetExceeded, PropertyViolation, SimulationError,
    ])
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_is_a_spec_error(self):
        assert issubclass(ValidationError, SpecError)

    def test_budget_and_violation_are_check_errors(self):
        assert issubclass(BudgetExceeded, CheckError)
        assert issubclass(PropertyViolation, CheckError)
        # ... but neither is a subclass of the other: "no verdict" is a
        # different thing from "unsafe"
        assert not issubclass(BudgetExceeded, PropertyViolation)
        assert not issubclass(PropertyViolation, BudgetExceeded)

    def test_one_except_clause_catches_the_library(self):
        with pytest.raises(ReproError):
            raise SemanticsError("x")


class TestPayloads:
    def test_budget_exceeded_carries_stats(self):
        stats = object()
        exc = BudgetExceeded("over", stats=stats)
        assert exc.stats is stats
        assert "over" in str(exc)

    def test_property_violation_carries_witness(self):
        witness = ["trace"]
        exc = PropertyViolation("bad", witness=witness)
        assert exc.witness is witness

    def test_defaults_are_none(self):
        assert BudgetExceeded("x").stats is None
        assert PropertyViolation("x").witness is None
