"""Unit tests for the discrete-event simulator (repro.sim)."""

import pytest

from repro import AsyncSystem, explore
from repro.protocols.handwritten import handwritten_migratory
from repro.sim import (
    AccessClass,
    HotLineWorkload,
    Simulator,
    SyntheticWorkload,
    TraceWorkload,
    workload_spec_for,
)
from repro.sim.policy import MIGRATORY_WORKLOAD, SEND, TAU


class TestWorkloadSpec:
    def test_classify(self):
        assert MIGRATORY_WORKLOAD.classify("I", SEND, None) == \
            AccessClass.ACQUIRE
        assert MIGRATORY_WORKLOAD.classify("V", TAU, "evict") == \
            AccessClass.EVICT
        assert MIGRATORY_WORKLOAD.classify("V.lr", SEND, None) is None

    def test_lookup_by_name(self):
        assert workload_spec_for("migratory").name == "migratory"
        assert workload_spec_for("migratory", explicit_rw=True).name == \
            "migratory-rw"
        assert workload_spec_for("invalidate").name == "invalidate"
        with pytest.raises(KeyError):
            workload_spec_for("nope")


class TestDeterminism:
    def test_same_seed_same_metrics(self, migratory_refined):
        def run():
            sim = Simulator(migratory_refined, 3,
                            SyntheticWorkload(seed=7), seed=7)
            return sim.run(until=5000)

        a, b = run(), run()
        assert a.messages_by_kind == b.messages_by_kind
        assert a.completions_by_remote == b.completions_by_remote
        assert a.acquire_latencies == b.acquire_latencies

    def test_different_seed_differs(self, migratory_refined):
        a = Simulator(migratory_refined, 3, SyntheticWorkload(seed=1),
                      seed=1).run(until=5000)
        b = Simulator(migratory_refined, 3, SyntheticWorkload(seed=2),
                      seed=2).run(until=5000)
        assert a.total_messages != b.total_messages


class TestProtocolActivity:
    def test_transactions_complete(self, migratory_refined):
        sim = Simulator(migratory_refined, 4, SyntheticWorkload(seed=3),
                        seed=3)
        metrics = sim.run(until=20_000)
        assert metrics.total_completions > 50
        assert metrics.completions_by_type["gr"] > 0
        assert metrics.completions_by_type["req"] > 0

    def test_contention_generates_nacks_and_invalidations(
            self, migratory_refined):
        sim = Simulator(migratory_refined, 6, HotLineWorkload(seed=4),
                        seed=4)
        metrics = sim.run(until=20_000)
        assert metrics.messages_by_kind["NACK"] > 0
        assert metrics.completions_by_type["inv"] > 0
        assert metrics.nack_rate > 0.01

    def test_single_node_never_nacked(self, migratory_refined):
        sim = Simulator(migratory_refined, 1, SyntheticWorkload(seed=5),
                        seed=5)
        metrics = sim.run(until=20_000)
        assert metrics.messages_by_kind.get("NACK", 0) == 0

    def test_fused_pair_costs_two_messages(self, migratory_refined):
        """One uncontended acquire = exactly REQ + REPL."""
        sim = Simulator(migratory_refined, 1,
                        TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)]),
                        seed=0)
        metrics = sim.run(until=1000)
        assert metrics.total_messages == 2
        assert metrics.messages_by_kind == {"REQ": 1, "REPL": 1}
        assert metrics.completions_by_type["req"] == 1
        assert metrics.completions_by_type["gr"] == 1

    def test_plain_pair_costs_four_messages(self, migratory_refined_plain):
        sim = Simulator(migratory_refined_plain, 1,
                        TraceWorkload([(10.0, 0, AccessClass.ACQUIRE)]),
                        seed=0)
        metrics = sim.run(until=1000)
        assert metrics.total_messages == 4
        assert metrics.messages_by_kind == {"REQ": 2, "ACK": 2}

    def test_hand_protocol_saves_the_lr_ack(self):
        trace = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE),
                               (200.0, 0, AccessClass.EVICT)])
        hand = Simulator(handwritten_migratory(), 1, trace, seed=0)
        hand_metrics = hand.run(until=2000)
        # acquire (2) + LR as unacked NOTE (1)
        assert hand_metrics.total_messages == 3
        assert hand_metrics.messages_by_kind["NOTE"] == 1

    def test_refined_lr_costs_the_ack(self, migratory_refined):
        trace = TraceWorkload([(10.0, 0, AccessClass.ACQUIRE),
                               (200.0, 0, AccessClass.EVICT)])
        sim = Simulator(migratory_refined, 1, trace, seed=0)
        metrics = sim.run(until=2000)
        # acquire (2) + LR request + its ack (2)
        assert metrics.total_messages == 4
        assert metrics.messages_by_kind["ACK"] == 1


class TestLatencyTracking:
    def test_latency_recorded_per_acquire(self, migratory_refined):
        sim = Simulator(migratory_refined, 2, SyntheticWorkload(seed=9),
                        seed=9, latency=10.0, latency_jitter=0.0)
        metrics = sim.run(until=30_000)
        assert metrics.acquire_latencies
        # an uncontended fused acquire takes >= 2 network hops (allow
        # float rounding on the sum of two exact 10.0 latencies)
        assert min(metrics.acquire_latencies) >= 20.0 - 1e-6

    def test_percentiles_monotone(self, migratory_refined):
        sim = Simulator(migratory_refined, 4, HotLineWorkload(seed=11),
                        seed=11)
        metrics = sim.run(until=20_000)
        pct = metrics.latency_percentiles((50, 90, 99))
        assert pct[50] <= pct[90] <= pct[99]


class TestTraceWorkload:
    def test_exact_schedule(self, migratory_refined):
        trace = TraceWorkload([
            (100.0, 0, AccessClass.ACQUIRE),
            (500.0, 1, AccessClass.ACQUIRE),
        ])
        sim = Simulator(migratory_refined, 2, trace, seed=0,
                        latency=1.0, latency_jitter=0.0)
        metrics = sim.run(until=5000)
        # both acquires completed; the second required an inv/ID migration
        assert metrics.completions_by_type["gr"] == 2
        assert metrics.completions_by_type["inv"] == 1


class TestSimulatedStatesAreVerifiedStates:
    def test_simulation_stays_inside_model_checked_space(
            self, migratory_refined):
        """The simulator resolves, never invents, nondeterminism."""
        system = AsyncSystem(migratory_refined, 2)
        reachable = set(
            explore(system, keep_graph=True, allow_deadlock=True).graph)
        sim = Simulator(migratory_refined, 2, HotLineWorkload(seed=13),
                        seed=13)
        observed = set()
        original_apply = sim._apply

        def spy(step):
            observed.add(step.state)
            original_apply(step)

        sim._apply = spy
        sim.run(until=3000)
        assert observed
        assert observed <= reachable
