"""Unit tests for the response-checker convenience predicates."""

from repro.check.response import grant_edge, remote_in_state
from repro.csp.env import Env
from repro.semantics.rendezvous import RendezvousStep
from repro.semantics.state import HOME_ID, ProcState, RvState


def rv(*remote_states):
    return RvState(home=ProcState("F", Env()),
                   remotes=tuple(ProcState(s, Env())
                                 for s in remote_states))


class TestRemoteInState:
    def test_matches_named_states(self):
        predicate = remote_in_state(1, {"V", "V.lr"})
        assert predicate(rv("I", "V"))
        assert predicate(rv("I", "V.lr"))
        assert not predicate(rv("V", "I"))

    def test_accepts_set_or_frozenset(self):
        assert remote_in_state(0, frozenset({"I"}))(rv("I"))
        assert remote_in_state(0, {"I"})(rv("I"))


class TestGrantEdge:
    def test_matches_completion_for_remote(self):
        predicate = grant_edge(2, {"gr"})
        completes = (RendezvousStep(HOME_ID, 2, "gr"),)
        assert predicate(None, None, completes, None)

    def test_wrong_remote_rejected(self):
        predicate = grant_edge(1, {"gr"})
        completes = (RendezvousStep(HOME_ID, 2, "gr"),)
        assert not predicate(None, None, completes, None)

    def test_wrong_message_rejected(self):
        predicate = grant_edge(2, {"gr"})
        completes = (RendezvousStep(HOME_ID, 2, "inv"),)
        assert not predicate(None, None, completes, None)

    def test_remote_active_side_also_matches(self):
        predicate = grant_edge(0, {"req"})
        completes = (RendezvousStep(0, HOME_ID, "req"),)
        assert predicate(None, None, completes, None)

    def test_empty_completes(self):
        assert not grant_edge(0, {"gr"})(None, None, (), None)
